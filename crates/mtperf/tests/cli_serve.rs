//! End-to-end contracts of `mtperf serve`, driven through the real binary:
//!
//! * startup failures exit 69 (`EX_UNAVAILABLE`), usage errors exit 2;
//! * a lockstep stdio session answers health/predict/reload/save/shutdown,
//!   bit-identically across repeats, and refuses malformed requests with
//!   `bad_request` instead of dropping the connection;
//! * an expired deadline yields a `deadline_exceeded` response, not a hang;
//! * SIGTERM and stdin EOF both drain queued work and exit 0;
//! * a poisoned hot reload leaves the daemon serving the last-known-good
//!   model with `degraded: true` until a good reload heals it;
//! * the Unix-socket transport speaks the same protocol;
//! * `kill -9` during a stream of atomic saves never corrupts the model:
//!   a fresh daemon restarts from it and batch predictions are
//!   bit-identical to the pre-crash golden run;
//! * the named-model registry serves many models over one session
//!   (load/promote/rollback/list with typed error codes), a poisoned
//!   promote keeps the last-known-good version, and the registry
//!   manifest survives promote → `kill -9` → restart un-torn;
//! * the TCP transport speaks the same protocol as stdio and the Unix
//!   socket.
#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Output, Stdio};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_mtperf")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .env_remove("MTPERF_TRACE")
        .env_remove("MTPERF_TRACE_OUT")
        .env_remove("MTPERF_METRICS")
        .output()
        .expect("spawn mtperf")
}

fn stderr_of(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

/// A scratch directory with a tiny simulated CSV and a trained model.
struct Fixture {
    dir: PathBuf,
    csv: String,
    model: String,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let dir =
            std::env::temp_dir().join(format!("mtperf-serve-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        let csv = dir.join("suite.csv").display().to_string();
        let model = dir.join("model.json").display().to_string();
        let sim = run(&[
            "simulate",
            "--out",
            &csv,
            "--instructions",
            "60000",
            "--seed",
            "3",
        ]);
        assert!(sim.status.success(), "simulate failed: {}", stderr_of(&sim));
        let train = run(&["train", "--data", &csv, "--out", &model]);
        assert!(
            train.status.success(),
            "train failed: {}",
            stderr_of(&train)
        );
        Fixture { dir, csv, model }
    }

    /// Trains a second, distinct model (different simulation seed) in the
    /// fixture directory — candidate material for load/promote tests.
    fn alt_model(&self, name: &str) -> String {
        let csv = self.dir.join(format!("{name}.csv")).display().to_string();
        let model = self.dir.join(format!("{name}.json")).display().to_string();
        let sim = run(&[
            "simulate",
            "--out",
            &csv,
            "--instructions",
            "60000",
            "--seed",
            "7",
        ]);
        assert!(sim.status.success(), "simulate failed: {}", stderr_of(&sim));
        let train = run(&["train", "--data", &csv, "--out", &model]);
        assert!(
            train.status.success(),
            "train failed: {}",
            stderr_of(&train)
        );
        model
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// A `predict` rows payload: one row of `width` small finite values.
fn rows_json(width: usize) -> String {
    let vals: Vec<String> = (0..width)
        .map(|i| format!("{:.2}", 0.05 + i as f64 * 0.01))
        .collect();
    format!("[[{}]]", vals.join(","))
}

/// A running `mtperf serve` child with a lockstep stdio session.
struct Serve {
    child: Child,
    stdin: Option<ChildStdin>,
    lines: Receiver<String>,
    stderr: Arc<Mutex<String>>,
}

impl Serve {
    fn start(args: &[&str]) -> Serve {
        let mut child = Command::new(bin())
            .arg("serve")
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .env_remove("MTPERF_TRACE")
            .env_remove("MTPERF_TRACE_OUT")
            .env_remove("MTPERF_METRICS")
            .spawn()
            .expect("spawn mtperf serve");
        let stdout = child.stdout.take().expect("child stdout");
        let (tx, lines) = mpsc::channel();
        thread::spawn(move || {
            for line in BufReader::new(stdout).lines().map_while(Result::ok) {
                if tx.send(line).is_err() {
                    return;
                }
            }
        });
        let child_err = child.stderr.take().expect("child stderr");
        let stderr = Arc::new(Mutex::new(String::new()));
        let sink = Arc::clone(&stderr);
        thread::spawn(move || {
            let mut text = String::new();
            let mut r = BufReader::new(child_err);
            let _ = r.read_to_string(&mut text);
            *sink.lock().unwrap() = text;
        });
        let stdin = child.stdin.take();
        Serve {
            child,
            stdin,
            lines,
            stderr,
        }
    }

    fn send(&mut self, line: &str) {
        let stdin = self.stdin.as_mut().expect("stdin still open");
        writeln!(stdin, "{line}").expect("write request");
        stdin.flush().expect("flush request");
    }

    /// Sends one request and waits for one response line.
    fn request(&mut self, line: &str) -> String {
        self.send(line);
        self.next_response()
    }

    fn next_response(&mut self) -> String {
        self.lines
            .recv_timeout(Duration::from_secs(60))
            .expect("daemon response within 60s")
    }

    /// Closes stdin (EOF drains the daemon) and waits for exit.
    fn finish(mut self) -> (std::process::ExitStatus, String) {
        self.stdin.take();
        let status = self.wait();
        let err = self.stderr.lock().unwrap().clone();
        (status, err)
    }

    fn wait(&mut self) -> std::process::ExitStatus {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            assert!(Instant::now() < deadline, "daemon did not exit within 60s");
            thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.try_wait();
    }
}

#[test]
fn startup_failures_exit_unavailable() {
    // Missing model file.
    let out = run(&["serve", "--model", "/nonexistent/model.json"]);
    assert_eq!(out.status.code(), Some(69), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("unavailable"),
        "{}",
        stderr_of(&out)
    );

    // Corrupt model file: validation refuses it before serving starts.
    let dir = std::env::temp_dir().join(format!("mtperf-serve-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{ torn mid-write").unwrap();
    let out = run(&["serve", "--model", &bad.display().to_string()]);
    assert_eq!(out.status.code(), Some(69), "{}", stderr_of(&out));
    std::fs::remove_dir_all(&dir).ok();

    // Unbindable socket path (model must be valid to reach the bind).
    let fx = Fixture::new("badsock");
    let out = run(&[
        "serve",
        "--model",
        &fx.model,
        "--socket",
        "/nonexistent-dir/serve.sock",
    ]);
    assert_eq!(out.status.code(), Some(69), "{}", stderr_of(&out));
}

#[test]
fn usage_errors_exit_2() {
    let out = run(&["serve"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    let out = run(&["serve", "--model", "m.json", "--workers", "0"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    let out = run(&["serve", "--model", "m.json", "--queue-depth", "0"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    let out = run(&["serve", "--model", "m.json", "--tenant-quota", "0"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    let out = run(&["serve", "--model", "m.json", "--cache-size", "lots"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
}

#[test]
fn stdio_session_serves_health_predict_and_shutdown() {
    let fx = Fixture::new("stdio");
    let mut serve = Serve::start(&["--model", &fx.model, "--workers", "1"]);

    // Readiness probe.
    let health = serve.request(r#"{"op":"health","id":"h1"}"#);
    assert!(health.contains("\"id\":\"h1\""), "{health}");
    assert!(health.contains("\"ready\":true"), "{health}");
    assert!(health.contains("\"degraded\":false"), "{health}");

    // Predictions flow and are bit-identical across repeats.
    let predict = format!(r#"{{"op":"predict","id":"p1","rows":{}}}"#, rows_json(20));
    let first = serve.request(&predict);
    assert!(first.contains("\"ok\":true"), "{first}");
    assert!(first.contains("\"id\":\"p1\""), "{first}");
    assert!(first.contains("\"degraded\":false"), "{first}");
    assert!(first.contains("\"predictions\":["), "{first}");
    let second = serve.request(&predict);
    assert_eq!(first, second, "repeat predictions must be bit-identical");

    // Malformed requests answer bad_request without killing the session.
    for (req, detail) in [
        ("not json at all", "unparsable"),
        (r#"{"op":"frobnicate"}"#, "unknown op"),
        (r#"{"op":"predict"}"#, "non-empty rows"),
        (r#"{"op":"predict","rows":[[1.0,2.0]]}"#, "model expects"),
    ] {
        let resp = serve.request(req);
        assert!(resp.contains("\"kind\":\"bad_request\""), "{req} -> {resp}");
        assert!(resp.contains(detail), "{req} -> {resp}");
    }

    // An already-expired deadline is a timeout response, not a hang.
    let late = serve.request(&format!(
        r#"{{"op":"predict","id":"late","rows":{},"deadline_ms":0}}"#,
        rows_json(20)
    ));
    assert!(late.contains("\"kind\":\"deadline_exceeded\""), "{late}");
    assert!(late.contains("\"id\":\"late\""), "{late}");

    // Stats surfaced through the probe.
    let health = serve.request(r#"{"op":"health","id":"h2"}"#);
    assert!(health.contains("\"deadline_misses\":1"), "{health}");

    // Graceful shutdown: ack, drain, exit 0.
    let bye = serve.request(r#"{"op":"shutdown","id":"bye"}"#);
    assert!(bye.contains("\"id\":\"bye\""), "{bye}");
    assert!(bye.contains("\"ok\":true"), "{bye}");
    let (status, err) = serve.finish();
    assert!(status.success(), "exit: {status:?}, stderr: {err}");
    assert!(err.contains("drained"), "{err}");
}

#[test]
fn stdin_eof_drains_and_exits_cleanly() {
    let fx = Fixture::new("eof");
    let mut serve = Serve::start(&["--model", &fx.model]);
    let resp = serve.request(&format!(r#"{{"op":"predict","rows":{}}}"#, rows_json(20)));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let (status, err) = serve.finish();
    assert!(status.success(), "exit: {status:?}, stderr: {err}");
}

#[test]
fn sigterm_drains_then_exits_zero() {
    let fx = Fixture::new("sigterm");
    let mut serve = Serve::start(&["--model", &fx.model]);
    // Prove the daemon is up before signalling.
    let resp = serve.request(r#"{"op":"ready"}"#);
    assert!(resp.contains("\"ready\":true"), "{resp}");

    let pid = serve.child.id().to_string();
    let kill = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("spawn kill");
    assert!(kill.success());
    let status = serve.wait();
    assert!(
        status.success(),
        "SIGTERM must drain and exit 0: {status:?}"
    );
    let err = serve.stderr.lock().unwrap().clone();
    assert!(err.contains("drained"), "{err}");
}

#[test]
fn poisoned_reload_serves_degraded_until_healed() {
    let fx = Fixture::new("reload");
    let good_bytes = std::fs::read(&fx.model).unwrap();
    let mut serve = Serve::start(&["--model", &fx.model, "--workers", "1"]);

    let predict = format!(r#"{{"op":"predict","id":"p","rows":{}}}"#, rows_json(20));
    let healthy = serve.request(&predict);
    assert!(healthy.contains("\"degraded\":false"), "{healthy}");

    // Poison the model file on disk; the hot reload must refuse it.
    std::fs::write(&fx.model, "poisoned mid-deploy").unwrap();
    let reload = serve.request(r#"{"op":"reload","id":"g1"}"#);
    assert!(reload.contains("\"kind\":\"reload_failed\""), "{reload}");
    assert!(reload.contains("\"degraded\":true"), "{reload}");

    // Still serving — same answers as before, now flagged degraded.
    let degraded = serve.request(&predict);
    assert!(degraded.contains("\"ok\":true"), "{degraded}");
    assert!(degraded.contains("\"degraded\":true"), "{degraded}");
    let probe = serve.request(r#"{"op":"health"}"#);
    assert!(probe.contains("\"degraded\":true"), "{probe}");
    assert!(probe.contains("\"ready\":true"), "{probe}");

    // Restore the good bytes: reload heals, degraded clears.
    std::fs::write(&fx.model, &good_bytes).unwrap();
    let reload = serve.request(r#"{"op":"reload","id":"g2"}"#);
    assert!(reload.contains("\"ok\":true"), "{reload}");
    let healed = serve.request(&predict);
    assert!(healed.contains("\"degraded\":false"), "{healed}");
    assert_eq!(
        healthy, healed,
        "healed daemon must answer bit-identically to the original"
    );

    let bye = serve.request(r#"{"op":"shutdown"}"#);
    assert!(bye.contains("\"ok\":true"), "{bye}");
    assert!(serve.finish().0.success());
}

#[test]
fn unix_socket_transport_speaks_the_same_protocol() {
    use std::os::unix::net::UnixStream;

    let fx = Fixture::new("socket");
    let sock = fx.dir.join("serve.sock");
    let sock_str = sock.display().to_string();
    // Socket-only daemon: stdio transport off, so stdin EOF cannot drain it.
    let mut serve = Serve::start(&["--model", &fx.model, "--socket", &sock_str]);

    // Wait for the listener to come up.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut stream = loop {
        if let Ok(s) = UnixStream::connect(&sock) {
            break s;
        }
        assert!(
            Instant::now() < deadline,
            "socket never came up: {}",
            serve.stderr.lock().unwrap()
        );
        thread::sleep(Duration::from_millis(20));
    };
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut ask = |line: &str| -> String {
        writeln!(stream, "{line}").unwrap();
        stream.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp
    };

    let health = ask(r#"{"op":"health","id":"s1"}"#);
    assert!(health.contains("\"ready\":true"), "{health}");
    let predict = ask(&format!(
        r#"{{"op":"predict","id":"s2","rows":{}}}"#,
        rows_json(20)
    ));
    assert!(predict.contains("\"ok\":true"), "{predict}");
    assert!(predict.contains("\"id\":\"s2\""), "{predict}");

    // A second concurrent connection works too.
    let mut other = UnixStream::connect(&sock).unwrap();
    other
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    writeln!(other, r#"{{"op":"ready","id":"s3"}}"#).unwrap();
    let mut resp = String::new();
    BufReader::new(other.try_clone().unwrap())
        .read_line(&mut resp)
        .unwrap();
    assert!(resp.contains("\"id\":\"s3\""), "{resp}");

    // Shutdown over the socket drains the daemon; the socket file goes away.
    let bye = ask(r#"{"op":"shutdown"}"#);
    assert!(bye.contains("\"ok\":true"), "{bye}");
    let status = serve.wait();
    assert!(status.success(), "{status:?}");
    assert!(!sock.exists(), "socket file must be removed on exit");
}

#[test]
fn multi_model_session_covers_registry_lifecycle_and_error_codes() {
    let fx = Fixture::new("registry");
    let alt = fx.alt_model("alt");
    let alt_json = serde_json_escape(&alt);
    let mut serve = Serve::start(&["--model", &fx.model, "--workers", "1"]);
    let predict_default = format!(r#"{{"op":"predict","id":"d1","rows":{}}}"#, rows_json(20));

    // v1-shaped requests (no model field) keep working under v2.
    let first = serve.request(&predict_default);
    assert!(first.contains("\"ok\":true"), "{first}");

    // Predicting against a model that is not loaded is a typed error.
    let ghost = serve.request(&format!(
        r#"{{"op":"predict","id":"g1","rows":{},"model":"alpha"}}"#,
        rows_json(20)
    ));
    assert!(ghost.contains("\"kind\":\"unknown_model\""), "{ghost}");

    // Load the candidate under a name; it becomes servable immediately.
    let load = serve.request(&format!(
        r#"{{"op":"load","id":"l1","model":"alpha","path":{alt_json}}}"#
    ));
    assert!(load.contains("\"ok\":true"), "{load}");
    let alpha1 = serve.request(&format!(
        r#"{{"op":"predict","id":"a1","rows":{},"model":"alpha"}}"#,
        rows_json(20)
    ));
    assert!(alpha1.contains("\"ok\":true"), "{alpha1}");

    // The default model is untouched by the named load.
    let still_default = serve.request(&predict_default.replace("\"d1\"", "\"d2\""));
    assert_eq!(
        first.replace("\"d1\"", "\"d2\""),
        still_default,
        "default model changed by a named load"
    );

    // Promote a second version onto alpha, then roll it back.
    let promote = serve.request(&format!(
        r#"{{"op":"promote","id":"pr1","model":"alpha","path":{alt_json}}}"#
    ));
    assert!(promote.contains("\"ok\":true"), "{promote}");
    let rollback = serve.request(r#"{"op":"rollback","id":"rb1","model":"alpha"}"#);
    assert!(rollback.contains("\"ok\":true"), "{rollback}");
    // A second rollback has no history left: typed rollback_failed.
    let rollback2 = serve.request(r#"{"op":"rollback","id":"rb2","model":"alpha"}"#);
    assert!(
        rollback2.contains("\"kind\":\"rollback_failed\""),
        "{rollback2}"
    );

    // Registry ops against unknown models are unknown_model, not crashes.
    for req in [
        r#"{"op":"promote","id":"e1","model":"ghost","path":"/tmp/x.json"}"#,
        r#"{"op":"rollback","id":"e2","model":"ghost"}"#,
    ] {
        let resp = serve.request(req);
        assert!(
            resp.contains("\"kind\":\"unknown_model\""),
            "{req} -> {resp}"
        );
    }

    // A poisoned promote keeps the last-known-good version serving.
    let poison = fx.dir.join("poison.json");
    std::fs::write(&poison, "{ not a model }").unwrap();
    let bad = serve.request(&format!(
        r#"{{"op":"promote","id":"pr2","model":"alpha","path":{}}}"#,
        serde_json_escape(&poison.display().to_string())
    ));
    assert!(bad.contains("\"kind\":\"promote_failed\""), "{bad}");
    let alpha2 = serve.request(&alpha1_request_with_id("a2"));
    assert!(alpha2.contains("\"ok\":true"), "{alpha2}");
    assert_eq!(
        alpha1.replace("\"a1\"", "\"a2\""),
        alpha2.replace("\"degraded\":true", "\"degraded\":false"),
        "poisoned promote changed alpha's answers"
    );

    // `list` reports both models with version/active markers.
    let list = serve.request(r#"{"op":"list","id":"ls1"}"#);
    assert!(list.contains("\"ok\":true"), "{list}");
    assert!(list.contains("\"default\""), "{list}");
    assert!(list.contains("\"alpha\""), "{list}");
    assert!(list.contains("\"active\":true"), "{list}");

    // Health counts the registry.
    let health = serve.request(r#"{"op":"health","id":"h"}"#);
    assert!(health.contains("\"models\":2"), "{health}");

    let bye = serve.request(r#"{"op":"shutdown"}"#);
    assert!(bye.contains("\"ok\":true"), "{bye}");
    assert!(serve.finish().0.success());
}

/// JSON-escapes a path for embedding in a request line.
fn serde_json_escape(path: &str) -> String {
    format!("{path:?}")
}

/// The alpha predict request with a fresh id (shared row payload).
fn alpha1_request_with_id(id: &str) -> String {
    format!(
        r#"{{"op":"predict","id":"{id}","rows":{},"model":"alpha"}}"#,
        rows_json(20)
    )
}

#[test]
fn registry_manifest_survives_promote_and_kill_nine() {
    let fx = Fixture::new("manifest");
    let alt = fx.alt_model("cand");
    let alt_json = serde_json_escape(&alt);
    let manifest = fx.dir.join("registry.json").display().to_string();

    // Round 1: promote the default model to the candidate artifact, let
    // the manifest persist, then SIGKILL without any grace.
    let mut serve = Serve::start(&[
        "--model",
        &fx.model,
        "--registry",
        &manifest,
        "--workers",
        "1",
    ]);
    let promote = serve.request(&format!(
        r#"{{"op":"promote","id":"pr","model":"default","path":{alt_json}}}"#
    ));
    assert!(promote.contains("\"ok\":true"), "{promote}");
    // The promoted model answers now (bit-identity checked after restart).
    let before = serve.request(&format!(
        r#"{{"op":"predict","id":"pb","rows":{}}}"#,
        rows_json(20)
    ));
    assert!(before.contains("\"ok\":true"), "{before}");
    serve.child.kill().expect("SIGKILL");
    let _ = serve.child.wait();

    // Restart from the manifest: the *promoted* version must be active —
    // same answers as the pre-kill daemon, not the original --model.
    let mut serve = Serve::start(&[
        "--model",
        &fx.model,
        "--registry",
        &manifest,
        "--workers",
        "1",
    ]);
    let after = serve.request(&format!(
        r#"{{"op":"predict","id":"pb","rows":{}}}"#,
        rows_json(20)
    ));
    assert_eq!(before, after, "promoted version lost across kill -9");
    let list = serve.request(r#"{"op":"list","id":"ls"}"#);
    assert!(list.contains("\"versions\""), "{list}");

    // Round 2: flood promotes (alternating artifacts) without reading
    // responses and SIGKILL mid-stream, several timings. However the
    // manifest write is interrupted, a fresh daemon must start cleanly
    // from it — promoted or prior version, never a torn manifest.
    for (round, delay_ms) in [5u64, 20, 45].iter().enumerate() {
        let mut serve = Serve::start(&[
            "--model",
            &fx.model,
            "--registry",
            &manifest,
            "--workers",
            "1",
        ]);
        let resp = serve.request(r#"{"op":"ready"}"#);
        assert!(resp.contains("\"ready\":true"), "round {round}: {resp}");
        let orig_json = serde_json_escape(&fx.model);
        for i in 0..100 {
            let path = if i % 2 == 0 { &alt_json } else { &orig_json };
            serve.send(&format!(
                r#"{{"op":"promote","id":"f{i}","model":"default","path":{path}}}"#
            ));
        }
        thread::sleep(Duration::from_millis(*delay_ms));
        serve.child.kill().expect("SIGKILL");
        let _ = serve.child.wait();

        let mut serve = Serve::start(&[
            "--model",
            &fx.model,
            "--registry",
            &manifest,
            "--workers",
            "1",
        ]);
        let health = serve.request(r#"{"op":"health","id":"h"}"#);
        assert!(
            health.contains("\"ready\":true"),
            "round {round}: torn manifest broke restart: {health}"
        );
        let predict = serve.request(&format!(
            r#"{{"op":"predict","id":"p","rows":{}}}"#,
            rows_json(20)
        ));
        assert!(
            predict.contains("\"ok\":true"),
            "round {round}: restarted daemon cannot serve: {predict}"
        );
        let bye = serve.request(r#"{"op":"shutdown"}"#);
        assert!(bye.contains("\"ok\":true"), "round {round}: {bye}");
        assert!(serve.finish().0.success());
    }
}

#[test]
fn tcp_transport_speaks_the_same_protocol() {
    use std::net::TcpStream;

    let fx = Fixture::new("tcp");
    // Port 0 would be ideal but the ready line is the only channel for the
    // chosen port; a fixed high port keeps the test self-contained.
    let addr = "127.0.0.1:47707";
    let mut serve = Serve::start(&["--model", &fx.model, "--tcp", addr]);

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut stream = loop {
        if let Ok(s) = TcpStream::connect(addr) {
            break s;
        }
        assert!(
            Instant::now() < deadline,
            "TCP listener never came up: {}",
            serve.stderr.lock().unwrap()
        );
        thread::sleep(Duration::from_millis(20));
    };
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut ask = |line: &str| -> String {
        writeln!(stream, "{line}").unwrap();
        stream.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp
    };

    let health = ask(r#"{"op":"health","id":"t1"}"#);
    assert!(health.contains("\"ready\":true"), "{health}");
    assert!(health.contains("mtperf-serve-v2"), "{health}");
    let predict = ask(&format!(
        r#"{{"op":"predict","id":"t2","rows":{}}}"#,
        rows_json(20)
    ));
    assert!(predict.contains("\"ok\":true"), "{predict}");
    assert!(predict.contains("\"id\":\"t2\""), "{predict}");

    // A malformed line gets a typed refusal and the connection survives.
    let bad = ask("not json");
    assert!(bad.contains("\"kind\":\"bad_request\""), "{bad}");
    let again = ask(r#"{"op":"ready","id":"t3"}"#);
    assert!(again.contains("\"id\":\"t3\""), "{again}");

    // A second concurrent connection is served.
    let mut other = TcpStream::connect(addr).unwrap();
    other
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    writeln!(other, r#"{{"op":"ready","id":"t4"}}"#).unwrap();
    let mut resp = String::new();
    BufReader::new(other.try_clone().unwrap())
        .read_line(&mut resp)
        .unwrap();
    assert!(resp.contains("\"id\":\"t4\""), "{resp}");

    // Shutdown over TCP drains the daemon.
    let bye = ask(r#"{"op":"shutdown"}"#);
    assert!(bye.contains("\"ok\":true"), "{bye}");
    let status = serve.wait();
    assert!(status.success(), "{status:?}");
}

#[test]
fn kill_nine_mid_save_never_corrupts_the_model() {
    let fx = Fixture::new("kill9");
    // Golden predictions before any crash.
    let golden = run(&["predict", "--model", &fx.model, "--data", &fx.csv]);
    assert!(golden.status.success(), "{}", stderr_of(&golden));

    // Several rounds with different kill timings: start a daemon, stream
    // save requests at it, SIGKILL it mid-stream.
    for (round, delay_ms) in [5u64, 20, 45].iter().enumerate() {
        let mut serve = Serve::start(&["--model", &fx.model, "--workers", "1"]);
        // Confirm liveness, then flood saves without reading responses.
        let resp = serve.request(r#"{"op":"ready"}"#);
        assert!(resp.contains("\"ready\":true"), "round {round}: {resp}");
        for _ in 0..200 {
            serve.send(r#"{"op":"save"}"#);
        }
        thread::sleep(Duration::from_millis(*delay_ms));
        serve.child.kill().expect("SIGKILL");
        let _ = serve.child.wait();

        // The model file must be loadable and predict bit-identically.
        let after = run(&["predict", "--model", &fx.model, "--data", &fx.csv]);
        assert!(
            after.status.success(),
            "round {round}: model corrupted by kill -9: {}",
            stderr_of(&after)
        );
        assert_eq!(
            golden.stdout, after.stdout,
            "round {round}: predictions diverged after kill -9"
        );
    }

    // And a fresh daemon restarts cleanly from the surviving file.
    let mut serve = Serve::start(&["--model", &fx.model]);
    let health = serve.request(r#"{"op":"health"}"#);
    assert!(health.contains("\"ready\":true"), "{health}");
    assert!(health.contains("\"degraded\":false"), "{health}");
    let bye = serve.request(r#"{"op":"shutdown"}"#);
    assert!(bye.contains("\"ok\":true"), "{bye}");
    assert!(serve.finish().0.success());
}
