//! End-to-end contracts of the `mtperf` binary's observability surface:
//!
//! * stream separation — `predict` keeps its payload on stdout under every
//!   ingest policy while the ingest report, trace summary, and metrics dump
//!   go to stderr;
//! * trace identity — predictions and metrics are bit-identical with
//!   tracing on or off, and the JSONL event stream covers ingest, training,
//!   CV folds, and batch prediction;
//! * the documented exit-code contract for bad flags and bad data.
//!
//! Runs the real binary via `CARGO_BIN_EXE_mtperf`, so these tests exercise
//! the same process lifecycle (init at dispatch, finish at exit) users see.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_mtperf")
}

/// Runs `mtperf` with `args`, panicking only on spawn failure.
fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        // The binary consults MTPERF_* when no flags are given; keep the
        // baseline runs deterministic even under an instrumented CI.
        .env_remove("MTPERF_TRACE")
        .env_remove("MTPERF_TRACE_OUT")
        .env_remove("MTPERF_METRICS")
        .output()
        .expect("spawn mtperf")
}

fn stdout(o: &Output) -> String {
    String::from_utf8(o.stdout.clone()).expect("utf-8 stdout")
}

fn stderr(o: &Output) -> String {
    String::from_utf8(o.stderr.clone()).expect("utf-8 stderr")
}

/// A scratch directory with a tiny simulated CSV and a trained model.
struct Fixture {
    dir: PathBuf,
    csv: String,
    model: String,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!("mtperf-obs-test-{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let csv = dir.join("suite.csv").display().to_string();
        let model = dir.join("model.json").display().to_string();
        let sim = run(&[
            "simulate",
            "--out",
            &csv,
            "--instructions",
            "60000",
            "--seed",
            "3",
        ]);
        assert!(sim.status.success(), "simulate failed: {}", stderr(&sim));
        let train = run(&["train", "--data", &csv, "--out", &model]);
        assert!(train.status.success(), "train failed: {}", stderr(&train));
        Fixture { dir, csv, model }
    }

    /// The suite CSV with one extra corrupt row appended.
    fn corrupt_csv(&self) -> String {
        let path = self.dir.join("corrupt.csv");
        let mut text = std::fs::read_to_string(&self.csv).expect("read csv");
        let fields = text.lines().next().expect("header").split(',').count();
        text.push_str(&format!("badrow,999,NaN{}\n", ",0.1".repeat(fields - 3)));
        std::fs::write(&path, text).expect("write corrupt csv");
        path.display().to_string()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Asserts `text` is a well-formed predict CSV payload and returns its rows.
fn parse_predict_csv(text: &str) -> Vec<(String, usize, f64, f64)> {
    let mut lines = text.lines();
    assert_eq!(
        lines.next(),
        Some("workload,section_index,cpi,predicted_cpi"),
        "payload must start with the CSV header: {text:?}"
    );
    lines
        .map(|line| {
            let f: Vec<&str> = line.split(',').collect();
            assert_eq!(f.len(), 4, "malformed payload row {line:?}");
            (
                f[0].to_string(),
                f[1].parse().expect("section index"),
                f[2].parse().expect("cpi"),
                f[3].parse().expect("predicted cpi"),
            )
        })
        .collect()
}

#[test]
fn predict_keeps_stdout_payload_clean_under_every_policy() {
    let fx = Fixture::new("streams");
    for policy in ["strict", "skip", "repair"] {
        let out = run(&[
            "predict",
            "--model",
            &fx.model,
            "--data",
            &fx.csv,
            "--policy",
            policy,
            "--trace",
            "--metrics",
            "table",
        ]);
        assert!(out.status.success(), "policy {policy}: {}", stderr(&out));
        let rows = parse_predict_csv(&stdout(&out));
        assert!(!rows.is_empty(), "policy {policy}: empty payload");

        let err = stderr(&out);
        assert!(
            err.contains("trace summary:"),
            "policy {policy}: no trace summary on stderr: {err}"
        );
        assert!(
            err.contains("predict_batch"),
            "policy {policy}: no predict span on stderr: {err}"
        );
        // Metrics table goes to stderr too; stdout stays pure payload.
        assert!(err.contains("wall_ms"), "policy {policy}: {err}");
        if policy != "strict" {
            assert!(
                err.contains("ingest ("),
                "policy {policy}: ingest report missing from stderr: {err}"
            );
        }
    }
}

#[test]
fn corrupt_rows_follow_the_policy_and_exit_code_contract() {
    let fx = Fixture::new("exitcodes");
    let corrupt = fx.corrupt_csv();

    // strict: first bad row fails the file with EX_DATAERR.
    let strict = run(&["predict", "--model", &fx.model, "--data", &corrupt]);
    assert_eq!(strict.status.code(), Some(65), "{}", stderr(&strict));
    assert!(stdout(&strict).is_empty(), "no payload on failure");

    // skip: quarantines the bad row, succeeds, reports on stderr.
    let skip = run(&[
        "predict", "--model", &fx.model, "--data", &corrupt, "--policy", "skip",
    ]);
    assert_eq!(skip.status.code(), Some(0), "{}", stderr(&skip));
    let rows = parse_predict_csv(&stdout(&skip));
    assert!(rows.iter().all(|(w, ..)| w != "badrow"));
    assert!(stderr(&skip).contains("1 quarantined"), "{}", stderr(&skip));

    // repair: the CPI target is never fabricated, so the row still drops.
    let repair = run(&[
        "predict", "--model", &fx.model, "--data", &corrupt, "--policy", "repair",
    ]);
    assert_eq!(repair.status.code(), Some(0), "{}", stderr(&repair));
    assert!(
        stderr(&repair).contains("quarantined"),
        "{}",
        stderr(&repair)
    );

    // Flag errors are usage errors (exit 2); missing files are I/O (74).
    let usage = run(&[
        "predict",
        "--model",
        &fx.model,
        "--data",
        &fx.csv,
        "--metrics",
        "yaml",
    ]);
    assert_eq!(usage.status.code(), Some(2), "{}", stderr(&usage));
    let io = run(&[
        "predict",
        "--model",
        &fx.model,
        "--data",
        "/nonexistent.csv",
    ]);
    assert_eq!(io.status.code(), Some(74), "{}", stderr(&io));
}

#[test]
fn tracing_leaves_predictions_bit_identical_and_streams_events() {
    let fx = Fixture::new("identity");
    let trace_path = fx.dir.join("trace.jsonl").display().to_string();

    let plain = run(&["predict", "--model", &fx.model, "--data", &fx.csv]);
    assert!(plain.status.success(), "{}", stderr(&plain));
    let traced = run(&[
        "predict",
        "--model",
        &fx.model,
        "--data",
        &fx.csv,
        "--trace",
        "--trace-out",
        &trace_path,
        "--metrics",
        "json",
    ]);
    assert!(traced.status.success(), "{}", stderr(&traced));

    // The tentpole contract: byte-identical payload with tracing on.
    assert_eq!(
        stdout(&plain),
        stdout(&traced),
        "tracing changed the prediction payload"
    );

    // The JSONL stream is one object per line and covers the hot paths.
    let trace = std::fs::read_to_string(&trace_path).expect("trace file");
    let lines: Vec<&str> = trace.lines().collect();
    assert!(
        lines.first().is_some_and(|l| l.contains("mtperf-trace-v1")),
        "missing run_start: {:?}",
        lines.first()
    );
    assert!(
        lines
            .last()
            .is_some_and(|l| l.contains("\"ev\":\"run_end\"")),
        "missing run_end: {:?}",
        lines.last()
    );
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
    }
    for span in [
        "\"name\":\"ingest\"",
        "\"name\":\"predict_batch\"",
        "\"name\":\"predict_block\"",
    ] {
        assert!(trace.contains(span), "trace missing {span}");
    }
    // Worker spans carry their parent's path (context crosses threads).
    assert!(
        trace.contains("\"path\":\"predict_batch/predict_block[0]\""),
        "block span not nested under the batch span"
    );

    // --metrics json emits one parseable-shaped document on stderr.
    let err = stderr(&traced);
    let metrics_line = err
        .lines()
        .find(|l| l.starts_with("{\"wall_us\":"))
        .unwrap_or_else(|| panic!("no metrics JSON on stderr: {err}"));
    assert!(metrics_line.ends_with("]}"), "{metrics_line}");
    assert!(metrics_line.contains("\"counters\""), "{metrics_line}");
}

#[test]
fn tracing_leaves_evaluation_metrics_bit_identical() {
    let fx = Fixture::new("eval-identity");
    let trace_path = fx.dir.join("eval-trace.jsonl").display().to_string();

    let plain = run(&["evaluate", "--data", &fx.csv, "--k", "5"]);
    assert!(plain.status.success(), "{}", stderr(&plain));
    let traced = run(&[
        "evaluate",
        "--data",
        &fx.csv,
        "--k",
        "5",
        "--trace-out",
        &trace_path,
    ]);
    assert!(traced.status.success(), "{}", stderr(&traced));
    assert_eq!(
        stdout(&plain),
        stdout(&traced),
        "tracing changed the CV metrics"
    );

    let trace = std::fs::read_to_string(&trace_path).expect("trace file");
    for span in ["\"name\":\"cv\"", "\"name\":\"fold\"", "\"name\":\"fit\""] {
        assert!(trace.contains(span), "trace missing {span}");
    }
    // All five folds appear, each tagged with its index in the span path.
    for fold in 0..5 {
        assert!(
            trace.contains(&format!("\"path\":\"cv/fold[{fold}]")),
            "missing fold {fold}"
        );
    }
    // Split-search counters made it into the global registry events.
    assert!(
        trace.contains("\"name\":\"mtree.split_searches\""),
        "missing split-search counter"
    );
}

#[test]
fn trace_artifacts_do_not_touch_saved_models() {
    // `train --trace-out` must write the same model bytes as a plain train.
    let fx = Fixture::new("train-identity");
    let plain_model = fx.dir.join("plain.json");
    let traced_model = fx.dir.join("traced.json");
    let trace_path = fx.dir.join("train-trace.jsonl").display().to_string();

    let plain = run(&[
        "train",
        "--data",
        &fx.csv,
        "--out",
        &plain_model.display().to_string(),
    ]);
    assert!(plain.status.success(), "{}", stderr(&plain));
    let traced = run(&[
        "train",
        "--data",
        &fx.csv,
        "--out",
        &traced_model.display().to_string(),
        "--trace",
        "--trace-out",
        &trace_path,
    ]);
    assert!(traced.status.success(), "{}", stderr(&traced));

    let a = std::fs::read(&plain_model).expect("plain model");
    let b = std::fs::read(&traced_model).expect("traced model");
    assert_eq!(a, b, "tracing changed the trained model");
    assert!(Path::new(&trace_path).exists());
}
