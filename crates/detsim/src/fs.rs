//! The filesystem seam: a process-global fault hook consulted before disk
//! operations.
//!
//! `obs::fsio` (and through it, engine save/reload) calls [`check`] with
//! the operation and path before touching the real filesystem. With no
//! hook installed that is one relaxed atomic load — production code never
//! sees a simulated error. With a [`FaultScript`] installed, transient and
//! permanent I/O errors become part of the test input: "the third write to
//! the model artifact fails with `Interrupted`, twice" is a scripted rule,
//! not a race you hope to hit.
//!
//! A torn save (`kill -9` mid-write) is modeled as a permanent fault on
//! the staging file's write or rename: `atomic_write`'s contract says the
//! destination must remain intact, and the simulation asserts exactly
//! that, then "restarts" by reopening the engine from the untouched
//! artifact.

use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::rng::GenericRng;

/// The filesystem operations the seam distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsOp {
    /// Reading a file's contents.
    Read,
    /// Creating or writing a file (including staging files).
    Write,
    /// Renaming (the commit step of an atomic write).
    Rename,
    /// fsync of a file or directory.
    Sync,
    /// Removing a file.
    Remove,
}

/// Decides whether a filesystem operation fails, and how.
pub trait FaultHook: Send + Sync + fmt::Debug {
    /// Returns the error this operation should fail with, or `None` to let
    /// it proceed normally.
    fn fault(&self, op: FsOp, path: &Path) -> Option<io::Error>;
}

/// One scripted failure rule.
#[derive(Debug)]
struct Rule {
    op: Option<FsOp>,
    path_contains: String,
    kind: io::ErrorKind,
    /// How many more times this rule fires; `u64::MAX` means permanent.
    remaining: u64,
}

/// A deterministic, scriptable [`FaultHook`]: explicit rules matched in
/// order, plus an optional seeded background failure rate.
#[derive(Debug, Default)]
pub struct FaultScript {
    rules: Mutex<Vec<Rule>>,
    /// Background fault probability per operation, in units of 2^-64
    /// (0 = never). Drawn from `background_rng` so it replays.
    background_threshold: AtomicU64,
    background_rng: Mutex<Option<Arc<dyn GenericRng>>>,
    injected: AtomicU64,
}

impl FaultScript {
    /// An empty script (no faults until rules are added).
    pub fn new() -> FaultScript {
        FaultScript::default()
    }

    /// Fails the next `times` operations matching `op` (or any op when
    /// `None`) on paths containing `path_contains`, with `kind`.
    pub fn fail_times(
        &self,
        op: Option<FsOp>,
        path_contains: &str,
        kind: io::ErrorKind,
        times: u64,
    ) {
        self.rules
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Rule {
                op,
                path_contains: path_contains.to_string(),
                kind,
                remaining: times,
            });
    }

    /// Permanently fails matching operations until the script is cleared.
    pub fn fail_always(&self, op: Option<FsOp>, path_contains: &str, kind: io::ErrorKind) {
        self.fail_times(op, path_contains, kind, u64::MAX);
    }

    /// Enables a seeded background failure rate: each checked operation
    /// independently fails with probability `p` (transient
    /// `Interrupted`), drawn from `rng` so the sequence replays.
    pub fn background(&self, p: f64, rng: Arc<dyn GenericRng>) {
        let clamped = p.clamp(0.0, 1.0);
        let threshold = if clamped >= 1.0 {
            u64::MAX
        } else {
            (clamped * (u64::MAX as f64)) as u64
        };
        self.background_threshold
            .store(threshold, Ordering::Relaxed);
        *self
            .background_rng
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(rng);
    }

    /// Removes every rule and the background rate.
    pub fn clear(&self) {
        self.rules
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.background_threshold.store(0, Ordering::Relaxed);
        *self
            .background_rng
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// How many faults this script has injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl FaultHook for FaultScript {
    fn fault(&self, op: FsOp, path: &Path) -> Option<io::Error> {
        let path_str = path.to_string_lossy();
        {
            let mut rules = self.rules.lock().unwrap_or_else(PoisonError::into_inner);
            for rule in rules.iter_mut() {
                let op_match = rule.op.is_none_or(|o| o == op);
                if op_match && rule.remaining > 0 && path_str.contains(&rule.path_contains) {
                    if rule.remaining != u64::MAX {
                        rule.remaining -= 1;
                    }
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    // Name the rule's selector, not the live path: staging
                    // paths embed the PID, and this message reaches client-
                    // visible error responses — a replayed seed must produce
                    // byte-identical output across processes.
                    return Some(io::Error::new(
                        rule.kind,
                        format!("sim fault: {op:?} on {}", rule.path_contains),
                    ));
                }
            }
            rules.retain(|r| r.remaining > 0);
        }
        let threshold = self.background_threshold.load(Ordering::Relaxed);
        if threshold > 0 {
            let draw = self
                .background_rng
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .as_ref()
                .map(|r| r.next_u64());
            if let Some(d) = draw {
                if d < threshold {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    // Same replay-stability rule as above: no live paths.
                    return Some(io::Error::new(
                        io::ErrorKind::Interrupted,
                        format!("sim background fault: {op:?}"),
                    ));
                }
            }
        }
        None
    }
}

/// Set when a fault hook is installed; production's fast path is one
/// relaxed load and no further work.
static OVERRIDDEN: AtomicBool = AtomicBool::new(false);
static OVERRIDE: Mutex<Option<Arc<dyn FaultHook>>> = Mutex::new(None);

/// Installs `hook` as the process-global filesystem fault source. Process-
/// wide; intended for simulation harnesses and dedicated test binaries.
pub fn install(hook: Arc<dyn FaultHook>) {
    let mut slot = OVERRIDE.lock().unwrap_or_else(PoisonError::into_inner);
    *slot = Some(hook);
    OVERRIDDEN.store(true, Ordering::Release);
}

/// Removes any installed hook; filesystem operations proceed unimpeded.
pub fn uninstall() {
    OVERRIDDEN.store(false, Ordering::Release);
    let mut slot = OVERRIDE.lock().unwrap_or_else(PoisonError::into_inner);
    *slot = None;
}

/// Consults the installed hook (if any) before a filesystem operation.
/// Seam-aware I/O calls this first and propagates the error as if the OS
/// had returned it.
pub fn check(op: FsOp, path: &Path) -> io::Result<()> {
    if !OVERRIDDEN.load(Ordering::Acquire) {
        return Ok(());
    }
    let hook = {
        let slot = OVERRIDE.lock().unwrap_or_else(PoisonError::into_inner);
        slot.as_ref().map(Arc::clone)
    };
    match hook {
        Some(h) => match h.fault(op, path) {
            Some(err) => Err(err),
            None => Ok(()),
        },
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use std::path::PathBuf;

    #[test]
    fn empty_script_passes_everything() {
        let script = FaultScript::new();
        let p = PathBuf::from("/tmp/model.bin");
        assert!(script.fault(FsOp::Write, &p).is_none());
        assert_eq!(script.injected(), 0);
    }

    #[test]
    fn fail_times_counts_down_and_expires() {
        let script = FaultScript::new();
        let p = PathBuf::from("/data/model.bin.tmp.123");
        script.fail_times(Some(FsOp::Write), ".tmp", io::ErrorKind::Interrupted, 2);
        assert_eq!(
            script.fault(FsOp::Write, &p).unwrap().kind(),
            io::ErrorKind::Interrupted
        );
        assert!(script.fault(FsOp::Read, &p).is_none(), "op filter holds");
        assert!(script.fault(FsOp::Write, &p).is_some());
        assert!(script.fault(FsOp::Write, &p).is_none(), "rule exhausted");
        assert_eq!(script.injected(), 2);
    }

    #[test]
    fn fail_always_persists_until_clear() {
        let script = FaultScript::new();
        let p = PathBuf::from("/data/model.bin");
        script.fail_always(None, "model.bin", io::ErrorKind::PermissionDenied);
        for _ in 0..5 {
            assert!(script.fault(FsOp::Rename, &p).is_some());
        }
        script.clear();
        assert!(script.fault(FsOp::Rename, &p).is_none());
    }

    #[test]
    fn background_rate_is_seeded_and_replays() {
        let run = |seed: u64| -> Vec<bool> {
            let script = FaultScript::new();
            script.background(0.3, Arc::new(SimRng::seed_from_u64(seed)));
            let p = PathBuf::from("/x");
            (0..64)
                .map(|_| script.fault(FsOp::Sync, &p).is_some())
                .collect()
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a, b, "same seed, same fault sequence");
        assert!(a.iter().any(|&x| x), "p=0.3 over 64 draws fires");
        assert!(a.iter().any(|&x| !x), "...but not always");
    }

    #[test]
    fn fault_messages_are_path_independent() {
        // Staging paths embed the PID; if it leaked into the message, a
        // replayed seed would produce different client-visible bytes in a
        // fresh process and the trace fingerprint would never match.
        let script = FaultScript::new();
        script.fail_times(
            Some(FsOp::Write),
            "model.json",
            io::ErrorKind::Interrupted,
            2,
        );
        let a = script
            .fault(FsOp::Write, &PathBuf::from("/tmp/d1/.model.json.tmp.111"))
            .unwrap();
        let b = script
            .fault(FsOp::Write, &PathBuf::from("/run/d2/.model.json.tmp.999"))
            .unwrap();
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.to_string(), "sim fault: Write on model.json");
    }

    #[test]
    fn global_seam_defaults_open_and_swaps() {
        let p = PathBuf::from("/anything");
        assert!(check(FsOp::Write, &p).is_ok());
        let script = Arc::new(FaultScript::new());
        script.fail_times(None, "anything", io::ErrorKind::TimedOut, 1);
        install(script.clone() as Arc<dyn FaultHook>);
        assert_eq!(
            check(FsOp::Write, &p).unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
        assert!(check(FsOp::Write, &p).is_ok());
        uninstall();
        assert!(check(FsOp::Write, &p).is_ok());
    }
}
