//! The time seam: real and virtual clocks behind one trait, plus a
//! process-global handle the rest of the workspace reads time through.
//!
//! Time is represented as a [`Duration`] since the clock's epoch rather
//! than as [`Instant`], because a virtual clock has no meaningful
//! `Instant` — its "now" is a counter that only moves when the simulation
//! says so. Durations subtract, compare, and serialize without platform
//! baggage, which is exactly what deadline accounting and event traces
//! need.
//!
//! # The two implementations
//!
//! * [`RealClock`] — monotonic wall time ([`Instant`]) against a lazy
//!   process epoch, sleeping via [`std::thread::sleep`]. The default.
//! * [`VirtualClock`] — simulated time. In *auto-advance* mode a sleep
//!   simply moves the clock forward and returns, so a retry ladder that
//!   would wall-sleep 15 ms completes instantly with every timestamp still
//!   observable. In *manual* mode sleepers park on a discrete-event queue
//!   and a driver thread releases them with [`VirtualClock::advance`] /
//!   [`VirtualClock::advance_to_next`], in deadline order.
//!
//! # Example
//!
//! ```
//! use mtperf_detsim::clock::{Clock, VirtualClock};
//! use std::time::Duration;
//!
//! let clock = VirtualClock::auto();
//! let t0 = clock.now();
//! clock.sleep(Duration::from_millis(8)); // returns immediately
//! assert_eq!(clock.now() - t0, Duration::from_millis(8));
//! ```

use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// A source of monotonic time and the ability to wait on it.
///
/// `now` is the duration since the clock's epoch (process start for the
/// real clock, construction for a virtual one). Implementations must be
/// monotonic: `now` never decreases.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Time elapsed since this clock's epoch.
    fn now(&self) -> Duration;

    /// Blocks the caller (really or virtually) for `d`.
    fn sleep(&self, d: Duration);
}

/// The process-wide monotonic epoch [`RealClock`] measures against.
fn real_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Production clock: monotonic wall time, real sleeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealClock;

impl Clock for RealClock {
    fn now(&self) -> Duration {
        real_epoch().elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Interior state of a [`VirtualClock`].
struct VirtualState {
    now: Duration,
    /// Pending manual-mode sleeper deadlines (min-heap via `Reverse`).
    sleepers: BinaryHeap<std::cmp::Reverse<Duration>>,
}

/// Simulated time: a counter that moves only when the simulation moves it.
///
/// See the module docs for the auto-advance vs manual distinction. Both
/// modes are deterministic for a single driving thread; manual mode is
/// additionally deterministic for many sleepers because wake-ups happen in
/// deadline order, one [`VirtualClock::advance_to_next`] at a time.
pub struct VirtualClock {
    state: Mutex<VirtualState>,
    wake: Condvar,
    auto: bool,
}

impl fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VirtualClock")
            .field("now", &self.now())
            .field("auto", &self.auto)
            .finish()
    }
}

impl VirtualClock {
    /// A virtual clock whose sleeps advance time and return immediately.
    /// The right mode for single-threaded simulations and unit tests.
    pub fn auto() -> Arc<VirtualClock> {
        Arc::new(VirtualClock {
            state: Mutex::new(VirtualState {
                now: Duration::ZERO,
                sleepers: BinaryHeap::new(),
            }),
            wake: Condvar::new(),
            auto: true,
        })
    }

    /// A virtual clock whose sleepers park until a driver advances time.
    pub fn manual() -> Arc<VirtualClock> {
        Arc::new(VirtualClock {
            state: Mutex::new(VirtualState {
                now: Duration::ZERO,
                sleepers: BinaryHeap::new(),
            }),
            wake: Condvar::new(),
            auto: false,
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VirtualState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Moves time forward by `d` and wakes every sleeper whose deadline has
    /// arrived.
    pub fn advance(&self, d: Duration) {
        let mut s = self.lock();
        s.now += d;
        drop(s);
        self.wake.notify_all();
    }

    /// Jumps time to the earliest pending sleeper deadline (a discrete-
    /// event step) and wakes it. Returns the new time, or `None` when no
    /// sleeper is pending.
    pub fn advance_to_next(&self) -> Option<Duration> {
        let mut s = self.lock();
        let next = s.sleepers.peek()?.0;
        if next > s.now {
            s.now = next;
        }
        let now = s.now;
        drop(s);
        self.wake.notify_all();
        Some(now)
    }

    /// Number of sleepers currently parked (manual mode).
    pub fn pending_sleepers(&self) -> usize {
        self.lock().sleepers.len()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        self.lock().now
    }

    fn sleep(&self, d: Duration) {
        if self.auto {
            let mut s = self.lock();
            s.now += d;
            drop(s);
            self.wake.notify_all();
            return;
        }
        let mut s = self.lock();
        let deadline = s.now + d;
        s.sleepers.push(std::cmp::Reverse(deadline));
        while s.now < deadline {
            s = self.wake.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        // Remove one instance of our deadline from the pending set. The
        // heap has no remove-by-value; rebuild without one occurrence
        // (sleeper counts are tiny — this is test infrastructure).
        let mut rest: Vec<_> = std::mem::take(&mut s.sleepers).into_vec();
        if let Some(pos) = rest.iter().position(|r| r.0 == deadline) {
            rest.swap_remove(pos);
        }
        s.sleepers = rest.into();
    }
}

/// Set when a simulator clock is installed; the fast path is one relaxed
/// load that keeps production on the real clock with zero locking.
static OVERRIDDEN: AtomicBool = AtomicBool::new(false);
static OVERRIDE: Mutex<Option<Arc<dyn Clock>>> = Mutex::new(None);

/// Installs `clock` as the process-global clock every seam-aware call site
/// ([`now`], [`sleep`]) reads from. Intended for simulation harnesses and
/// dedicated test binaries — the override is process-wide.
pub fn install(clock: Arc<dyn Clock>) {
    let mut slot = OVERRIDE.lock().unwrap_or_else(PoisonError::into_inner);
    *slot = Some(clock);
    OVERRIDDEN.store(true, Ordering::Release);
}

/// Removes any installed clock, returning the process to [`RealClock`].
pub fn uninstall() {
    OVERRIDDEN.store(false, Ordering::Release);
    let mut slot = OVERRIDE.lock().unwrap_or_else(PoisonError::into_inner);
    *slot = None;
}

/// The currently installed clock, or a [`RealClock`] handle.
pub fn global() -> Arc<dyn Clock> {
    if OVERRIDDEN.load(Ordering::Acquire) {
        if let Some(c) = OVERRIDE
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            return Arc::clone(c);
        }
    }
    static REAL: OnceLock<Arc<dyn Clock>> = OnceLock::new();
    Arc::clone(REAL.get_or_init(|| Arc::new(RealClock)))
}

/// Time since the global clock's epoch. Production fast path: one relaxed
/// atomic load plus `Instant::now()`.
pub fn now() -> Duration {
    if !OVERRIDDEN.load(Ordering::Acquire) {
        return real_epoch().elapsed();
    }
    global().now()
}

/// Sleeps on the global clock (really, or virtually under a simulator).
pub fn sleep(d: Duration) {
    if !OVERRIDDEN.load(Ordering::Acquire) {
        std::thread::sleep(d);
        return;
    }
    global().sleep(d);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic_and_sleeps() {
        let c = RealClock;
        let a = c.now();
        c.sleep(Duration::from_millis(2));
        let b = c.now();
        assert!(b >= a + Duration::from_millis(2), "{a:?} .. {b:?}");
    }

    #[test]
    fn auto_virtual_clock_advances_without_waiting() {
        let c = VirtualClock::auto();
        assert_eq!(c.now(), Duration::ZERO);
        let wall = Instant::now();
        c.sleep(Duration::from_secs(3600));
        assert!(
            wall.elapsed() < Duration::from_secs(5),
            "did not wall-sleep"
        );
        assert_eq!(c.now(), Duration::from_secs(3600));
        c.advance(Duration::from_millis(1));
        assert_eq!(
            c.now(),
            Duration::from_secs(3600) + Duration::from_millis(1)
        );
    }

    #[test]
    fn manual_virtual_clock_wakes_sleepers_in_deadline_order() {
        let c = VirtualClock::manual();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (tag, ms) in [("late", 30u64), ("early", 10), ("mid", 20)] {
            let c = Arc::clone(&c);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                c.sleep(Duration::from_millis(ms));
                order.lock().unwrap().push(tag);
            }));
        }
        // Wait for all three to park, then release them one deadline at a
        // time.
        while c.pending_sleepers() < 3 {
            std::thread::yield_now();
        }
        let mut woken = Vec::new();
        while let Some(now) = c.advance_to_next() {
            woken.push(now);
            // Let the released sleeper record itself before the next step.
            while c.pending_sleepers() > 3 - woken.len() {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            woken,
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(30)
            ]
        );
        assert_eq!(*order.lock().unwrap(), vec!["early", "mid", "late"]);
    }

    #[test]
    fn global_seam_defaults_to_real_and_swaps() {
        // Default: real time moves on its own.
        let a = now();
        let b = now();
        assert!(b >= a);
        // Install a virtual clock: time is frozen until slept.
        let v = VirtualClock::auto();
        install(v.clone() as Arc<dyn Clock>);
        let t0 = now();
        let t1 = now();
        assert_eq!(t0, t1, "virtual time does not flow by itself");
        sleep(Duration::from_millis(7));
        assert_eq!(now() - t0, Duration::from_millis(7));
        uninstall();
        let c = now();
        let d = now();
        assert!(d >= c);
    }
}
