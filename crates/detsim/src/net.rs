//! The transport seam: an in-memory stream whose misbehavior is data.
//!
//! [`SimStream`] implements [`Read`] + [`Write`] over two byte buffers (an
//! inbox the simulated peer filled, an outbox capturing what the stack
//! wrote), with a *fault script* applied in order as operations happen:
//! transient errors, short reads/writes, connection drops, and latency
//! charged to the simulated clock. The script is part of the test input, so
//! a failing interaction is replayed by re-running the same script — no
//! real sockets, no timing luck.
//!
//! The serving stack's session loop is generic over `R: BufRead` and
//! `W: Write`, so a `SimStream` (or its [`SimStream::split`] halves) drops
//! in where a `TcpStream`/`UnixStream` would go, exercising the exact
//! production read/parse/respond code.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use crate::clock;

/// One scripted misbehavior, consumed in order as I/O operations occur.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The next read returns [`io::ErrorKind::Interrupted`] once (the
    /// retryable kind `read_bounded_line` is documented to absorb).
    InterruptRead,
    /// The next read returns at most this many bytes even if more are
    /// buffered — a split/partial line across reads.
    ShortRead(usize),
    /// The next write accepts at most this many bytes (a partial write the
    /// caller must continue).
    ShortWrite(usize),
    /// The next write returns [`io::ErrorKind::Interrupted`] once.
    InterruptWrite,
    /// The connection drops: this and every later read yields EOF and every
    /// later write [`io::ErrorKind::BrokenPipe`].
    Drop,
    /// The next operation first sleeps this long on the global clock
    /// (instant under a virtual clock, but the timestamps advance).
    Latency(Duration),
}

#[derive(Debug, Default)]
struct StreamState {
    inbox: VecDeque<u8>,
    outbox: Vec<u8>,
    read_faults: VecDeque<Fault>,
    write_faults: VecDeque<Fault>,
    /// Closed for input: reads past the inbox return EOF instead of
    /// blocking-equivalent `WouldBlock`.
    input_closed: bool,
    dropped: bool,
}

/// A scriptable in-memory byte stream standing in for a client socket.
///
/// Cloning yields another handle to the same stream (both halves of a
/// duplex pipe share state), which is how the session reader and writer
/// sides observe a single `Drop` fault together.
#[derive(Debug, Clone, Default)]
pub struct SimStream {
    state: Arc<Mutex<StreamState>>,
}

impl SimStream {
    /// An open stream with empty buffers and no faults scripted.
    pub fn new() -> SimStream {
        SimStream::default()
    }

    fn lock(&self) -> MutexGuard<'_, StreamState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Queues `bytes` as input from the simulated peer.
    pub fn push_input(&self, bytes: &[u8]) {
        self.lock().inbox.extend(bytes.iter().copied());
    }

    /// Marks the input side finished: once the inbox drains, reads return
    /// EOF (a client that sent its requests and half-closed).
    pub fn close_input(&self) {
        self.lock().input_closed = true;
    }

    /// Scripts a fault against the read side, applied in push order.
    pub fn script_read_fault(&self, fault: Fault) {
        self.lock().read_faults.push_back(fault);
    }

    /// Scripts a fault against the write side, applied in push order.
    pub fn script_write_fault(&self, fault: Fault) {
        self.lock().write_faults.push_back(fault);
    }

    /// Everything the stack has written so far.
    pub fn output(&self) -> Vec<u8> {
        self.lock().outbox.clone()
    }

    /// Takes and clears the captured output.
    pub fn take_output(&self) -> Vec<u8> {
        std::mem::take(&mut self.lock().outbox)
    }

    /// Whether a [`Fault::Drop`] has severed the connection.
    pub fn is_dropped(&self) -> bool {
        self.lock().dropped
    }

    /// Bytes still queued for reading.
    pub fn pending_input(&self) -> usize {
        self.lock().inbox.len()
    }

    /// Two handles to the same stream, conventionally (reader, writer).
    pub fn split(&self) -> (SimStream, SimStream) {
        (self.clone(), self.clone())
    }
}

impl Read for SimStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut cap = buf.len();
        loop {
            let fault = {
                let mut s = self.lock();
                if s.dropped {
                    return Ok(0); // dropped peer: EOF
                }
                s.read_faults.pop_front()
            };
            match fault {
                None => break,
                Some(Fault::InterruptRead) => {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "sim: interrupted read",
                    ));
                }
                Some(Fault::ShortRead(n)) => {
                    cap = cap.min(n.max(1));
                    break;
                }
                Some(Fault::Drop) => {
                    self.lock().dropped = true;
                    return Ok(0);
                }
                Some(Fault::Latency(d)) => {
                    clock::sleep(d);
                    // Latency stacks with whatever fault follows it.
                }
                // Write-side faults scripted on the read queue are a
                // script bug; surface loudly rather than misbehave quietly.
                Some(other) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("sim: {other:?} scripted on read side"),
                    ));
                }
            }
        }
        let mut s = self.lock();
        if s.inbox.is_empty() {
            if s.input_closed {
                return Ok(0);
            }
            // No data and the peer hasn't half-closed. A real socket would
            // block; in a deterministic single-threaded harness that is a
            // hang, so report it as a typed error the harness treats as a
            // failed invariant instead of deadlocking the run.
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "sim: read would block (no input scripted)",
            ));
        }
        let n = cap.min(s.inbox.len());
        for b in buf.iter_mut().take(n) {
            *b = s.inbox.pop_front().expect("len checked");
        }
        Ok(n)
    }
}

impl Write for SimStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut cap = buf.len();
        loop {
            let fault = {
                let mut s = self.lock();
                if s.dropped {
                    return Err(io::Error::new(io::ErrorKind::BrokenPipe, "sim: peer gone"));
                }
                s.write_faults.pop_front()
            };
            match fault {
                None => break,
                Some(Fault::InterruptWrite) => {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "sim: interrupted write",
                    ));
                }
                Some(Fault::ShortWrite(n)) => {
                    cap = cap.min(n.max(1));
                    break;
                }
                Some(Fault::Drop) => {
                    self.lock().dropped = true;
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "sim: connection dropped",
                    ));
                }
                Some(Fault::Latency(d)) => {
                    clock::sleep(d);
                }
                Some(other) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("sim: {other:?} scripted on write side"),
                    ));
                }
            }
        }
        let n = cap.min(buf.len());
        self.lock().outbox.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.lock().dropped {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "sim: peer gone"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use std::io::{BufRead, BufReader};

    #[test]
    fn round_trip_without_faults() {
        let s = SimStream::new();
        s.push_input(b"hello\nworld\n");
        s.close_input();
        let (r, mut w) = s.split();
        let mut lines = BufReader::new(r).lines();
        assert_eq!(lines.next().unwrap().unwrap(), "hello");
        assert_eq!(lines.next().unwrap().unwrap(), "world");
        assert!(lines.next().is_none(), "EOF after close_input");
        w.write_all(b"response\n").unwrap();
        assert_eq!(s.output(), b"response\n");
    }

    #[test]
    fn short_reads_split_lines_across_reads() {
        let s = SimStream::new();
        s.push_input(b"abcdef\n");
        s.close_input();
        s.script_read_fault(Fault::ShortRead(2));
        s.script_read_fault(Fault::ShortRead(3));
        let mut r = s.clone();
        let mut buf = [0u8; 16];
        assert_eq!(r.read(&mut buf).unwrap(), 2);
        assert_eq!(r.read(&mut buf).unwrap(), 3);
        assert_eq!(r.read(&mut buf).unwrap(), 2); // remainder
        assert_eq!(r.read(&mut buf).unwrap(), 0); // EOF
    }

    #[test]
    fn interrupted_then_data() {
        let s = SimStream::new();
        s.push_input(b"x");
        s.close_input();
        s.script_read_fault(Fault::InterruptRead);
        let mut r = s.clone();
        let mut buf = [0u8; 4];
        let err = r.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(r.read(&mut buf).unwrap(), 1);
    }

    #[test]
    fn drop_severs_both_sides() {
        let s = SimStream::new();
        s.push_input(b"pending");
        s.script_read_fault(Fault::Drop);
        let (mut r, mut w) = s.split();
        let mut buf = [0u8; 8];
        assert_eq!(r.read(&mut buf).unwrap(), 0, "drop reads as EOF");
        assert!(s.is_dropped());
        let err = w.write(b"late").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn short_and_interrupted_writes() {
        let s = SimStream::new();
        s.script_write_fault(Fault::ShortWrite(3));
        s.script_write_fault(Fault::InterruptWrite);
        let mut w = s.clone();
        assert_eq!(w.write(b"abcdef").unwrap(), 3);
        let err = w.write(b"def").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(w.write(b"def").unwrap(), 3);
        assert_eq!(s.output(), b"abcdef");
    }

    #[test]
    fn latency_charges_the_virtual_clock() {
        let v = crate::clock::VirtualClock::auto();
        crate::clock::install(v.clone());
        let s = SimStream::new();
        s.push_input(b"a");
        s.close_input();
        s.script_read_fault(Fault::Latency(Duration::from_millis(40)));
        let t0 = v.now();
        let mut buf = [0u8; 1];
        let mut r = s.clone();
        assert_eq!(r.read(&mut buf).unwrap(), 1);
        assert_eq!(v.now() - t0, Duration::from_millis(40));
        crate::clock::uninstall();
    }

    #[test]
    fn reading_with_no_input_is_wouldblock_not_hang() {
        let s = SimStream::new();
        let mut buf = [0u8; 4];
        let err = s.clone().read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }
}
