//! Deterministic-simulation seams for the `mtperf` workspace.
//!
//! Every availability claim the serving stack makes — "deadlines fire", "a
//! poisoned reload keeps the last known good model", "transient I/O is
//! retried and absorbed" — depends on three ambient effects: the clock, the
//! entropy source, and the I/O layer. As long as those are reached through
//! `Instant::now()`, `thread::sleep`, ad-hoc `SmallRng`s, and raw `std::fs`,
//! the only way to test the claims is to wait on real time and hope real I/O
//! misbehaves on cue. This crate turns each effect into a *seam*:
//!
//! * [`clock`] — a [`clock::Clock`] trait with a production
//!   [`clock::RealClock`] and a [`clock::VirtualClock`] whose time is data:
//!   sleeping advances a counter (or parks on a discrete-event queue)
//!   instead of the scheduler, so a 1/2/4/8 ms retry ladder unit-tests in
//!   microseconds and deadline races replay exactly.
//! * [`rng`] — a [`rng::GenericRng`] trait with an entropy-seeded
//!   production source and a seeded, forkable [`rng::SimRng`] (xoshiro256++
//!   behind a lock, in the style of MoosicBox's `switchy` simulator
//!   packages), plus [`rng::derive_seed`] so one root seed governs every
//!   subsystem without their draws interleaving.
//! * [`net`] — [`net::SimStream`], an in-memory transport whose fault
//!   script (transient errors, partial writes, drops, latency) is part of
//!   the test input.
//! * [`fs`] — a process-global fault hook consulted by `obs::fsio` before
//!   filesystem operations, so torn-save and retry-exhaustion paths are
//!   drivable from a seed instead of from `kill -9` timing luck.
//!
//! # Production stays production
//!
//! Each global seam ([`clock::install`], [`rng::install`],
//! [`fs::install`]) defaults to the real implementation behind one relaxed
//! atomic load — the same disabled-by-default discipline as the `obs`
//! crate. A process that never installs a simulator runs the exact code it
//! ran before this crate existed; the serve golden tests and prediction
//! bit-identity suites pin that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod fs;
pub mod net;
pub mod rng;

pub use clock::{Clock, RealClock, VirtualClock};
pub use fs::{FaultHook, FaultScript, FsOp};
pub use net::{Fault, SimStream};
pub use rng::{derive_seed, EntropyRng, GenericRng, SimRng};
