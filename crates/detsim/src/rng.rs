//! The randomness seam: one trait over "where do random bits come from",
//! with an entropy-seeded production source and a seeded simulator source.
//!
//! Scattered ad-hoc `SmallRng::seed_from_u64` call sites each own a private
//! seed, so "replay the failing run" means collecting one seed per
//! subsystem. This module centralizes the discipline:
//!
//! * [`GenericRng`] — shared-reference random bits (`&self`, interior
//!   mutability) so one source can be threaded through concurrent code.
//! * [`SimRng`] — a seeded xoshiro256++ stream behind a lock, bit-identical
//!   to `SmallRng::seed_from_u64` for the same seed. Cloning *forks* the
//!   current state (value semantics), which is what deterministic
//!   generators embedded in cloneable structs need; shared-handle semantics
//!   are an `Arc<SimRng>` away.
//! * [`EntropyRng`] — the production source: seeded once per process from
//!   system entropy (time, PID, ASLR), then deterministic *within* the
//!   process. Non-reproducible across runs, as production randomness
//!   should be.
//! * [`derive_seed`] — stable domain separation, so a single root seed
//!   (e.g. `MTPERF_SIM_SEED`) governs fault injection, workload
//!   generation, and session scheduling without their draws interleaving.
//!
//! # Example
//!
//! ```
//! use mtperf_detsim::rng::{derive_seed, GenericRng, SimRng};
//!
//! let root = 42u64;
//! let faults = SimRng::seed_from_u64(derive_seed(root, "faults"));
//! let workload = SimRng::seed_from_u64(derive_seed(root, "workload"));
//! assert_ne!(faults.next_u64(), workload.next_u64());
//! // Same seed, same stream:
//! let again = SimRng::seed_from_u64(derive_seed(root, "faults"));
//! let replay = SimRng::seed_from_u64(derive_seed(root, "faults"));
//! assert_eq!(again.next_u64(), replay.next_u64());
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Shared-reference source of random bits, with derived sampling helpers.
///
/// All methods take `&self`: implementations use interior mutability so a
/// single source can serve many call sites. The helpers are deliberately
/// simple, deterministic recipes (widening-multiply index, 53-bit float) —
/// code that must stay bit-compatible with historical `rand` streams keeps
/// using the [`rand::Rng`] extension methods through [`SimRng`]'s
/// [`RngCore`] impl instead.
pub trait GenericRng: Send + Sync + fmt::Debug {
    /// The next 64 random bits.
    fn next_u64(&self) -> u64;

    /// The next 32 random bits (high half of a 64-bit draw, as xoshiro
    /// recommends).
    fn next_u32(&self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform index in `0..n` via the widening-multiply map (`n` ≥ 1).
    fn gen_index(&self, n: usize) -> usize {
        assert!(n > 0, "gen_index needs a non-empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)` (53-bit multiply recipe).
    fn gen_f64(&self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

/// Seeded simulator source: xoshiro256++ behind a lock, bit-identical to
/// [`SmallRng::seed_from_u64`] for the same seed.
///
/// `Clone` forks the stream at its current state: the clone and the
/// original produce the same continuation independently. That preserves
/// the value semantics of generators embedded in `Clone` structs (an
/// `InstrStream` cloned mid-run replays identically). For one shared
/// stream, pass `Arc<SimRng>` — every [`GenericRng`] method takes `&self`.
pub struct SimRng {
    inner: Mutex<SmallRng>,
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimRng").finish_non_exhaustive()
    }
}

impl Clone for SimRng {
    fn clone(&self) -> Self {
        SimRng {
            inner: Mutex::new(self.lock().clone()),
        }
    }
}

impl PartialEq for SimRng {
    fn eq(&self, other: &Self) -> bool {
        *self.lock() == *other.lock()
    }
}

impl SimRng {
    /// A stream fully determined by `seed` (SplitMix64-stretched, matching
    /// `rand 0.8`'s `SmallRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> SimRng {
        SimRng {
            inner: Mutex::new(SmallRng::seed_from_u64(seed)),
        }
    }

    /// Wraps an existing generator state.
    pub fn from_small(rng: SmallRng) -> SimRng {
        SimRng {
            inner: Mutex::new(rng),
        }
    }

    /// A child stream for `domain`, derived from this stream's seed line
    /// without consuming shared state draws: the child is seeded from one
    /// draw of this stream mixed with the domain tag.
    pub fn fork(&self, domain: &str) -> SimRng {
        SimRng::seed_from_u64(derive_seed(self.next_u64(), domain))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SmallRng> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl GenericRng for SimRng {
    fn next_u64(&self) -> u64 {
        self.lock().next_u64()
    }

    fn next_u32(&self) -> u32 {
        self.lock().next_u32()
    }

    fn fill_bytes(&self, dest: &mut [u8]) {
        self.lock().fill_bytes(dest);
    }
}

/// [`RngCore`] pass-through, so [`rand::Rng`]'s `gen`/`gen_range` work on a
/// `SimRng` with the exact historical `rand 0.8` sampling algorithms —
/// the property that keeps fault-injection and workload streams
/// bit-identical after their port onto this type.
impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.lock().next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.lock().next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.lock().fill_bytes(dest);
    }
}

/// Production source: one process-global xoshiro stream seeded from system
/// entropy (monotonic + wall time, PID, and a stack address for ASLR
/// spice). Within a process the stream is a normal deterministic PRNG;
/// across processes it is effectively unpredictable — which is all the
/// production uses (retry jitter) need.
#[derive(Debug, Clone, Copy, Default)]
pub struct EntropyRng;

fn entropy_seed() -> u64 {
    let pid = u64::from(std::process::id());
    let wall = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let stack = &pid as *const u64 as usize as u64;
    derive_seed(wall ^ pid.rotate_left(32), "entropy") ^ stack.rotate_left(17)
}

fn entropy_stream() -> &'static SimRng {
    static STREAM: OnceLock<SimRng> = OnceLock::new();
    STREAM.get_or_init(|| SimRng::seed_from_u64(entropy_seed()))
}

impl GenericRng for EntropyRng {
    fn next_u64(&self) -> u64 {
        entropy_stream().next_u64()
    }
}

/// Stable domain separation: mixes `root` with an FNV-1a hash of `domain`
/// through a SplitMix64 finalizer. Same inputs, same output, forever — the
/// function is part of the replay contract.
pub fn derive_seed(root: u64, domain: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in domain.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    // SplitMix64 finalizer over the combination.
    let mut z = root ^ h.rotate_left(31);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Set when a simulator RNG is installed as the process-global source.
static OVERRIDDEN: AtomicBool = AtomicBool::new(false);
static OVERRIDE: Mutex<Option<Arc<dyn GenericRng>>> = Mutex::new(None);

/// Installs `rng` as the process-global randomness source consulted by
/// seam-aware production sites (e.g. retry jitter). Process-wide; intended
/// for simulation harnesses and dedicated test binaries.
pub fn install(rng: Arc<dyn GenericRng>) {
    let mut slot = OVERRIDE.lock().unwrap_or_else(PoisonError::into_inner);
    *slot = Some(rng);
    OVERRIDDEN.store(true, Ordering::Release);
}

/// Returns the process to the entropy-seeded production source.
pub fn uninstall() {
    OVERRIDDEN.store(false, Ordering::Release);
    let mut slot = OVERRIDE.lock().unwrap_or_else(PoisonError::into_inner);
    *slot = None;
}

/// The installed source, or [`EntropyRng`].
pub fn global() -> Arc<dyn GenericRng> {
    if OVERRIDDEN.load(Ordering::Acquire) {
        if let Some(r) = OVERRIDE
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            return Arc::clone(r);
        }
    }
    static ENTROPY: OnceLock<Arc<dyn GenericRng>> = OnceLock::new();
    Arc::clone(ENTROPY.get_or_init(|| Arc::new(EntropyRng)))
}

/// One 64-bit draw from the global source — the convenience call for
/// low-rate production sites like retry jitter.
pub fn global_next_u64() -> u64 {
    if !OVERRIDDEN.load(Ordering::Acquire) {
        return entropy_stream().next_u64();
    }
    global().next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn sim_rng_matches_small_rng_stream() {
        let sim = SimRng::seed_from_u64(2007);
        let mut small = SmallRng::seed_from_u64(2007);
        for _ in 0..32 {
            assert_eq!(GenericRng::next_u64(&sim), small.next_u64());
        }
    }

    #[test]
    fn rngcore_path_matches_rand_sampling() {
        // gen_range through SimRng must equal gen_range through SmallRng —
        // the bit-compat contract the faultinject/workload ports rely on.
        let mut sim = SimRng::seed_from_u64(7);
        let mut small = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(sim.gen_range(3..17usize), small.gen_range(3..17usize));
            assert_eq!(sim.gen::<f64>(), small.gen::<f64>());
        }
    }

    #[test]
    fn clone_forks_the_stream() {
        let a = SimRng::seed_from_u64(5);
        let _ = a.next_u64();
        let b = a.clone();
        // Fork point equal, then independent but identical continuations.
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derive_seed_is_stable_and_domain_separated() {
        let a = derive_seed(42, "faults");
        assert_eq!(a, derive_seed(42, "faults"));
        assert_ne!(a, derive_seed(42, "workload"));
        assert_ne!(a, derive_seed(43, "faults"));
        // Pinned value: this function is part of the replay contract; a
        // silent change would orphan every recorded failing seed.
        assert_eq!(derive_seed(42, "faults"), 0x8f6d_d67c_1ece_3c91);
    }

    #[test]
    fn helper_distributions_are_in_range() {
        let rng = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(rng.gen_index(10) < 10);
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn fork_domains_differ() {
        let root = SimRng::seed_from_u64(1);
        let a = root.fork("a");
        let b = root.fork("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn entropy_rng_draws_without_panicking() {
        let r = EntropyRng;
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b, "stream advances");
    }
}
