//! The six-model comparison suite and its concurrent trainer.
//!
//! The paper's method comparison pits M5' against the companion SMART'07
//! study's black boxes (ANN, SVM) plus the simpler yardsticks (global OLS,
//! CART, k-NN). [`standard_suite`] builds exactly that line-up;
//! [`train_suite`] fits every member concurrently via the workspace's
//! deterministic [`try_par_map`] — each learner trains on its own thread,
//! panic-isolated, and results come back in suite order regardless of
//! thread count.

use mtperf_linalg::parallel::{try_par_map, Parallelism};
use mtperf_mtree::{Dataset, Learner, M5Learner, M5Params, MtreeError, Predictor};

use crate::{CartLearner, GlobalLinear, KnnLearner, MlpLearner, SvrLearner};

/// The paper's six-model comparison line-up, in report order:
/// M5', global OLS, CART, k-NN (k = 5), MLP (16 hidden, 80 epochs), SVR.
///
/// `params` configures the model tree; CART reuses its `min_instances` so
/// the constant-leaf ablation splits under the same stopping rule.
pub fn standard_suite(params: &M5Params) -> Vec<Box<dyn Learner>> {
    vec![
        Box::new(M5Learner::new(params.clone())),
        Box::new(GlobalLinear::new()),
        Box::new(CartLearner::new(params.min_instances())),
        Box::new(KnnLearner::new(5)),
        Box::new(MlpLearner::new(16).with_epochs(80)),
        Box::new(SvrLearner::default()),
    ]
}

/// Trains every learner in the suite on `data`, concurrently.
///
/// Returns `(name, model)` pairs in suite order; any thread budget yields
/// the same models because each fit is independent and deterministic.
///
/// # Errors
///
/// Propagates the first learner failure (in suite order); a learner that
/// panics mid-fit surfaces as [`MtreeError::Linalg`] (worker panic) instead
/// of unwinding through the caller.
#[allow(clippy::type_complexity)]
pub fn train_suite(
    learners: &[Box<dyn Learner>],
    data: &Dataset,
    par: Parallelism,
) -> Result<Vec<(String, Box<dyn Predictor>)>, MtreeError> {
    let mut suite_span = mtperf_obs::span("baseline_suite");
    suite_span.add("learners", learners.len() as u64);
    try_par_map(par, learners, 1, |learner| {
        let mut fit_span = mtperf_obs::span("baseline_fit");
        fit_span.annotate("learner", learner.name());
        learner
            .fit(data)
            .map(|model| (learner.name().to_string(), model))
    })
    .map_err(MtreeError::from)?
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let rows: Vec<[f64; 2]> = (0..80)
            .map(|i| [(i % 10) as f64, (i / 10) as f64])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 0.5 * r[1]).collect();
        Dataset::from_rows(vec!["a".into(), "b".into()], &rows, &ys).unwrap()
    }

    #[test]
    fn suite_has_the_six_paper_models() {
        let suite = standard_suite(&M5Params::default());
        let names: Vec<&str> = suite.iter().map(|l| l.name()).collect();
        assert_eq!(names.len(), 6);
        assert!(names[0].contains("M5"));
        // All names are distinct.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn concurrent_training_matches_serial_predictions() {
        let d = data();
        let params = M5Params::default().with_min_instances(8);
        let serial = train_suite(&standard_suite(&params), &d, Parallelism::Off).unwrap();
        let parallel = train_suite(&standard_suite(&params), &d, Parallelism::Fixed(6)).unwrap();
        assert_eq!(serial.len(), 6);
        for ((name_s, model_s), (name_p, model_p)) in serial.iter().zip(parallel.iter()) {
            assert_eq!(name_s, name_p);
            for probe in [[0.0, 0.0], [4.5, 3.5], [9.0, 7.0]] {
                let (a, b) = (model_s.predict(&probe), model_p.predict(&probe));
                assert_eq!(a.to_bits(), b.to_bits(), "{name_s} diverged at {probe:?}");
            }
        }
    }

    #[test]
    fn training_failure_propagates() {
        let empty = Dataset::new(vec!["x".into()]).unwrap();
        let suite = standard_suite(&M5Params::default());
        assert!(train_suite(&suite, &empty, Parallelism::Fixed(4)).is_err());
    }
}
