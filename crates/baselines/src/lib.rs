//! Baseline regression algorithms for `mtperf`'s method comparison.
//!
//! The paper validates the model tree against the alternatives its
//! companion study (SMART'07, its reference \[23\]) evaluated on the same data:
//! artificial neural networks (C ≈ 0.99) and support vector machines
//! (C ≈ 0.98), plus the simpler yardsticks a fair comparison needs — a
//! single global linear model and a constant-leaf regression tree (CART)
//! whose weaknesses motivate model trees in the first place.
//!
//! Every algorithm implements [`mtperf_mtree::Learner`], so the evaluation
//! harness cross-validates them identically:
//!
//! ```
//! use mtperf_baselines::GlobalLinear;
//! use mtperf_mtree::{Dataset, Learner};
//!
//! let d = Dataset::from_rows(
//!     vec!["x".into()],
//!     &[[0.0], [1.0], [2.0]],
//!     &[1.0, 3.0, 5.0],
//! ).unwrap();
//! let model = GlobalLinear::default().fit(&d).unwrap();
//! assert!((model.predict(&[3.0]) - 7.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cart;
mod ensemble;
mod knn;
mod linreg;
mod mlp;
mod scale;
mod suite;
mod svr;

pub use cart::{CartLearner, CartTree};
pub use ensemble::{BaggedTrees, BaggingLearner};
pub use knn::{KnnLearner, KnnModel};
pub use linreg::GlobalLinear;
pub use mlp::{MlpLearner, MlpModel};
pub use scale::Standardizer;
pub use suite::{standard_suite, train_suite};
pub use svr::{SvrLearner, SvrModel};
