//! Feature standardization shared by the distance- and gradient-based
//! baselines (k-NN, MLP, SVR), whose behavior degrades badly on the raw
//! event rates (which span five orders of magnitude).

use serde::{Deserialize, Serialize};

use mtperf_linalg::stats;
use mtperf_mtree::Dataset;

/// Per-column z-score standardizer fitted on a training set.
///
/// Columns with zero variance map to 0.0 (they carry no information).
///
/// # Example
///
/// ```
/// use mtperf_baselines::Standardizer;
/// use mtperf_mtree::Dataset;
///
/// let d = Dataset::from_rows(
///     vec!["x".into()],
///     &[[0.0], [10.0]],
///     &[0.0, 0.0],
/// ).unwrap();
/// let s = Standardizer::fit(&d);
/// let z = s.transform_row(&[5.0]);
/// assert!(z[0].abs() < 1e-12); // 5.0 is the mean
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits column means and standard deviations on `data`.
    pub fn fit(data: &Dataset) -> Self {
        let mut means = Vec::with_capacity(data.n_attrs());
        let mut stds = Vec::with_capacity(data.n_attrs());
        for j in 0..data.n_attrs() {
            let col = data.column(j);
            means.push(stats::mean(col));
            stds.push(stats::std_dev(col));
        }
        Standardizer { means, stds }
    }

    /// Number of columns the standardizer was fitted on.
    pub fn n_attrs(&self) -> usize {
        self.means.len()
    }

    /// Standardizes one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the fitted column count.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert!(row.len() >= self.means.len());
        self.means
            .iter()
            .zip(&self.stds)
            .zip(row)
            .map(|((m, s), v)| if *s > 0.0 { (v - m) / s } else { 0.0 })
            .collect()
    }

    /// Standardizes every row of `data` into a dense row-major table.
    pub fn transform_all(&self, data: &Dataset) -> Vec<Vec<f64>> {
        (0..data.n_rows())
            .map(|i| self.transform_row(&data.row(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        Dataset::from_rows(
            vec!["a".into(), "b".into()],
            &[[0.0, 5.0], [2.0, 5.0], [4.0, 5.0]],
            &[0.0, 0.0, 0.0],
        )
        .unwrap()
    }

    #[test]
    fn standardizes_to_zero_mean_unit_sd() {
        let d = data();
        let s = Standardizer::fit(&d);
        let all = s.transform_all(&d);
        let col0: Vec<f64> = all.iter().map(|r| r[0]).collect();
        assert!(stats::mean(&col0).abs() < 1e-12);
        assert!((stats::std_dev(&col0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let d = data();
        let s = Standardizer::fit(&d);
        for r in s.transform_all(&d) {
            assert_eq!(r[1], 0.0);
        }
    }

    #[test]
    fn transform_is_affine() {
        let d = data();
        let s = Standardizer::fit(&d);
        let a = s.transform_row(&[1.0, 5.0]);
        let b = s.transform_row(&[3.0, 5.0]);
        let mid = s.transform_row(&[2.0, 5.0]);
        assert!(((a[0] + b[0]) / 2.0 - mid[0]).abs() < 1e-12);
    }
}
