//! Bagged model trees: a bootstrap ensemble of M5' trees.
//!
//! An extension beyond the paper: averaging trees trained on bootstrap
//! resamples trades the single tree's interpretability for variance
//! reduction — the standard next step when a model tree's accuracy gap to
//! the black boxes matters more than readability. Keeping it here (rather
//! than in the core crate) preserves the paper's framing: the *single* tree
//! is the contribution, the ensemble is a baseline-grade alternative.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mtperf_mtree::{Dataset, Learner, M5Params, ModelTree, MtreeError, Predictor};

/// A fitted bag of model trees; predicts the mean of its members.
#[derive(Debug, Clone)]
pub struct BaggedTrees {
    trees: Vec<ModelTree>,
}

impl BaggedTrees {
    /// Number of member trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The member trees.
    pub fn trees(&self) -> &[ModelTree] {
        &self.trees
    }
}

impl Predictor for BaggedTrees {
    fn predict(&self, row: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict(row)).sum();
        sum / self.trees.len() as f64
    }
}

/// Learner for [`BaggedTrees`].
#[derive(Debug, Clone)]
pub struct BaggingLearner {
    /// Number of bootstrap members.
    pub n_trees: usize,
    /// Parameters of each member tree.
    pub params: M5Params,
    /// Seed for the bootstrap resampling.
    pub seed: u64,
}

impl BaggingLearner {
    /// Creates a learner with `n_trees` members using `params` each.
    pub fn new(n_trees: usize, params: M5Params) -> Self {
        BaggingLearner {
            n_trees,
            params,
            seed: 0xBA66,
        }
    }

    /// Sets the bootstrap seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fits and returns the concrete ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`MtreeError::BadParams`] when `n_trees == 0` and propagates
    /// member-training failures.
    pub fn fit_bag(&self, data: &Dataset) -> Result<BaggedTrees, MtreeError> {
        if self.n_trees == 0 {
            return Err(MtreeError::BadParams("n_trees must be >= 1".into()));
        }
        if data.n_rows() == 0 {
            return Err(MtreeError::EmptyDataset);
        }
        let n = data.n_rows();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut trees = Vec::with_capacity(self.n_trees);
        for _ in 0..self.n_trees {
            let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let resample = data.subset(&idx);
            trees.push(ModelTree::fit(&resample, &self.params)?);
        }
        Ok(BaggedTrees { trees })
    }
}

impl Learner for BaggingLearner {
    fn fit(&self, data: &Dataset) -> Result<Box<dyn Predictor>, MtreeError> {
        Ok(Box::new(self.fit_bag(data)?))
    }

    fn name(&self) -> &str {
        "Bagged M5' trees"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_piecewise(n: usize) -> Dataset {
        let rows: Vec<[f64; 1]> = (0..n).map(|i| [(i % 100) as f64]).collect();
        let mut state = 7u64;
        let mut noise = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2.0
        };
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| {
                let base = if r[0] <= 50.0 { r[0] } else { 100.0 - r[0] };
                base + noise()
            })
            .collect();
        Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap()
    }

    fn params() -> M5Params {
        M5Params::default()
            .with_min_instances(10)
            .with_smoothing(false)
    }

    #[test]
    fn ensemble_trains_all_members() {
        let d = noisy_piecewise(300);
        let bag = BaggingLearner::new(7, params()).fit_bag(&d).unwrap();
        assert_eq!(bag.n_trees(), 7);
        assert_eq!(bag.trees().len(), 7);
    }

    #[test]
    fn ensemble_prediction_is_member_mean() {
        let d = noisy_piecewise(200);
        let bag = BaggingLearner::new(5, params()).fit_bag(&d).unwrap();
        let row = [25.0];
        let mean: f64 = bag.trees().iter().map(|t| t.predict(&row)).sum::<f64>() / 5.0;
        assert!((bag.predict(&row) - mean).abs() < 1e-12);
    }

    #[test]
    fn bagging_reduces_test_error_on_noisy_data() {
        let d = noisy_piecewise(400);
        let (train, test) = {
            let train_idx: Vec<usize> = (0..400).filter(|i| i % 4 != 0).collect();
            let test_idx: Vec<usize> = (0..400).filter(|i| i % 4 == 0).collect();
            (d.subset(&train_idx), d.subset(&test_idx))
        };
        let single = ModelTree::fit(&train, &params()).unwrap();
        let bag = BaggingLearner::new(15, params()).fit_bag(&train).unwrap();
        let err = |f: &dyn Fn(&[f64]) -> f64| -> f64 {
            (0..test.n_rows())
                .map(|i| (f(&test.row(i)) - test.target(i)).abs())
                .sum::<f64>()
                / test.n_rows() as f64
        };
        let single_err = err(&|r| single.predict(r));
        let bag_err = err(&|r| bag.predict(r));
        assert!(
            bag_err <= single_err * 1.05,
            "bag {bag_err} vs single {single_err}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let d = noisy_piecewise(150);
        let a = BaggingLearner::new(3, params())
            .with_seed(5)
            .fit_bag(&d)
            .unwrap();
        let b = BaggingLearner::new(3, params())
            .with_seed(5)
            .fit_bag(&d)
            .unwrap();
        assert_eq!(a.predict(&[10.0]), b.predict(&[10.0]));
    }

    #[test]
    fn rejects_bad_inputs() {
        let d = noisy_piecewise(50);
        assert!(BaggingLearner::new(0, params()).fit_bag(&d).is_err());
        let empty = Dataset::new(vec!["x".into()]).unwrap();
        assert!(BaggingLearner::new(3, params()).fit_bag(&empty).is_err());
    }

    #[test]
    fn learner_trait_integration() {
        let d = noisy_piecewise(100);
        let learner = BaggingLearner::new(3, params());
        assert_eq!(learner.name(), "Bagged M5' trees");
        let model = learner.fit(&d).unwrap();
        assert!(model.predict(&[10.0]).is_finite());
    }
}
