//! CART-style regression tree: the same recursive partitioning as M5', but
//! with **constant** predictions at the leaves (Breiman et al. 1984).
//!
//! The paper contrasts model trees against exactly this class: "regression
//! trees are used to fit piecewise constant functions, while model trees
//! are used to fit piecewise multi-linear functions", and notes model trees'
//! higher accuracy. The shared split machinery (`mtperf_mtree::best_split`)
//! makes the comparison a pure leaf-model ablation.

use serde::{Deserialize, Serialize};

use mtperf_linalg::stats;
use mtperf_mtree::{best_split, Dataset, Learner, MtreeError, Predictor};

/// A fitted CART regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CartTree {
    root: CartNode,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum CartNode {
    Leaf {
        value: f64,
        n: usize,
    },
    Split {
        attr: usize,
        threshold: f64,
        left: Box<CartNode>,
        right: Box<CartNode>,
    },
}

impl CartTree {
    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        fn count(n: &CartNode) -> usize {
            match n {
                CartNode::Leaf { .. } => 1,
                CartNode::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }
}

impl Predictor for CartTree {
    fn predict(&self, row: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                CartNode::Leaf { value, .. } => return *value,
                CartNode::Split {
                    attr,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*attr] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

/// Learner for [`CartTree`].
#[derive(Debug, Clone)]
pub struct CartLearner {
    /// Minimum instances per leaf.
    pub min_instances: usize,
    /// Stop splitting below this fraction of the root standard deviation.
    pub sd_fraction: f64,
}

impl CartLearner {
    /// Creates a learner with the given minimum leaf size.
    pub fn new(min_instances: usize) -> Self {
        CartLearner {
            min_instances,
            sd_fraction: 0.05,
        }
    }
}

impl Default for CartLearner {
    fn default() -> Self {
        CartLearner::new(4)
    }
}

fn grow(data: &Dataset, idx: Vec<usize>, min_instances: usize, sd_stop: f64) -> CartNode {
    let ys: Vec<f64> = idx.iter().map(|&i| data.target(i)).collect();
    let mean = stats::mean(&ys);
    let sd = stats::std_dev(&ys);
    if sd < sd_stop || idx.len() < 2 * min_instances {
        return CartNode::Leaf {
            value: mean,
            n: idx.len(),
        };
    }
    match best_split(data, &idx, min_instances) {
        None => CartNode::Leaf {
            value: mean,
            n: idx.len(),
        },
        Some(s) => {
            let col = data.column(s.attr);
            let (l, r): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| col[i] <= s.threshold);
            CartNode::Split {
                attr: s.attr,
                threshold: s.threshold,
                left: Box::new(grow(data, l, min_instances, sd_stop)),
                right: Box::new(grow(data, r, min_instances, sd_stop)),
            }
        }
    }
}

impl Learner for CartLearner {
    fn fit(&self, data: &Dataset) -> Result<Box<dyn Predictor>, MtreeError> {
        if data.n_rows() == 0 {
            return Err(MtreeError::EmptyDataset);
        }
        if self.min_instances == 0 {
            return Err(MtreeError::BadParams("min_instances must be >= 1".into()));
        }
        let idx: Vec<usize> = (0..data.n_rows()).collect();
        let sd_stop = self.sd_fraction * stats::std_dev(data.targets());
        Ok(Box::new(CartTree {
            root: grow(data, idx, self.min_instances, sd_stop),
        }))
    }

    fn name(&self) -> &str {
        "CART regression tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step() -> Dataset {
        let rows: Vec<[f64; 1]> = (0..40).map(|i| [i as f64]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] <= 20.0 { 1.0 } else { 5.0 })
            .collect();
        Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap()
    }

    #[test]
    fn learns_step_function() {
        let m = CartLearner::new(4).fit(&step()).unwrap();
        assert!((m.predict(&[5.0]) - 1.0).abs() < 1e-9);
        assert!((m.predict(&[35.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn constant_leaves_cannot_fit_slopes() {
        // y = x: CART approximates with a staircase; pointwise error is
        // bounded by the leaf width, but a model tree would be exact.
        let rows: Vec<[f64; 1]> = (0..64).map(|i| [i as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let d = Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap();
        let m = CartLearner::new(8).fit(&d).unwrap();
        let worst = (0..64)
            .map(|i| (m.predict(&[i as f64]) - i as f64).abs())
            .fold(0.0f64, f64::max);
        assert!(
            worst > 1.0,
            "staircase must have visible error, got {worst}"
        );
        assert!(worst < 16.0, "but bounded by leaf width, got {worst}");
    }

    #[test]
    fn min_instances_bounds_leaf_count() {
        let d = step();
        let fine = CartLearner::new(2).fit(&d).unwrap();
        let coarse = CartLearner::new(20).fit(&d).unwrap();
        // Both learn the step; the coarse one is a 2-leaf tree.
        assert!((coarse.predict(&[0.0]) - 1.0).abs() < 1e-9);
        let _ = fine;
    }

    #[test]
    fn rejects_bad_inputs() {
        let d = Dataset::new(vec!["x".into()]).unwrap();
        assert!(CartLearner::default().fit(&d).is_err());
        let l = CartLearner {
            min_instances: 0,
            ..CartLearner::default()
        };
        assert!(l.fit(&step()).is_err());
    }

    #[test]
    fn n_leaves_counts() {
        let d = step();
        let learner = CartLearner::new(4);
        let idx: Vec<usize> = (0..d.n_rows()).collect();
        let sd_stop = 0.05 * stats::std_dev(d.targets());
        let tree = CartTree {
            root: grow(&d, idx, learner.min_instances, sd_stop),
        };
        assert!(tree.n_leaves() >= 2);
    }
}
