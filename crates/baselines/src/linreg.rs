//! Global ordinary-least-squares regression.
//!
//! This is the approach of the first-order models the paper's related-work
//! section critiques ([10], [11]): a single linear formula for CPI over all
//! events, with no notion of workload classes. Its gap to the model tree on
//! phase-heterogeneous data is precisely the paper's motivation.

use mtperf_mtree::{Dataset, Learner, LinearModel, MtreeError, Predictor};

/// A single linear model over all attributes, fitted by least squares with
/// M5-style term elimination.
#[derive(Debug, Clone, Default)]
pub struct GlobalLinear {
    /// When `true` (default), greedily drop terms that do not pay for
    /// themselves under the inflated-error criterion.
    pub eliminate_terms: bool,
}

impl GlobalLinear {
    /// Creates the learner with term elimination enabled.
    pub fn new() -> Self {
        GlobalLinear {
            eliminate_terms: true,
        }
    }
}

struct FittedLinear(LinearModel);

impl Predictor for FittedLinear {
    fn predict(&self, row: &[f64]) -> f64 {
        self.0.predict(row)
    }
}

impl Learner for GlobalLinear {
    fn fit(&self, data: &Dataset) -> Result<Box<dyn Predictor>, MtreeError> {
        if data.n_rows() == 0 {
            return Err(MtreeError::EmptyDataset);
        }
        let idx: Vec<usize> = (0..data.n_rows()).collect();
        let attrs: Vec<usize> = (0..data.n_attrs()).collect();
        let model = if self.eliminate_terms {
            LinearModel::fit_with_elimination(data, &idx, &attrs)?
        } else {
            LinearModel::fit(data, &idx, &attrs)?
        };
        Ok(Box::new(FittedLinear(model)))
    }

    fn name(&self) -> &str {
        "Global linear regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_global_line() {
        let rows: Vec<[f64; 2]> = (0..30).map(|i| [i as f64, (i % 4) as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 1.0 + 2.0 * r[0] - 0.5 * r[1]).collect();
        let d = Dataset::from_rows(vec!["a".into(), "b".into()], &rows, &ys).unwrap();
        let m = GlobalLinear::new().fit(&d).unwrap();
        assert!((m.predict(&[10.0, 2.0]) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn underfits_piecewise_data() {
        // The motivating failure: a global line cannot capture two regimes.
        let rows: Vec<[f64; 1]> = (0..100).map(|i| [i as f64]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] <= 50.0 { 0.0 } else { 100.0 })
            .collect();
        let d = Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap();
        let m = GlobalLinear::new().fit(&d).unwrap();
        // At the regime centers the line is badly wrong.
        assert!((m.predict(&[25.0]) - 0.0).abs() > 10.0);
    }

    #[test]
    fn rejects_empty() {
        let d = Dataset::new(vec!["x".into()]).unwrap();
        assert!(GlobalLinear::new().fit(&d).is_err());
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(GlobalLinear::new().name(), "Global linear regression");
    }
}
