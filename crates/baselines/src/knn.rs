//! k-nearest-neighbors regression over standardized features.
//!
//! A non-parametric yardstick: accurate when the event space is densely
//! sampled, but opaque — it answers neither the "what" nor the "how much"
//! question, illustrating the interpretability axis of the paper's
//! comparison.

use mtperf_mtree::{Dataset, Learner, MtreeError, Predictor};

use crate::scale::Standardizer;

/// A fitted k-NN model (stores the standardized training set).
#[derive(Debug, Clone)]
pub struct KnnModel {
    k: usize,
    points: Vec<Vec<f64>>,
    targets: Vec<f64>,
    scaler: Standardizer,
}

impl Predictor for KnnModel {
    fn predict(&self, row: &[f64]) -> f64 {
        let q = self.scaler.transform_row(row);
        // Collect the k smallest distances with a simple partial selection.
        let mut dists: Vec<(f64, f64)> = self
            .points
            .iter()
            .zip(&self.targets)
            .map(|(p, &y)| {
                let d: f64 = p.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, y)
            })
            .collect();
        let k = self.k.min(dists.len());
        // total_cmp: NaN distances (NaN query or training values) rank last
        // deterministically instead of panicking mid-prediction.
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let sum: f64 = dists[..k].iter().map(|&(_, y)| y).sum();
        sum / k as f64
    }
}

/// Learner for [`KnnModel`].
#[derive(Debug, Clone)]
pub struct KnnLearner {
    /// Number of neighbors averaged.
    pub k: usize,
}

impl KnnLearner {
    /// Creates a learner with `k` neighbors.
    pub fn new(k: usize) -> Self {
        KnnLearner { k }
    }
}

impl Default for KnnLearner {
    fn default() -> Self {
        KnnLearner::new(5)
    }
}

impl Learner for KnnLearner {
    fn fit(&self, data: &Dataset) -> Result<Box<dyn Predictor>, MtreeError> {
        if data.n_rows() == 0 {
            return Err(MtreeError::EmptyDataset);
        }
        if self.k == 0 {
            return Err(MtreeError::BadParams("k must be >= 1".into()));
        }
        let scaler = Standardizer::fit(data);
        Ok(Box::new(KnnModel {
            k: self.k,
            points: scaler.transform_all(data),
            targets: data.targets().to_vec(),
            scaler,
        }))
    }

    fn name(&self) -> &str {
        "k-NN regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Dataset {
        let rows: Vec<[f64; 1]> = (0..50).map(|i| [i as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 2.0 * r[0]).collect();
        Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap()
    }

    #[test]
    fn one_nn_memorizes() {
        let m = KnnLearner::new(1).fit(&grid()).unwrap();
        assert!((m.predict(&[17.0]) - 34.0).abs() < 1e-9);
    }

    #[test]
    fn k_nn_interpolates() {
        let m = KnnLearner::new(3).fit(&grid()).unwrap();
        // Query between grid points: the 3-NN average is the middle point's
        // value.
        let p = m.predict(&[17.2]);
        assert!((p - 34.0).abs() < 2.1, "p = {p}");
    }

    #[test]
    fn k_larger_than_n_uses_all() {
        let m = KnnLearner::new(500).fit(&grid()).unwrap();
        let global_mean = 49.0; // mean of 2*0..2*49
        assert!((m.predict(&[0.0]) - global_mean).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(KnnLearner::new(0).fit(&grid()).is_err());
        let d = Dataset::new(vec!["x".into()]).unwrap();
        assert!(KnnLearner::default().fit(&d).is_err());
    }

    #[test]
    fn standardization_makes_scales_comparable() {
        // Attribute b is on a 1000x scale but irrelevant; without
        // standardization it would dominate distances.
        let rows: Vec<[f64; 2]> = (0..40)
            .map(|i| [i as f64, (i % 2) as f64 * 1000.0])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let d = Dataset::from_rows(vec!["a".into(), "b".into()], &rows, &ys).unwrap();
        let m = KnnLearner::new(3).fit(&d).unwrap();
        let p = m.predict(&[20.0, 0.0]);
        assert!((p - 20.0).abs() < 3.0, "p = {p}");
    }
}
