//! ε-insensitive support vector regression with an RBF kernel — the "SVM"
//! of the paper's comparison (C ≈ 0.98 on their data; accurate but, like
//! the MLP, uninterpretable).
//!
//! Training solves the bias-absorbed dual (the bias is folded into the
//! kernel as `K' = K + 1`, removing the equality constraint):
//!
//! ```text
//! min_β  ½ βᵀK'β − βᵀy + ε‖β‖₁   subject to   β_i ∈ [−C, C]
//! ```
//!
//! by exact coordinate descent: each coordinate has the closed-form
//! soft-threshold update `β_i ← clip(soft(q_i·β_i − g_i + y_i, ε)/q_i)`,
//! in the style of LIBLINEAR's dual solvers. A maintained gradient vector
//! keeps updates `O(n·d)` without materializing the kernel matrix.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mtperf_linalg::stats;
use mtperf_mtree::{Dataset, Learner, MtreeError, Predictor};

use crate::scale::Standardizer;

/// A fitted SVR model.
#[derive(Debug, Clone)]
pub struct SvrModel {
    scaler: Standardizer,
    /// Support vectors (standardized rows with non-zero coefficients).
    support: Vec<Vec<f64>>,
    /// Dual coefficients of the support vectors.
    beta: Vec<f64>,
    gamma: f64,
    y_mean: f64,
    y_std: f64,
}

fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

impl SvrModel {
    /// Number of support vectors retained.
    pub fn n_support(&self) -> usize {
        self.support.len()
    }
}

impl Predictor for SvrModel {
    fn predict(&self, row: &[f64]) -> f64 {
        let x = self.scaler.transform_row(row);
        let z: f64 = self
            .support
            .iter()
            .zip(&self.beta)
            .map(|(sv, &b)| b * (rbf(sv, &x, self.gamma) + 1.0))
            .sum();
        z * self.y_std + self.y_mean
    }
}

/// Learner for [`SvrModel`].
#[derive(Debug, Clone)]
pub struct SvrLearner {
    /// Box constraint (regularization strength).
    pub c: f64,
    /// Width of the ε-insensitive tube (in standardized target units).
    pub epsilon: f64,
    /// RBF kernel width; `None` uses `1 / n_attrs`.
    pub gamma: Option<f64>,
    /// Maximum coordinate-descent sweeps.
    pub max_sweeps: usize,
    /// Convergence tolerance on the largest coordinate change per sweep.
    pub tol: f64,
    /// Training sets larger than this are subsampled (kernel methods scale
    /// quadratically; the paper's WEKA runs faced the same practical cap).
    pub max_train_size: usize,
    /// Seed for subsampling.
    pub seed: u64,
}

impl SvrLearner {
    /// Creates a learner with LIBSVM-flavored defaults
    /// (`C = 10`, `ε = 0.05`, RBF `γ = 1/d`).
    pub fn new() -> Self {
        SvrLearner {
            c: 10.0,
            epsilon: 0.05,
            gamma: None,
            max_sweeps: 60,
            tol: 1e-4,
            max_train_size: 3000,
            seed: 0xCAFE,
        }
    }
}

impl Default for SvrLearner {
    fn default() -> Self {
        SvrLearner::new()
    }
}

impl SvrLearner {
    /// Fits and returns the concrete model (exposes support-vector counts;
    /// the [`Learner`] impl wraps this).
    ///
    /// # Errors
    ///
    /// Same as [`Learner::fit`].
    pub fn fit_svr(&self, data: &Dataset) -> Result<SvrModel, MtreeError> {
        if data.n_rows() == 0 {
            return Err(MtreeError::EmptyDataset);
        }
        if self.c <= 0.0 || self.epsilon < 0.0 || self.max_sweeps == 0 {
            return Err(MtreeError::BadParams(
                "C must be > 0, epsilon >= 0, max_sweeps >= 1".into(),
            ));
        }
        let scaler = Standardizer::fit(data);
        let mut xs = scaler.transform_all(data);
        let y_mean = stats::mean(data.targets());
        let y_std = stats::std_dev(data.targets()).max(1e-12);
        let mut ys: Vec<f64> = data
            .targets()
            .iter()
            .map(|y| (y - y_mean) / y_std)
            .collect();

        // Subsample oversized training sets.
        if xs.len() > self.max_train_size {
            let mut rng = SmallRng::seed_from_u64(self.seed);
            let mut order: Vec<usize> = (0..xs.len()).collect();
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            order.truncate(self.max_train_size);
            xs = order.iter().map(|&i| xs[i].clone()).collect();
            ys = order.iter().map(|&i| ys[i]).collect();
        }

        let n = xs.len();
        let gamma = self.gamma.unwrap_or(1.0 / data.n_attrs() as f64);
        // K'_ii = K_ii + 1 = 2 for RBF.
        let q = 2.0;
        let mut beta = vec![0.0; n];
        // g = K'β, maintained incrementally.
        let mut g = vec![0.0; n];

        for _ in 0..self.max_sweeps {
            let mut max_delta = 0.0f64;
            for i in 0..n {
                // Minimize in coordinate i: ½q b² + (g_i − q·β_i − y_i) b + ε|b|.
                let r = g[i] - q * beta[i] - ys[i];
                let z = -r;
                let soft = z.signum() * (z.abs() - self.epsilon).max(0.0);
                let new_beta = (soft / q).clamp(-self.c, self.c);
                let delta = new_beta - beta[i];
                if delta.abs() > 1e-15 {
                    // Update the gradient with row i of K'.
                    let xi = xs[i].clone();
                    for (gj, xj) in g.iter_mut().zip(&xs) {
                        *gj += delta * (rbf(&xi, xj, gamma) + 1.0);
                    }
                    beta[i] = new_beta;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }

        // Retain only support vectors.
        let mut support = Vec::new();
        let mut sv_beta = Vec::new();
        for (x, b) in xs.into_iter().zip(beta) {
            if b.abs() > 1e-10 {
                support.push(x);
                sv_beta.push(b);
            }
        }
        Ok(SvrModel {
            scaler,
            support,
            beta: sv_beta,
            gamma,
            y_mean,
            y_std,
        })
    }
}

impl Learner for SvrLearner {
    fn fit(&self, data: &Dataset) -> Result<Box<dyn Predictor>, MtreeError> {
        Ok(Box::new(self.fit_svr(data)?))
    }

    fn name(&self) -> &str {
        "Support vector regression (RBF)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Dataset {
        let rows: Vec<[f64; 1]> = (0..60).map(|i| [i as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 0.5 * r[0] + 1.0).collect();
        Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap()
    }

    #[test]
    fn learns_linear_function() {
        let m = SvrLearner::new().fit(&line()).unwrap();
        let p = m.predict(&[30.0]);
        assert!((p - 16.0).abs() < 2.0, "p = {p}");
    }

    #[test]
    fn learns_smooth_nonlinearity() {
        let rows: Vec<[f64; 1]> = (0..100).map(|i| [i as f64 / 10.0]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| (r[0]).sin() * 5.0).collect();
        let d = Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap();
        let m = SvrLearner::new().fit(&d).unwrap();
        let p = m.predict(&[std::f64::consts::FRAC_PI_2]); // sin = 1 -> 5
        assert!((p - 5.0).abs() < 1.0, "p = {p}");
    }

    #[test]
    fn epsilon_tube_sparsifies() {
        let d = line();
        let tight = SvrLearner {
            epsilon: 0.001,
            ..SvrLearner::new()
        };
        let loose = SvrLearner {
            epsilon: 0.4,
            ..SvrLearner::new()
        };
        let tight_model = tight.fit_svr(&d).unwrap();
        let loose_model = loose.fit_svr(&d).unwrap();
        // A wider insensitive tube ignores more points: fewer support
        // vectors, while predictions stay usable.
        assert!(
            loose_model.n_support() < tight_model.n_support(),
            "loose {} vs tight {}",
            loose_model.n_support(),
            tight_model.n_support()
        );
        assert!((loose_model.predict(&[10.0]) - 6.0).abs() < 2.0);
    }

    #[test]
    fn subsampling_keeps_model_usable() {
        let rows: Vec<[f64; 1]> = (0..500).map(|i| [(i % 100) as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let d = Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap();
        let l = SvrLearner {
            max_train_size: 100,
            ..SvrLearner::new()
        };
        let m = l.fit(&d).unwrap();
        assert!((m.predict(&[50.0]) - 50.0).abs() < 10.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let d = Dataset::new(vec!["x".into()]).unwrap();
        assert!(SvrLearner::new().fit(&d).is_err());
        let bad = SvrLearner {
            c: -1.0,
            ..SvrLearner::new()
        };
        assert!(bad.fit(&line()).is_err());
    }
}
