//! Single-hidden-layer perceptron trained by mini-batch gradient descent —
//! the "artificial neural network" of the paper's comparison (C ≈ 0.99 on
//! their data, but a black box: no interpretable decomposition of CPI).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mtperf_linalg::stats;
use mtperf_mtree::{Dataset, Learner, MtreeError, Predictor};

use crate::scale::Standardizer;

/// A fitted MLP: standardize → linear → tanh → linear, with the target
/// de-standardized on the way out.
#[derive(Debug, Clone)]
pub struct MlpModel {
    scaler: Standardizer,
    /// `w1[h]` is hidden unit h's input weight vector.
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
    y_mean: f64,
    y_std: f64,
}

impl MlpModel {
    fn forward_hidden(&self, x: &[f64]) -> Vec<f64> {
        self.w1
            .iter()
            .zip(&self.b1)
            .map(|(w, b)| {
                let z: f64 = w.iter().zip(x).map(|(a, v)| a * v).sum::<f64>() + b;
                z.tanh()
            })
            .collect()
    }
}

impl Predictor for MlpModel {
    fn predict(&self, row: &[f64]) -> f64 {
        let x = self.scaler.transform_row(row);
        let h = self.forward_hidden(&x);
        let z: f64 = self.w2.iter().zip(&h).map(|(w, v)| w * v).sum::<f64>() + self.b2;
        z * self.y_std + self.y_mean
    }
}

/// Learner for [`MlpModel`].
#[derive(Debug, Clone)]
pub struct MlpLearner {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Number of full passes over the training data.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// RNG seed for weight initialization and shuffling.
    pub seed: u64,
}

impl MlpLearner {
    /// Creates a learner with the given hidden width and sensible training
    /// defaults (200 epochs, learning rate 0.01).
    pub fn new(hidden: usize) -> Self {
        MlpLearner {
            hidden,
            epochs: 200,
            learning_rate: 0.01,
            seed: 0x5EED,
        }
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }
}

impl Default for MlpLearner {
    fn default() -> Self {
        MlpLearner::new(16)
    }
}

impl Learner for MlpLearner {
    fn fit(&self, data: &Dataset) -> Result<Box<dyn Predictor>, MtreeError> {
        if data.n_rows() == 0 {
            return Err(MtreeError::EmptyDataset);
        }
        if self.hidden == 0 || self.epochs == 0 || self.learning_rate <= 0.0 {
            return Err(MtreeError::BadParams(
                "hidden, epochs and learning_rate must be positive".into(),
            ));
        }
        let scaler = Standardizer::fit(data);
        let xs = scaler.transform_all(data);
        let y_mean = stats::mean(data.targets());
        let y_std = stats::std_dev(data.targets()).max(1e-12);
        let ys: Vec<f64> = data
            .targets()
            .iter()
            .map(|y| (y - y_mean) / y_std)
            .collect();

        let n_in = data.n_attrs();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let scale = (1.0 / n_in as f64).sqrt();
        let mut model = MlpModel {
            scaler,
            w1: (0..self.hidden)
                .map(|_| (0..n_in).map(|_| rng.gen_range(-scale..scale)).collect())
                .collect(),
            b1: vec![0.0; self.hidden],
            w2: (0..self.hidden).map(|_| rng.gen_range(-0.5..0.5)).collect(),
            b2: 0.0,
            y_mean,
            y_std,
        };

        let n = xs.len();
        let mut order: Vec<usize> = (0..n).collect();
        let lr0 = self.learning_rate;
        for epoch in 0..self.epochs {
            // Fisher–Yates shuffle for stochastic order.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            // Cosine-free simple decay keeps late epochs stable.
            let lr = lr0 / (1.0 + epoch as f64 / 50.0);
            for &i in &order {
                let x = &xs[i];
                let h = model.forward_hidden(x);
                let out: f64 = model.w2.iter().zip(&h).map(|(w, v)| w * v).sum::<f64>() + model.b2;
                let err = out - ys[i];
                // Output layer.
                for (w2, &hv) in model.w2.iter_mut().zip(&h) {
                    *w2 -= lr * err * hv;
                }
                model.b2 -= lr * err;
                // Hidden layer (tanh' = 1 - h²).
                for (hidx, (&hv, &w2v)) in h.iter().zip(&model.w2).enumerate() {
                    let grad_h = err * w2v * (1.0 - hv * hv);
                    let w = &mut model.w1[hidx];
                    for (wv, &xv) in w.iter_mut().zip(x) {
                        *wv -= lr * grad_h * xv;
                    }
                    model.b1[hidx] -= lr * grad_h;
                }
            }
        }
        Ok(Box::new(model))
    }

    fn name(&self) -> &str {
        "Artificial neural network (MLP)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Dataset {
        let rows: Vec<[f64; 1]> = (0..60).map(|i| [i as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] + 2.0).collect();
        Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap()
    }

    #[test]
    fn learns_linear_function() {
        let m = MlpLearner::new(8).fit(&line()).unwrap();
        let p = m.predict(&[30.0]);
        assert!((p - 92.0).abs() < 8.0, "p = {p}");
    }

    #[test]
    fn learns_nonlinear_step() {
        let rows: Vec<[f64; 1]> = (0..80).map(|i| [i as f64]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] <= 40.0 { 0.0 } else { 10.0 })
            .collect();
        let d = Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap();
        let m = MlpLearner::new(16).with_epochs(400).fit(&d).unwrap();
        assert!(m.predict(&[10.0]) < 3.0);
        assert!(m.predict(&[70.0]) > 7.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let d = line();
        let a = MlpLearner::new(8).with_seed(7).fit(&d).unwrap();
        let b = MlpLearner::new(8).with_seed(7).fit(&d).unwrap();
        assert_eq!(a.predict(&[12.0]), b.predict(&[12.0]));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(MlpLearner::new(0).fit(&line()).is_err());
        let mut l = MlpLearner::new(4);
        l.epochs = 0;
        assert!(l.fit(&line()).is_err());
        let d = Dataset::new(vec!["x".into()]).unwrap();
        assert!(MlpLearner::default().fit(&d).is_err());
    }
}
