//! Pool-reuse property suite: the persistent worker pool must be a pure
//! implementation detail. Repeated parallel sections on the *same* pool —
//! at any thread setting, at awkward batch sizes, and across injected
//! faults (a worker panic, a mid-batch cancellation) — must stay
//! `to_bits()`-identical to the serial path. A leaked per-thread flag, a
//! poisoned queue, or a stale task from a previous job would all show up
//! here as a wrong bit or a hang.

use std::collections::BTreeSet;

use mtperf_linalg::parallel::{self, Parallelism};
use mtperf_linalg::{try_par_fill, try_par_map, try_par_map_cancel, CancelToken, LinalgError};

/// Deterministic, rounding-sensitive per-item work: a chain of
/// transcendental ops whose bit pattern would expose any change in
/// evaluation order or environment (x87 excess precision, reassociation).
fn work(i: usize) -> f64 {
    let x = i as f64 + 0.5;
    let a = x.sqrt().sin();
    let b = (x * 1.000_000_1).cos();
    (a * b + x.ln_1p()).tanh() + a / (b.abs() + 1.0)
}

fn serial_reference(n: usize) -> Vec<f64> {
    (0..n).map(work).collect()
}

fn assert_bits_eq(got: &[f64], want: &[f64], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: item {i}");
    }
}

#[test]
fn repeated_calls_on_one_pool_stay_bit_identical_across_faults() {
    parallel::warm_up(); // start the pool once; every round below reuses it
    let settings = [
        Parallelism::Auto,
        Parallelism::Off,
        Parallelism::Fixed(2),
        Parallelism::Fixed(7),
    ];
    for round in 0..3 {
        for &par in &settings {
            let t = par.threads().max(1);
            // Odd sizes on purpose: empty, singleton, one less / one more
            // than the thread count, and a prime that never divides evenly.
            let sizes: BTreeSet<usize> =
                [0, 1, t.saturating_sub(1), t + 1, 97].into_iter().collect();
            for &n in &sizes {
                let ctx = format!("round {round}, par {par:?}, n {n}");
                let want = serial_reference(n);
                let items: Vec<usize> = (0..n).collect();

                let mapped = try_par_map(par, &items, 1, |&i| work(i)).unwrap();
                assert_bits_eq(&mapped, &want, &format!("{ctx}, try_par_map"));

                let token = CancelToken::new();
                let mapped = try_par_map_cancel(par, &items, 1, &token, |&i| work(i)).unwrap();
                assert_bits_eq(&mapped, &want, &format!("{ctx}, try_par_map_cancel"));

                let mut filled = vec![0.0f64; n];
                try_par_fill(par, &mut filled, 3, None, |start, block| {
                    for (j, v) in block.iter_mut().enumerate() {
                        *v = work(start + j);
                    }
                })
                .unwrap();
                assert_bits_eq(&filled, &want, &format!("{ctx}, try_par_fill"));
            }
        }

        // Fault injection between rounds — the next round's assertions
        // prove the pool survives both paths unharmed.
        //
        // 1. A worker panic: isolated, reported at the input index, and
        //    the panicking thread's state must not leak into later jobs.
        let items: Vec<usize> = (0..101).collect();
        let err = try_par_map(Parallelism::Fixed(7), &items, 1, |&i| {
            assert!(i != 53, "injected panic, round {round}");
            work(i)
        })
        .unwrap_err();
        match err {
            LinalgError::WorkerPanic { index, message } => {
                assert_eq!(index, 53, "round {round}");
                assert!(
                    message.contains("injected panic"),
                    "round {round}: {message}"
                );
            }
            other => panic!("round {round}: expected WorkerPanic, got {other:?}"),
        }

        // 2. A mid-batch cancellation fired from inside the section: every
        //    in-flight chunk stops at its next check, partial results are
        //    discarded, and the pool is immediately reusable.
        let token = CancelToken::new();
        let err = try_par_map_cancel(Parallelism::Fixed(2), &items, 1, &token, |&i| {
            if i == 20 {
                token.cancel();
            }
            work(i)
        })
        .unwrap_err();
        assert!(
            matches!(err, LinalgError::Cancelled),
            "round {round}: expected Cancelled, got {err:?}"
        );
    }
}
