//! Summary statistics used throughout `mtperf`.
//!
//! The M5' split criterion is built on standard deviations, the evaluation
//! harness on means, absolute errors and correlation coefficients. All
//! functions here define the empty-input case explicitly (returning `0.0` or
//! `None`) so callers never hit NaN surprises on degenerate tree nodes.

/// Arithmetic mean; `0.0` for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(mtperf_linalg::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(mtperf_linalg::stats::mean(&[]), 0.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance (divides by `n`); `0.0` for slices of length < 1.
///
/// M5' uses population statistics when computing the standard-deviation
/// reduction of a candidate split.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; `0.0` for an empty slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sample variance (divides by `n - 1`); `0.0` for slices of length < 2.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns `None` when either input has zero variance or the slices are
/// empty or of unequal length — the coefficient is undefined there.
///
/// # Example
///
/// ```
/// let r = mtperf_linalg::stats::correlation(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.is_empty() {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Coefficient of determination (R²) of predictions `yhat` against `y`.
///
/// Defined as `1 − SS_res / SS_tot`. Returns `None` if `y` has zero variance
/// or the slices are empty or of unequal length.
pub fn r_squared(y: &[f64], yhat: &[f64]) -> Option<f64> {
    if y.len() != yhat.len() || y.is_empty() {
        return None;
    }
    let my = mean(y);
    let ss_tot: f64 = y.iter().map(|v| (v - my) * (v - my)).sum();
    if ss_tot <= 0.0 {
        return None;
    }
    let ss_res: f64 = y.iter().zip(yhat).map(|(a, b)| (a - b) * (a - b)).sum();
    Some(1.0 - ss_res / ss_tot)
}

/// Minimum and maximum of a slice; `None` for an empty slice.
pub fn min_max(xs: &[f64]) -> Option<(f64, f64)> {
    let first = *xs.first()?;
    Some(
        xs.iter()
            .fold((first, first), |(lo, hi), &v| (lo.min(v), hi.max(v))),
    )
}

/// Linear interpolation quantile (`q` in `[0, 1]`) of an **unsorted** slice.
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is not within `[0, 1]` or any value is NaN.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile q={q} outside [0, 1]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Simple univariate linear regression of `y` on `x`.
///
/// Returns `(intercept, slope, r_squared)`; `None` when `x` has zero
/// variance or inputs are empty/unequal.
///
/// Used by the split-variable impact analysis of the paper (§V.A.2), which
/// regresses CPI on a single split variable and reads the R² as that
/// variable's contribution.
pub fn simple_regression(x: &[f64], y: &[f64]) -> Option<(f64, f64, f64)> {
    if x.len() != y.len() || x.is_empty() {
        return None;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (a, b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
    }
    if sxx <= 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let yhat: Vec<f64> = x.iter().map(|a| intercept + slope * a).collect();
    let r2 = r_squared(y, &yhat).unwrap_or(0.0);
    Some((intercept, slope, r2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
    }

    #[test]
    fn sample_variance_bessel() {
        let xs = [1.0, 2.0, 3.0];
        assert!((sample_variance(&xs) - 1.0).abs() < 1e-12);
        assert_eq!(sample_variance(&[1.0]), 0.0);
    }

    #[test]
    fn correlation_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0];
        assert!((correlation(&x, &[2.0, 4.0, 6.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((correlation(&x, &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_undefined_cases() {
        assert!(correlation(&[1.0, 1.0], &[1.0, 2.0]).is_none());
        assert!(correlation(&[], &[]).is_none());
        assert!(correlation(&[1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn r_squared_perfect_fit() {
        let y = [1.0, 2.0, 3.0];
        assert!((r_squared(&y, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_mean_predictor_is_zero() {
        let y = [1.0, 2.0, 3.0];
        let m = mean(&y);
        let yhat = [m, m, m];
        assert!(r_squared(&y, &yhat).unwrap().abs() < 1e-12);
    }

    #[test]
    fn r_squared_undefined_for_constant_target() {
        assert!(r_squared(&[2.0, 2.0], &[1.0, 3.0]).is_none());
    }

    #[test]
    fn min_max_basic() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]), Some((-1.0, 3.0)));
        assert_eq!(min_max(&[]), None);
    }

    #[test]
    fn quantile_median_and_extremes() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(quantile(&xs, 0.5), Some(3.0));
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(5.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn simple_regression_exact_line() {
        let x = [0.0, 1.0, 2.0];
        let y = [1.0, 3.0, 5.0];
        let (b0, b1, r2) = simple_regression(&x, &y).unwrap();
        assert!((b0 - 1.0).abs() < 1e-12);
        assert!((b1 - 2.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simple_regression_degenerate() {
        assert!(simple_regression(&[1.0, 1.0], &[1.0, 2.0]).is_none());
        assert!(simple_regression(&[], &[]).is_none());
    }
}
