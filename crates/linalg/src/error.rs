use std::error::Error;
use std::fmt;

/// Error type for linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A matrix expected to be positive definite (or at least full rank)
    /// turned out singular to working precision.
    Singular,
    /// A matrix constructor was given rows of unequal lengths.
    RaggedRows {
        /// Length of the first row.
        expected: usize,
        /// Length of the offending row.
        found: usize,
    },
    /// An operation that requires a non-empty matrix was given an empty one.
    Empty,
    /// A worker closure passed to [`crate::parallel::try_par_map`] panicked.
    ///
    /// The panic was caught and isolated: sibling workers finished (or were
    /// abandoned) cleanly and the process keeps running.
    WorkerPanic {
        /// Input-order index of the first item whose closure panicked.
        index: usize,
        /// The panic payload rendered as text (`"..."` for non-string
        /// payloads).
        message: String,
    },
    /// A [`crate::parallel::CancelToken`] fired (explicit cancellation or an
    /// expired deadline) before a parallel section finished; all partial
    /// results were discarded.
    Cancelled,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::RaggedRows { expected, found } => {
                write!(f, "ragged rows: expected length {expected}, found {found}")
            }
            LinalgError::Empty => write!(f, "operation requires a non-empty matrix"),
            LinalgError::WorkerPanic { index, message } => {
                write!(f, "parallel worker panicked on item {index}: {message}")
            }
            LinalgError::Cancelled => {
                write!(
                    f,
                    "parallel section cancelled (token fired or deadline passed)"
                )
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let err = LinalgError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
            op: "mul",
        };
        assert_eq!(err.to_string(), "shape mismatch in mul: 2x3 vs 4x5");
    }

    #[test]
    fn display_singular() {
        assert_eq!(
            LinalgError::Singular.to_string(),
            "matrix is singular to working precision"
        );
    }

    #[test]
    fn display_worker_panic() {
        let err = LinalgError::WorkerPanic {
            index: 4,
            message: "boom".into(),
        };
        assert_eq!(err.to_string(), "parallel worker panicked on item 4: boom");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
