//! Persistent worker pool behind the [`parallel`](crate::parallel) engine.
//!
//! The first five PRs ran every parallel section on freshly spawned scoped
//! threads. That is correct and simple, but spawn-per-batch is exactly the
//! wrong shape for high-rate batch prediction: a 10 k-row compiled batch
//! takes ~90 µs of compute, while spawning and joining a handful of OS
//! threads costs tens of µs — enough to make the parallel path *slower*
//! than serial (the inversion recorded in `BENCH_predict.json` before this
//! module existed). This module keeps the workers alive instead:
//!
//! * **Lazily started** — no threads exist until the first multi-chunk
//!   dispatch; the pool then grows on demand (never shrinks) up to
//!   [`MAX_WORKERS`].
//! * **Static contiguous chunking** — the pool does not schedule items; it
//!   runs numbered chunks. Callers decide the chunk → input mapping, which
//!   keeps reduction order (and therefore results) deterministic.
//! * **Caller participation** — the dispatching thread always runs chunk 0
//!   itself, then *drains its own remaining chunks* from the queue before
//!   blocking on the completion latch. Progress therefore never depends on
//!   pool workers being available: a dispatch completes even with zero
//!   workers (single-CPU hosts) or with every worker busy on another job.
//! * **Concurrent dispatches** — any number of threads may dispatch at
//!   once (the serving daemon's request workers do); tasks carry their
//!   job's completion latch, so interleaving in the shared queue is
//!   harmless.
//!
//! # The one unsafe cell
//!
//! Persistent workers are `'static`, but parallel sections borrow stack
//! data (`&[T]`, the closure, result slots). Safe Rust cannot express
//! "this borrow outlives the dispatch because the dispatcher blocks until
//! every chunk completes", so the handoff erases the closure to a
//! `(fn-pointer, *const ())` pair — the same technique rayon and
//! crossbeam's scoped pools use. Soundness rests on one invariant, which
//! [`run_chunked`] enforces with a drop guard:
//!
//! > Every [`Task`] created for a job is consumed — run to completion or
//! > discarded — before `run_chunked` returns, including on unwind.
//!
//! The guard drains the dispatcher's own unstarted tasks from the queue
//! and then waits on the latch, which counts *completed or discarded*
//! tasks, not merely dequeued ones. A task being executed by a worker
//! therefore pins `run_chunked` in place until the worker finishes. All
//! `unsafe` in the workspace lives in this module (the library crates
//! otherwise `deny(unsafe_code)` with no allows).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Hard ceiling on pool threads, far above any sane `Parallelism::Fixed`
/// request; chunks beyond the worker count are drained by the dispatcher.
const MAX_WORKERS: usize = 512;

/// Locks `m`, treating poisoning as recoverable: pool state is a queue of
/// plain data, never left torn by a panicking accessor (workers catch
/// panics around user code, not around queue operations).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Completion latch of one dispatch: counts tasks not yet consumed.
struct JobState {
    remaining: Mutex<usize>,
    all_done: Condvar,
}

impl JobState {
    fn new(tasks: usize) -> JobState {
        JobState {
            remaining: Mutex::new(tasks),
            all_done: Condvar::new(),
        }
    }

    /// Marks one task consumed (completed or discarded).
    fn finish_one(&self) {
        let mut left = lock(&self.remaining);
        *left -= 1;
        if *left == 0 {
            self.all_done.notify_all();
        }
    }

    /// Blocks until every task of this job has been consumed.
    fn wait(&self) {
        let mut left = lock(&self.remaining);
        while *left > 0 {
            left = self
                .all_done
                .wait(left)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One queued chunk of one dispatch, type-erased.
///
/// Dropping a task without running it still releases the latch, so
/// discarded tasks (unwinding dispatcher) cannot deadlock their job.
struct Task {
    /// Monomorphized trampoline; calls the dispatcher's closure with the
    /// chunk index. `None` once run (so `Drop` only counts consumption).
    run: Option<unsafe fn(*const (), usize)>,
    /// Borrow of the dispatcher's closure, erased. Valid until the job's
    /// latch releases — see the module docs.
    ctx: *const (),
    chunk: usize,
    job: Arc<JobState>,
}

// SAFETY: `ctx` points at a `Sync` closure owned by the dispatching
// thread's stack frame, which `run_chunked` keeps alive (via its drop
// guard + latch) until every task is consumed. Moving the pointer to a
// worker thread is therefore sound, and concurrent `&F` access is covered
// by `F: Sync`.
#[allow(unsafe_code)]
unsafe impl Send for Task {}

impl Task {
    /// Runs the chunk, catching any panic that escapes the user closure so
    /// the worker thread (and the latch) survive. The dispatcher observes
    /// such a panic as a missing result slot, never as a torn pool.
    fn run(mut self) {
        if let Some(run) = self.run.take() {
            // SAFETY: `run` was monomorphized for the closure type behind
            // `ctx` at task creation, `ctx` is live (module invariant), and
            // `self.run.take()` guarantees at-most-once execution.
            #[allow(unsafe_code)]
            let _ = catch_unwind(AssertUnwindSafe(|| unsafe { run(self.ctx, self.chunk) }));
        }
        // `self` drops here: the latch counts this task as consumed.
    }
}

impl Drop for Task {
    fn drop(&mut self) {
        self.job.finish_one();
    }
}

/// Queue shared between dispatchers and workers.
struct Shared {
    queue: Mutex<VecDeque<Task>>,
    work_ready: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    /// Worker threads spawned so far (monotonic, capped).
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        shared: Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let task = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = shared
                    .work_ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        task.run();
    }
}

/// Grows the pool to at least `target` live workers (capped at
/// [`MAX_WORKERS`]). Spawn failures are tolerated: the dispatcher's
/// self-drain guarantees progress at any worker count, so a host that
/// cannot spawn more threads just parallelizes less.
pub(crate) fn ensure_workers(target: usize) {
    let target = target.min(MAX_WORKERS);
    let p = pool();
    let mut spawned = lock(&p.spawned);
    while *spawned < target {
        let shared = Arc::clone(&p.shared);
        let name = format!("mtperf-pool-{}", *spawned);
        match std::thread::Builder::new()
            .name(name)
            .spawn(move || worker_loop(shared))
        {
            Ok(_handle) => *spawned += 1, // detached; lives for the process
            Err(_) => break,
        }
    }
    if mtperf_obs::is_enabled() {
        mtperf_obs::gauge("pool.workers", *spawned as f64);
    }
}

/// Live worker threads (for diagnostics and tests).
#[cfg(test)]
pub(crate) fn live_workers() -> usize {
    POOL.get().map_or(0, |p| *lock(&p.spawned))
}

/// Drains-and-waits guard: consumes the dispatcher's own leftover tasks,
/// then blocks on the latch. Runs on both the normal path and unwind, so
/// the module's lifetime invariant holds even if the chunk-0 closure
/// panics through the dispatcher.
struct JobGuard<'a> {
    shared: &'a Shared,
    job: &'a Arc<JobState>,
    /// Tasks the dispatcher ran itself because no worker had picked them
    /// up (reported as `pool.tasks_helped` when tracing is on).
    helped: usize,
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        loop {
            let task = {
                let mut q = lock(&self.shared.queue);
                q.iter()
                    .position(|t| Arc::ptr_eq(&t.job, self.job))
                    .and_then(|i| q.remove(i))
            };
            match task {
                Some(t) => {
                    t.run();
                    self.helped += 1;
                }
                None => break,
            }
        }
        self.job.wait();
        if self.helped > 0 && mtperf_obs::is_enabled() {
            mtperf_obs::add("pool.tasks_helped", self.helped as u64);
        }
    }
}

/// Runs `f(chunk)` exactly once for every `chunk` in `0..n_chunks` and
/// returns when all calls have completed. Chunk 0 always runs on the
/// calling thread; chunks `1..` run on pool workers or, when none are
/// free, on the calling thread after it finishes chunk 0 (so completion
/// never depends on pool capacity). A panic escaping `f` on a worker is
/// caught and swallowed — callers observe it through their own per-chunk
/// result slots; a panic escaping `f(0)` unwinds out of this function
/// *after* all other chunks have been consumed.
pub(crate) fn run_chunked<F>(n_chunks: usize, f: &F)
where
    F: Fn(usize) + Sync,
{
    match n_chunks {
        0 => return,
        1 => return f(0),
        _ => {}
    }
    ensure_workers(n_chunks - 1);
    let p = pool();
    let job = Arc::new(JobState::new(n_chunks - 1));

    /// Recovers the concrete closure type from the erased pointer.
    #[allow(unsafe_code)]
    unsafe fn trampoline<F: Fn(usize) + Sync>(ctx: *const (), chunk: usize) {
        // SAFETY: `ctx` was produced from `&F` by the enclosing
        // `run_chunked` call, which outlives this call (module invariant).
        let f = unsafe { &*(ctx.cast::<F>()) };
        f(chunk);
    }

    {
        let mut q = lock(&p.shared.queue);
        for chunk in 1..n_chunks {
            q.push_back(Task {
                run: Some(trampoline::<F>),
                ctx: (f as *const F).cast(),
                chunk,
                job: Arc::clone(&job),
            });
        }
    }
    p.shared.work_ready.notify_all();
    if mtperf_obs::is_enabled() {
        mtperf_obs::add("pool.dispatches", 1);
        mtperf_obs::add("pool.tasks", (n_chunks - 1) as u64);
    }

    // Drains leftovers and waits on the latch when dropped — including on
    // unwind from `f(0)`, which is what makes the borrow erasure sound.
    let _guard = JobGuard {
        shared: &p.shared,
        job: &job,
        helped: 0,
    };
    f(0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_chunk_exactly_once() {
        for n in [0usize, 1, 2, 3, 8, 33] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            run_chunked(n, &|c| {
                hits[c].fetch_add(1, Ordering::SeqCst);
            });
            for (c, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "chunk {c} of {n}");
            }
        }
    }

    #[test]
    fn completes_with_concurrent_dispatches() {
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        run_chunked(5, &|_c| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 5);
    }

    #[test]
    fn worker_panic_does_not_deadlock_or_kill_the_pool() {
        // A panic escaping the closure is caught; the latch still releases
        // and the pool keeps serving subsequent jobs.
        for round in 0..3 {
            let ran = AtomicUsize::new(0);
            run_chunked(4, &|c| {
                ran.fetch_add(1, Ordering::SeqCst);
                assert!(c != 2, "deliberate chunk panic (round {round})");
            });
            assert_eq!(ran.load(Ordering::SeqCst), 4);
        }
    }

    #[test]
    fn pool_grows_monotonically_and_lazily() {
        run_chunked(3, &|_| {});
        let before = live_workers();
        assert!(before >= 2, "first multi-chunk dispatch starts workers");
        run_chunked(2, &|_| {});
        assert!(live_workers() >= before, "pool never shrinks");
    }
}
