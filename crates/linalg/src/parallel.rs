//! Deterministic data parallelism on scoped OS threads.
//!
//! The workspace deliberately has no external dependencies (the registry is
//! not reachable from every build environment), so this module builds its
//! map-reduce helper directly on [`std::thread::scope`].
//!
//! # Determinism contract
//!
//! [`par_map`] computes `f` on each item independently and returns results in
//! **input order**, regardless of thread count or scheduling. Callers that
//! keep their per-item computation free of shared mutable state therefore get
//! bit-identical results at any [`Parallelism`] setting — the property the
//! split search, cross validation, and baseline suite rely on.
//!
//! # Example
//!
//! ```
//! use mtperf_linalg::parallel::{par_map, Parallelism};
//!
//! let squares = par_map(Parallelism::Auto, &[1, 2, 3, 4], 1, |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::cell::Cell;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many worker threads parallel sections may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use the machine's available parallelism.
    #[default]
    Auto,
    /// Run everything serially on the calling thread.
    Off,
    /// Use exactly this many threads (≥ 1; 1 behaves like [`Parallelism::Off`]).
    Fixed(usize),
}

impl Parallelism {
    /// The concrete thread count this setting resolves to on this machine.
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Off => 1,
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

impl FromStr for Parallelism {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Parallelism::Auto),
            "off" => Ok(Parallelism::Off),
            n => n
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .map(Parallelism::Fixed)
                .ok_or_else(|| {
                    format!("invalid parallelism {s:?}: expected \"auto\", \"off\", or a thread count >= 1")
                }),
        }
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Auto => write!(f, "auto"),
            Parallelism::Off => write!(f, "off"),
            Parallelism::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// Global default used when a caller does not pass an explicit setting.
/// Encoding: 0 = Auto, 1 = Off, n ≥ 2 = Fixed(n − 1).
static GLOBAL: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default [`Parallelism`] (e.g. from a `--threads`
/// CLI flag).
pub fn set_global(par: Parallelism) {
    let encoded = match par {
        Parallelism::Auto => 0,
        Parallelism::Off => 1,
        Parallelism::Fixed(n) => n.max(1) + 1,
    };
    GLOBAL.store(encoded, Ordering::Relaxed);
}

/// The process-wide default [`Parallelism`].
pub fn global() -> Parallelism {
    match GLOBAL.load(Ordering::Relaxed) {
        0 => Parallelism::Auto,
        1 => Parallelism::Off,
        n => Parallelism::Fixed(n - 1),
    }
}

thread_local! {
    /// True inside a `par_map` worker: nested calls run serially instead of
    /// oversubscribing the machine.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Maps `f` over `items`, possibly on multiple threads, preserving input
/// order in the result.
///
/// Items are split into at most `threads` contiguous chunks of at least
/// `min_chunk` items each, so small inputs stay on one thread and avoid
/// spawn overhead. Results are concatenated chunk by chunk: element `i` of
/// the return value is always `f(&items[i])`.
///
/// # Panics
///
/// Propagates the first worker panic to the caller.
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = par.threads().min(
        if min_chunk == 0 {
            n
        } else {
            n / min_chunk.max(1)
        }
        .max(1),
    );
    if threads <= 1 || n <= 1 || IN_PARALLEL.with(Cell::get) {
        return items.iter().map(f).collect();
    }

    // Contiguous near-equal chunks; the first `rem` chunks get one extra.
    let base = n / threads;
    let rem = n % threads;
    let mut chunks: Vec<&[T]> = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < rem);
        chunks.push(&items[start..start + len]);
        start += len;
    }
    debug_assert_eq!(start, n);

    let run_chunk = |chunk: &[T]| -> Vec<R> {
        IN_PARALLEL.with(|flag| flag.set(true));
        let out = chunk.iter().map(&f).collect();
        IN_PARALLEL.with(|flag| flag.set(false));
        out
    };

    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .skip(1)
            .map(|chunk| scope.spawn(|| run_chunk(chunk)))
            .collect();
        // The calling thread works the first chunk instead of idling.
        results.push(run_chunk(chunks[0]));
        for handle in handles {
            match handle.join() {
                Ok(chunk_results) => results.push(chunk_results),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_thread_count() {
        let items: Vec<usize> = (0..1000).collect();
        let serial = par_map(Parallelism::Off, &items, 1, |&x| x * 3);
        for threads in [1, 2, 3, 4, 7, 16] {
            let parallel = par_map(Parallelism::Fixed(threads), &items, 1, |&x| x * 3);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(Parallelism::Auto, &empty, 1, |&x| x).is_empty());
        assert_eq!(
            par_map(Parallelism::Fixed(8), &[5u32], 1, |&x| x + 1),
            vec![6]
        );
    }

    #[test]
    fn min_chunk_limits_fan_out() {
        // 10 items with min_chunk 8 must not use more than one thread; the
        // observable contract is just that results stay correct and ordered.
        let items: Vec<usize> = (0..10).collect();
        let got = par_map(Parallelism::Fixed(8), &items, 8, |&x| x + 1);
        assert_eq!(got, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_calls_run_serially_and_correctly() {
        let outer: Vec<usize> = (0..8).collect();
        let got = par_map(Parallelism::Fixed(4), &outer, 1, |&i| {
            let inner: Vec<usize> = (0..4).collect();
            par_map(Parallelism::Fixed(4), &inner, 1, move |&j| i * 10 + j)
        });
        for (i, row) in got.iter().enumerate() {
            assert_eq!(row, &vec![i * 10, i * 10 + 1, i * 10 + 2, i * 10 + 3]);
        }
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        par_map(Parallelism::Fixed(4), &items, 1, |&x| {
            assert!(x < 60, "worker boom");
            x
        });
    }

    #[test]
    fn parallelism_parses_and_displays() {
        assert_eq!("auto".parse::<Parallelism>().unwrap(), Parallelism::Auto);
        assert_eq!("off".parse::<Parallelism>().unwrap(), Parallelism::Off);
        assert_eq!("6".parse::<Parallelism>().unwrap(), Parallelism::Fixed(6));
        assert!("0".parse::<Parallelism>().is_err());
        assert!("fast".parse::<Parallelism>().is_err());
        for p in [Parallelism::Auto, Parallelism::Off, Parallelism::Fixed(3)] {
            assert_eq!(p.to_string().parse::<Parallelism>().unwrap(), p);
        }
    }

    #[test]
    fn global_default_round_trips() {
        let original = global();
        for p in [Parallelism::Off, Parallelism::Fixed(5), Parallelism::Auto] {
            set_global(p);
            assert_eq!(global(), p);
        }
        set_global(original);
    }

    #[test]
    fn threads_resolves_sensibly() {
        assert_eq!(Parallelism::Off.threads(), 1);
        assert_eq!(Parallelism::Fixed(3).threads(), 3);
        assert_eq!(Parallelism::Fixed(0).threads(), 1);
        assert!(Parallelism::Auto.threads() >= 1);
    }
}
