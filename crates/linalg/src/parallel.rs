//! Deterministic data parallelism on a persistent worker pool.
//!
//! The workspace deliberately has no external dependencies (the registry is
//! not reachable from every build environment), so this module builds its
//! map-reduce helpers directly on the lazily-started pool in
//! [`crate::pool`]. Earlier revisions spawned scoped threads per call;
//! the pool keeps workers alive across calls, which is what lets a 90 µs
//! batch-prediction dispatch actually profit from parallelism instead of
//! drowning in thread spawn/join overhead (see `pool.rs` for the history
//! and the soundness argument).
//!
//! # Determinism contract
//!
//! [`par_map`] computes `f` on each item independently and returns results in
//! **input order**, regardless of thread count or scheduling. Work is split
//! into *statically chosen contiguous chunks* and reduced chunk-by-chunk in
//! chunk order, so the reduction never depends on which worker finished
//! first. Callers that keep their per-item computation free of shared
//! mutable state therefore get bit-identical results at any [`Parallelism`]
//! setting — the property the split search, cross validation, compiled
//! batch prediction, and baseline suite rely on.
//!
//! # Panic isolation
//!
//! Worker closures run under [`std::panic::catch_unwind`], so a panicking
//! item never tears down the process or poisons sibling workers. [`par_map`]
//! re-raises the first panic (lowest input index) on the calling thread for
//! backward compatibility; [`try_par_map`] surfaces it as a structured
//! [`crate::LinalgError::WorkerPanic`] instead, which is what the training
//! and evaluation pipelines use.
//!
//! # Example
//!
//! ```
//! use mtperf_linalg::parallel::{par_map, Parallelism};
//!
//! let squares = par_map(Parallelism::Auto, &[1, 2, 3, 4], 1, |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

use mtperf_detsim::clock;

use crate::error::LinalgError;
use crate::pool;

/// Poison-tolerant lock: per-chunk slots hold plain data and are never
/// left torn (user panics are caught before the slot write).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A cooperative cancellation signal shared between a controller and the
/// workers of a parallel section.
///
/// Tokens are cheap to clone (an [`Arc`] around one atomic flag plus an
/// optional deadline). Workers observe cancellation *between* items — a
/// running closure is never interrupted mid-flight, so partially computed
/// items are simply discarded and no shared state is left torn. A token with
/// a deadline reports itself cancelled once the deadline passes, which is
/// how per-request deadlines thread through batch prediction.
///
/// # Example
///
/// ```
/// use mtperf_linalg::parallel::CancelToken;
/// use std::time::Duration;
///
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// token.cancel();
/// assert!(token.is_cancelled());
///
/// // Already-expired deadlines cancel immediately and deterministically.
/// let expired = CancelToken::with_deadline(Duration::ZERO);
/// assert!(expired.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    /// Absolute deadline as a global-clock timestamp ([`clock::now`]), so a
    /// simulated clock controls deadline expiry the same way the real one
    /// does.
    deadline: Option<Duration>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that additionally reports cancelled once `timeout` from now
    /// has elapsed (measured on the global clock seam).
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        Self::with_deadline_at(clock::now() + timeout)
    }

    /// A token with an absolute deadline, as a timestamp on the global
    /// clock (duration since the clock's epoch, i.e. [`clock::now`]).
    pub fn with_deadline_at(deadline: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Requests cancellation; all clones of this token observe it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
            || self
                .inner
                .deadline
                .is_some_and(|deadline| clock::now() >= deadline)
    }

    /// The absolute deadline (global-clock timestamp), if this token
    /// carries one.
    pub fn deadline(&self) -> Option<Duration> {
        self.inner.deadline
    }

    /// Time remaining before the deadline ([`Duration::ZERO`] once passed;
    /// `None` for tokens without one). The serving layer uses this for
    /// per-request deadline accounting.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|deadline| deadline.saturating_sub(clock::now()))
    }
}

/// How many worker threads parallel sections may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use the machine's available parallelism.
    #[default]
    Auto,
    /// Run everything serially on the calling thread.
    Off,
    /// Use exactly this many threads (≥ 1; 1 behaves like [`Parallelism::Off`]).
    Fixed(usize),
}

impl Parallelism {
    /// The concrete thread count this setting resolves to on this machine.
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Off => 1,
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

impl FromStr for Parallelism {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Parallelism::Auto),
            "off" => Ok(Parallelism::Off),
            n => n
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .map(Parallelism::Fixed)
                .ok_or_else(|| {
                    format!("invalid parallelism {s:?}: expected \"auto\", \"off\", or a thread count >= 1")
                }),
        }
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Auto => write!(f, "auto"),
            Parallelism::Off => write!(f, "off"),
            Parallelism::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// Global default used when a caller does not pass an explicit setting.
/// Encoding: 0 = Auto, 1 = Off, n ≥ 2 = Fixed(n − 1).
static GLOBAL: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default [`Parallelism`] (e.g. from a `--threads`
/// CLI flag).
pub fn set_global(par: Parallelism) {
    let encoded = match par {
        Parallelism::Auto => 0,
        Parallelism::Off => 1,
        Parallelism::Fixed(n) => n.max(1) + 1,
    };
    GLOBAL.store(encoded, Ordering::Relaxed);
}

/// The process-wide default [`Parallelism`].
pub fn global() -> Parallelism {
    match GLOBAL.load(Ordering::Relaxed) {
        0 => Parallelism::Auto,
        1 => Parallelism::Off,
        n => Parallelism::Fixed(n - 1),
    }
}

thread_local! {
    /// True inside a `par_map` worker: nested calls run serially instead of
    /// oversubscribing the machine.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with the nested-parallelism flag set, restoring it even on
/// unwind (pool workers are reused across jobs, so a leaked flag would
/// silently serialize every later job on that thread).
fn with_parallel_flag<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            IN_PARALLEL.with(|flag| flag.set(self.0));
        }
    }
    let _reset = Reset(IN_PARALLEL.with(Cell::get));
    IN_PARALLEL.with(|flag| flag.set(true));
    f()
}

/// The first caught worker panic: the input-order index of the item whose
/// closure panicked, plus the original panic payload.
struct FirstPanic {
    index: usize,
    payload: Box<dyn Any + Send + 'static>,
}

impl FirstPanic {
    /// Renders the payload as text the way the default panic hook does.
    fn message(&self) -> String {
        if let Some(s) = self.payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }
}

/// Why a parallel section stopped early: a worker panicked, or the caller's
/// cancellation token fired between items.
enum ParFailure {
    Panic(FirstPanic),
    Cancelled,
}

/// Shared engine behind [`par_map`], [`try_par_map`], and
/// [`try_par_map_cancel`]: every closure call runs under [`catch_unwind`],
/// so a panicking worker never tears down its thread — the chunk stops,
/// siblings finish, and the lowest-index panic is reported to the caller as
/// a value. A cancellation token, when given, is consulted before each item.
fn par_map_core<T, R, F>(
    par: Parallelism,
    items: &[T],
    min_chunk: usize,
    cancel: Option<&CancelToken>,
    f: F,
) -> Result<Vec<R>, ParFailure>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    // `min_chunk` caps the fan-out: at most `n / min_chunk` chunks so no
    // chunk falls below `min_chunk` items. Zero is the documented
    // "one chunk per thread" case — no lower bound on chunk size beyond a
    // single item, so up to `min(threads, n)` chunks. (An earlier revision
    // had a dead `min_chunk.max(1)` in the divisor that disagreed with the
    // zero branch; `min_chunk_zero_means_one_chunk_per_thread` pins the
    // intended semantics.)
    let max_chunks = n.checked_div(min_chunk).unwrap_or(n);
    let threads = par.threads().min(max_chunks.max(1));

    // Runs one contiguous chunk, catching the first panic. `offset` is the
    // chunk's position in `items`, so panic indices are input-order global.
    let run_chunk = |chunk: &[T], offset: usize| -> Result<Vec<R>, ParFailure> {
        let mut out = Vec::with_capacity(chunk.len());
        for (i, item) in chunk.iter().enumerate() {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(ParFailure::Cancelled);
            }
            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(r) => out.push(r),
                Err(payload) => {
                    return Err(ParFailure::Panic(FirstPanic {
                        index: offset + i,
                        payload,
                    }))
                }
            }
        }
        Ok(out)
    };

    if threads <= 1 || n <= 1 || IN_PARALLEL.with(Cell::get) {
        return run_chunk(items, 0);
    }

    // Contiguous near-equal chunks; the first `rem` chunks get one extra.
    let base = n / threads;
    let rem = n % threads;
    let mut chunks: Vec<(&[T], usize)> = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < rem);
        chunks.push((&items[start..start + len], start));
        start += len;
    }
    debug_assert_eq!(start, n);

    // Capture the caller's span context (if tracing is on) so spans opened
    // inside worker closures nest under the span that dispatched the
    // section. `None` when tracing is disabled: workers then run the
    // closure directly. Re-installing the same frame on the calling thread
    // (chunk 0) is harmless — span ids hash the logical call path, so the
    // extra frame changes nothing.
    let obs_ctx = mtperf_obs::current_context();

    // One result slot per chunk; each chunk writes only its own, so the
    // locks are uncontended. A `None` after the dispatch means the chunk's
    // worker died outside the per-item guard (e.g. allocation failure) —
    // reported as a panic on the chunk's first item.
    type ChunkSlot<R> = Mutex<Option<Result<Vec<R>, ParFailure>>>;
    let slots: Vec<ChunkSlot<R>> = (0..threads).map(|_| Mutex::new(None)).collect();
    pool::run_chunked(threads, &|c: usize| {
        let (chunk, offset) = chunks[c];
        let out = mtperf_obs::in_context(obs_ctx.as_ref(), || {
            with_parallel_flag(|| run_chunk(chunk, offset))
        });
        *lock(&slots[c]) = Some(out);
    });

    // Deterministic reduction: chunk results concatenate in chunk order;
    // the panic with the lowest input index wins regardless of which
    // worker finished first; a panic anywhere outranks cancellation (the
    // panic names a concrete defect, cancellation is just the controller
    // giving up).
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    let mut first: Option<FirstPanic> = None;
    let mut cancelled = false;
    for (c, slot) in slots.into_iter().enumerate() {
        let outcome = slot
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .unwrap_or_else(|| {
                Err(ParFailure::Panic(FirstPanic {
                    index: chunks[c].1,
                    payload: Box::new("worker terminated without reporting a result".to_string()),
                }))
            });
        match outcome {
            Ok(rs) => results.push(rs),
            Err(ParFailure::Cancelled) => cancelled = true,
            Err(ParFailure::Panic(p)) => {
                if first.as_ref().is_none_or(|f| p.index < f.index) {
                    first = Some(p);
                }
            }
        }
    }
    match (first, cancelled) {
        (Some(p), _) => Err(ParFailure::Panic(p)),
        (None, true) => Err(ParFailure::Cancelled),
        (None, false) => Ok(results.into_iter().flatten().collect()),
    }
}

/// Maps `f` over `items`, possibly on multiple threads, preserving input
/// order in the result.
///
/// Items are split into at most `threads` contiguous chunks of at least
/// `min_chunk` items each, so small inputs stay on one thread and avoid
/// spawn overhead. Results are concatenated chunk by chunk: element `i` of
/// the return value is always `f(&items[i])`.
///
/// # Panics
///
/// Re-raises the first worker panic (lowest input index) on the calling
/// thread. Use [`try_par_map`] to receive it as a [`LinalgError`] instead.
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match par_map_core(par, items, min_chunk, None, f) {
        Ok(results) => results,
        Err(ParFailure::Panic(p)) => std::panic::resume_unwind(p.payload),
        // Unreachable: no token was passed, so nothing can cancel.
        Err(ParFailure::Cancelled) => unreachable!("cancelled without a token"),
    }
}

/// Panic-isolated [`par_map`]: identical output for non-failing runs (bit
/// for bit, at any thread count), but a panicking worker closure surfaces as
/// [`LinalgError::WorkerPanic`] instead of unwinding through the caller.
///
/// The reported index is deterministic — the lowest input-order index whose
/// closure panicked among the panics observed — so retries and error
/// messages are stable across thread counts and scheduling.
///
/// # Errors
///
/// Returns [`LinalgError::WorkerPanic`] when any worker closure panics.
///
/// # Example
///
/// ```
/// use mtperf_linalg::parallel::{try_par_map, Parallelism};
///
/// let ok = try_par_map(Parallelism::Fixed(2), &[1, 2, 3], 1, |&x| x * x);
/// assert_eq!(ok.unwrap(), vec![1, 4, 9]);
///
/// let err = try_par_map(Parallelism::Fixed(2), &[1, 2, 3], 1, |&x| {
///     assert!(x != 2, "bad item");
///     x
/// });
/// assert!(err.is_err());
/// ```
pub fn try_par_map<T, R, F>(
    par: Parallelism,
    items: &[T],
    min_chunk: usize,
    f: F,
) -> Result<Vec<R>, LinalgError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_core(par, items, min_chunk, None, f).map_err(ParFailure::into_error)
}

impl ParFailure {
    fn into_error(self) -> LinalgError {
        match self {
            ParFailure::Panic(p) => LinalgError::WorkerPanic {
                index: p.index,
                message: p.message(),
            },
            ParFailure::Cancelled => LinalgError::Cancelled,
        }
    }
}

/// [`try_par_map`] with cooperative cancellation: `cancel` is consulted
/// before every item, on every worker, so a fired token (explicit
/// [`CancelToken::cancel`] or an expired deadline) stops the section within
/// one item's worth of work per thread.
///
/// Successful runs are bit-identical to [`try_par_map`] at any thread
/// count. Cancellation discards all partial results — the caller gets
/// [`LinalgError::Cancelled`], never a partially filled vector.
///
/// # Errors
///
/// Returns [`LinalgError::Cancelled`] when the token fires before the last
/// item completes, and [`LinalgError::WorkerPanic`] when a worker closure
/// panics (a panic outranks concurrent cancellation, deterministically).
///
/// # Example
///
/// ```
/// use mtperf_linalg::parallel::{try_par_map_cancel, CancelToken, Parallelism};
/// use mtperf_linalg::LinalgError;
///
/// let token = CancelToken::new();
/// token.cancel();
/// let err = try_par_map_cancel(Parallelism::Fixed(2), &[1, 2, 3], 1, &token, |&x| x);
/// assert!(matches!(err, Err(LinalgError::Cancelled)));
/// ```
pub fn try_par_map_cancel<T, R, F>(
    par: Parallelism,
    items: &[T],
    min_chunk: usize,
    cancel: &CancelToken,
    f: F,
) -> Result<Vec<R>, LinalgError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_core(par, items, min_chunk, Some(cancel), f).map_err(ParFailure::into_error)
}

/// In-place deterministic parallel fill: splits `out` into `block`-sized
/// row blocks, assigns contiguous runs of blocks to up to
/// `par.threads()` chunks, and calls `fill(start, &mut out[start..])` once
/// per block. Because every block writes directly into its own disjoint
/// region of `out`, there is no per-block allocation and no reduction
/// copy — this is the engine under compiled batch prediction.
///
/// Determinism matches [`try_par_map`]: block → output mapping is
/// positional, so the contents of `out` are bit-identical at any
/// [`Parallelism`] setting (for a `fill` free of shared mutable state).
/// `cancel`, when given, is consulted before every block on every worker;
/// panics inside `fill` are caught per block and reported with the lowest
/// panicking *block index*.
///
/// On error, `out` contents are unspecified (some blocks written, others
/// not) — callers must discard the buffer, mirroring the
/// "cancellation discards partial results" contract of
/// [`try_par_map_cancel`].
///
/// # Errors
///
/// [`LinalgError::Cancelled`] when the token fires before the last block
/// completes; [`LinalgError::WorkerPanic`] (lowest block index, with the
/// panic message) when `fill` panics.
///
/// # Example
///
/// ```
/// use mtperf_linalg::parallel::{try_par_fill, Parallelism};
///
/// let mut out = vec![0u64; 10];
/// try_par_fill(Parallelism::Fixed(3), &mut out, 4, None, |start, block| {
///     for (i, v) in block.iter_mut().enumerate() {
///         *v = (start + i) as u64 * 2;
///     }
/// })
/// .unwrap();
/// assert_eq!(out, (0..10).map(|i| i * 2).collect::<Vec<u64>>());
/// ```
pub fn try_par_fill<R, F>(
    par: Parallelism,
    out: &mut [R],
    block: usize,
    cancel: Option<&CancelToken>,
    fill: F,
) -> Result<(), LinalgError>
where
    R: Send,
    F: Fn(usize, &mut [R]) + Sync,
{
    let n = out.len();
    if n == 0 {
        return Ok(());
    }
    let block = block.max(1);
    let n_blocks = n.div_ceil(block);

    // Runs blocks `start_block..start_block + blocks` over `span`, which
    // covers exactly those blocks' rows.
    let run_span = |start_block: usize, blocks: usize, span: &mut [R]| -> Result<(), ParFailure> {
        let mut rest = span;
        for b in 0..blocks {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(ParFailure::Cancelled);
            }
            let abs = start_block + b;
            let len = rest.len().min(block);
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(len);
            rest = tail;
            catch_unwind(AssertUnwindSafe(|| fill(abs * block, head))).map_err(|payload| {
                ParFailure::Panic(FirstPanic {
                    index: abs,
                    payload,
                })
            })?;
        }
        Ok(())
    };

    let threads = par.threads().min(n_blocks);
    if threads <= 1 || IN_PARALLEL.with(Cell::get) {
        return run_span(0, n_blocks, out).map_err(ParFailure::into_error);
    }

    // Near-equal contiguous runs of blocks per chunk; the first `rem`
    // chunks get one extra block. Each slot owns its chunk's slice of
    // `out`, taken by whichever thread runs the chunk.
    type FillSlot<'s, R> = Mutex<(Option<(usize, usize, &'s mut [R])>, Option<ParFailure>)>;
    let base = n_blocks / threads;
    let rem = n_blocks % threads;
    let mut slots: Vec<FillSlot<'_, R>> = Vec::with_capacity(threads);
    let mut remaining = out;
    let mut start_block = 0;
    for c in 0..threads {
        let blocks = base + usize::from(c < rem);
        let rows = remaining.len().min(blocks * block);
        let (head, tail) = remaining.split_at_mut(rows);
        remaining = tail;
        slots.push(Mutex::new((Some((start_block, blocks, head)), None)));
        start_block += blocks;
    }
    debug_assert_eq!(start_block, n_blocks);
    debug_assert!(remaining.is_empty());

    let obs_ctx = mtperf_obs::current_context();
    pool::run_chunked(threads, &|c: usize| {
        let mut slot = lock(&slots[c]);
        if let Some((sb, blocks, span)) = slot.0.take() {
            let outcome = mtperf_obs::in_context(obs_ctx.as_ref(), || {
                with_parallel_flag(|| run_span(sb, blocks, span))
            });
            slot.1 = outcome.err();
        }
    });

    // Same deterministic precedence as `par_map`: lowest-index panic, then
    // cancellation. A chunk whose input was never taken (worker died before
    // starting) reports as a panic on its first block.
    let mut first: Option<FirstPanic> = None;
    let mut cancelled = false;
    for slot in slots {
        let (input, outcome) = slot.into_inner().unwrap_or_else(PoisonError::into_inner);
        let outcome = match input {
            Some((sb, _, _)) => Some(ParFailure::Panic(FirstPanic {
                index: sb,
                payload: Box::new("worker terminated without reporting a result".to_string()),
            })),
            None => outcome,
        };
        match outcome {
            None => {}
            Some(ParFailure::Cancelled) => cancelled = true,
            Some(ParFailure::Panic(p)) if first.as_ref().is_none_or(|f| p.index < f.index) => {
                first = Some(p);
            }
            Some(ParFailure::Panic(_)) => {}
        }
    }
    match (first, cancelled) {
        (Some(p), _) => Err(ParFailure::Panic(p).into_error()),
        (None, true) => Err(LinalgError::Cancelled),
        (None, false) => Ok(()),
    }
}

/// Starts the worker pool for the current global thread budget and
/// measures the dispatch overhead, so the first real parallel section
/// (e.g. the first request a serving daemon answers) pays neither lazy
/// thread spawn nor calibration cost.
pub fn warm_up() {
    let threads = global().threads();
    if threads > 1 {
        pool::ensure_workers(threads - 1);
        let _ = dispatch_overhead();
    }
}

/// Measured round-trip cost of dispatching one multi-chunk job through
/// the pool (median of several no-op dispatches; measured once per
/// process, [`Duration::ZERO`] before the pool is ever used in a
/// single-threaded configuration). This is the constant the adaptive
/// serial/parallel cutover in compiled batch prediction weighs against
/// measured per-row compute cost — a measured number, not a guess.
pub fn dispatch_overhead() -> Duration {
    static OVERHEAD: OnceLock<Duration> = OnceLock::new();
    *OVERHEAD.get_or_init(|| {
        // Representative fan-out: 4 chunks (or the machine width if
        // smaller). One throwaway dispatch warms lazy worker spawn so the
        // measured samples see the steady state.
        let chunks = global().threads().clamp(2, 4);
        pool::ensure_workers(chunks - 1);
        pool::run_chunked(chunks, &|_| {});
        let mut samples: Vec<Duration> = (0..9)
            .map(|_| {
                let t0 = clock::now();
                pool::run_chunked(chunks, &|c| {
                    std::hint::black_box(c);
                });
                clock::now().saturating_sub(t0)
            })
            .collect();
        samples.sort();
        samples[samples.len() / 2]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_thread_count() {
        let items: Vec<usize> = (0..1000).collect();
        let serial = par_map(Parallelism::Off, &items, 1, |&x| x * 3);
        for threads in [1, 2, 3, 4, 7, 16] {
            let parallel = par_map(Parallelism::Fixed(threads), &items, 1, |&x| x * 3);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(Parallelism::Auto, &empty, 1, |&x| x).is_empty());
        assert_eq!(
            par_map(Parallelism::Fixed(8), &[5u32], 1, |&x| x + 1),
            vec![6]
        );
    }

    #[test]
    fn min_chunk_limits_fan_out() {
        // 10 items with min_chunk 8 must not use more than one thread; the
        // observable contract is just that results stay correct and ordered.
        let items: Vec<usize> = (0..10).collect();
        let got = par_map(Parallelism::Fixed(8), &items, 8, |&x| x + 1);
        assert_eq!(got, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn min_chunk_zero_means_one_chunk_per_thread() {
        // `min_chunk == 0` is the documented no-lower-bound case: the
        // fan-out is limited only by the thread budget and the item count
        // (one chunk per thread when items suffice, one item per chunk
        // when threads exceed items). It must behave exactly like
        // `min_chunk == 1` on every input, including fewer items than
        // threads and the empty slice.
        for threads in [1usize, 2, 3, 8] {
            for n in [0usize, 1, 2, 5, 7, 100] {
                let items: Vec<usize> = (0..n).collect();
                let zero = par_map(Parallelism::Fixed(threads), &items, 0, |&x| x * 7 + 1);
                let one = par_map(Parallelism::Fixed(threads), &items, 1, |&x| x * 7 + 1);
                assert_eq!(zero, one, "threads = {threads}, n = {n}");
                assert_eq!(zero, items.iter().map(|&x| x * 7 + 1).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn par_fill_matches_serial_at_any_thread_count_and_block_size() {
        let n = 1003; // deliberately not a multiple of any block size
        let mut serial = vec![0.0f64; n];
        try_par_fill(Parallelism::Off, &mut serial, 64, None, |start, block| {
            for (i, v) in block.iter_mut().enumerate() {
                *v = ((start + i) as f64).sqrt().sin();
            }
        })
        .unwrap();
        for threads in [2usize, 3, 7, 16] {
            for block in [1usize, 64, 512, 4096] {
                let mut out = vec![0.0f64; n];
                try_par_fill(
                    Parallelism::Fixed(threads),
                    &mut out,
                    block,
                    None,
                    |start, blk| {
                        for (i, v) in blk.iter_mut().enumerate() {
                            *v = ((start + i) as f64).sqrt().sin();
                        }
                    },
                )
                .unwrap();
                for (i, (a, b)) in out.iter().zip(&serial).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "threads {threads}, block {block}, row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn par_fill_panic_reports_lowest_block_index() {
        for threads in [1usize, 2, 7] {
            let mut out = vec![0u32; 1000];
            let err = try_par_fill(
                Parallelism::Fixed(threads),
                &mut out,
                10,
                None,
                |start, _block| {
                    assert!(!(30..700).contains(&start), "fill boom");
                },
            )
            .unwrap_err();
            let LinalgError::WorkerPanic { index, message } = err else {
                panic!("wrong variant");
            };
            assert_eq!(index, 3, "threads = {threads}"); // block 3 starts at row 30
            assert!(message.contains("fill boom"), "{message}");
        }
    }

    #[test]
    fn par_fill_cancellation_and_empty_output() {
        let token = CancelToken::new();
        token.cancel();
        let mut out = vec![0u8; 100];
        let err = try_par_fill(Parallelism::Fixed(4), &mut out, 8, Some(&token), |_, _| {});
        assert!(matches!(err, Err(LinalgError::Cancelled)));
        // Empty output: trivially done, even with a fired token.
        let mut empty: [u8; 0] = [];
        try_par_fill(
            Parallelism::Fixed(4),
            &mut empty,
            8,
            Some(&token),
            |_, _| {},
        )
        .unwrap();
    }

    #[test]
    fn dispatch_overhead_is_measured_once_and_small() {
        let a = dispatch_overhead();
        let b = dispatch_overhead();
        assert_eq!(a, b, "memoized");
        assert!(a < Duration::from_millis(100), "{a:?}");
        warm_up(); // must be callable at any time, any thread budget
    }

    #[test]
    fn nested_calls_run_serially_and_correctly() {
        let outer: Vec<usize> = (0..8).collect();
        let got = par_map(Parallelism::Fixed(4), &outer, 1, |&i| {
            let inner: Vec<usize> = (0..4).collect();
            par_map(Parallelism::Fixed(4), &inner, 1, move |&j| i * 10 + j)
        });
        for (i, row) in got.iter().enumerate() {
            assert_eq!(row, &vec![i * 10, i * 10 + 1, i * 10 + 2, i * 10 + 3]);
        }
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        par_map(Parallelism::Fixed(4), &items, 1, |&x| {
            assert!(x < 60, "worker boom");
            x
        });
    }

    #[test]
    fn try_par_map_matches_par_map_on_clean_runs() {
        let items: Vec<usize> = (0..500).collect();
        let plain = par_map(Parallelism::Off, &items, 1, |&x| (x as f64).sqrt());
        for threads in [1, 2, 3, 8] {
            let tried = try_par_map(Parallelism::Fixed(threads), &items, 1, |&x| {
                (x as f64).sqrt()
            })
            .unwrap();
            assert_eq!(tried.len(), plain.len());
            for (a, b) in tried.iter().zip(plain.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn panicking_closure_returns_error_instead_of_unwinding() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 2, 4, 8] {
            let err = try_par_map(Parallelism::Fixed(threads), &items, 1, |&x| {
                assert!(x != 17, "deliberate failure");
                x
            })
            .unwrap_err();
            match err {
                LinalgError::WorkerPanic { index, message } => {
                    assert_eq!(index, 17, "threads = {threads}");
                    assert!(message.contains("deliberate failure"), "{message}");
                }
                other => panic!("unexpected error: {other}"),
            }
        }
    }

    #[test]
    fn first_panic_index_is_deterministic_across_thread_counts() {
        // Multiple failing items: the reported index must always be the
        // lowest one, no matter how chunks are scheduled.
        let items: Vec<usize> = (0..100).collect();
        for threads in [2, 3, 7, 16] {
            let err = try_par_map(Parallelism::Fixed(threads), &items, 1, |&x| {
                assert!(!(x >= 23 && x % 3 == 2), "multi-fail");
                x
            })
            .unwrap_err();
            let LinalgError::WorkerPanic { index, .. } = err else {
                panic!("wrong variant");
            };
            assert_eq!(index, 23, "threads = {threads}");
        }
    }

    #[test]
    fn non_string_panic_payload_is_reported() {
        let err = try_par_map(Parallelism::Off, &[1u32], 0, |_| {
            std::panic::panic_any(42u32);
            #[allow(unreachable_code)]
            0u32
        })
        .unwrap_err();
        let LinalgError::WorkerPanic { message, .. } = err else {
            panic!("wrong variant");
        };
        assert!(message.contains("non-string"), "{message}");
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_work() {
        let items: Vec<usize> = (0..100).collect();
        let token = CancelToken::new();
        token.cancel();
        for threads in [1, 2, 8] {
            let err =
                try_par_map_cancel(Parallelism::Fixed(threads), &items, 1, &token, |&x| x * 2)
                    .unwrap_err();
            assert!(matches!(err, LinalgError::Cancelled), "threads = {threads}");
        }
    }

    #[test]
    fn expired_deadline_cancels() {
        let items: Vec<usize> = (0..50).collect();
        let token = CancelToken::with_deadline(Duration::ZERO);
        let err = try_par_map_cancel(Parallelism::Fixed(4), &items, 1, &token, |&x| x).unwrap_err();
        assert!(matches!(err, LinalgError::Cancelled));
    }

    #[test]
    fn future_deadline_lets_work_complete() {
        let items: Vec<usize> = (0..64).collect();
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        let got = try_par_map_cancel(Parallelism::Fixed(4), &items, 1, &token, |&x| x + 1).unwrap();
        assert_eq!(got, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn mid_run_cancel_from_another_thread_stops_the_section() {
        let items: Vec<usize> = (0..10_000).collect();
        let token = CancelToken::new();
        let witness = token.clone();
        let err = try_par_map_cancel(Parallelism::Fixed(2), &items, 1, &token, |&x| {
            if x == 5 {
                witness.cancel();
            }
            x
        })
        .unwrap_err();
        assert!(matches!(err, LinalgError::Cancelled));
    }

    #[test]
    fn worker_panic_outranks_cancellation() {
        // One item panics, another cancels: the panic must win so the defect
        // is reported, at any thread count.
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 2, 8] {
            let token = CancelToken::new();
            let witness = token.clone();
            let err = try_par_map_cancel(Parallelism::Fixed(threads), &items, 1, &token, |&x| {
                assert!(x != 0, "defect first");
                if x == 1 {
                    witness.cancel();
                }
                x
            })
            .unwrap_err();
            assert!(
                matches!(err, LinalgError::WorkerPanic { index: 0, .. }),
                "threads = {threads}: {err}"
            );
        }
    }

    #[test]
    fn cancel_token_clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        assert!(a.deadline().is_none());
        assert!(CancelToken::with_deadline(Duration::from_secs(1))
            .deadline()
            .is_some());
    }

    #[test]
    fn parallelism_parses_and_displays() {
        assert_eq!("auto".parse::<Parallelism>().unwrap(), Parallelism::Auto);
        assert_eq!("off".parse::<Parallelism>().unwrap(), Parallelism::Off);
        assert_eq!("6".parse::<Parallelism>().unwrap(), Parallelism::Fixed(6));
        assert!("0".parse::<Parallelism>().is_err());
        assert!("fast".parse::<Parallelism>().is_err());
        for p in [Parallelism::Auto, Parallelism::Off, Parallelism::Fixed(3)] {
            assert_eq!(p.to_string().parse::<Parallelism>().unwrap(), p);
        }
    }

    #[test]
    fn global_default_round_trips() {
        let original = global();
        for p in [Parallelism::Off, Parallelism::Fixed(5), Parallelism::Auto] {
            set_global(p);
            assert_eq!(global(), p);
        }
        set_global(original);
    }

    #[test]
    fn threads_resolves_sensibly() {
        assert_eq!(Parallelism::Off.threads(), 1);
        assert_eq!(Parallelism::Fixed(3).threads(), 3);
        assert_eq!(Parallelism::Fixed(0).threads(), 1);
        assert!(Parallelism::Auto.threads() >= 1);
    }
}
