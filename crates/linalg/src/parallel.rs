//! Deterministic data parallelism on scoped OS threads.
//!
//! The workspace deliberately has no external dependencies (the registry is
//! not reachable from every build environment), so this module builds its
//! map-reduce helper directly on [`std::thread::scope`].
//!
//! # Determinism contract
//!
//! [`par_map`] computes `f` on each item independently and returns results in
//! **input order**, regardless of thread count or scheduling. Callers that
//! keep their per-item computation free of shared mutable state therefore get
//! bit-identical results at any [`Parallelism`] setting — the property the
//! split search, cross validation, and baseline suite rely on.
//!
//! # Panic isolation
//!
//! Worker closures run under [`std::panic::catch_unwind`], so a panicking
//! item never tears down the process or poisons sibling workers. [`par_map`]
//! re-raises the first panic (lowest input index) on the calling thread for
//! backward compatibility; [`try_par_map`] surfaces it as a structured
//! [`crate::LinalgError::WorkerPanic`] instead, which is what the training
//! and evaluation pipelines use.
//!
//! # Example
//!
//! ```
//! use mtperf_linalg::parallel::{par_map, Parallelism};
//!
//! let squares = par_map(Parallelism::Auto, &[1, 2, 3, 4], 1, |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::LinalgError;

/// A cooperative cancellation signal shared between a controller and the
/// workers of a parallel section.
///
/// Tokens are cheap to clone (an [`Arc`] around one atomic flag plus an
/// optional deadline). Workers observe cancellation *between* items — a
/// running closure is never interrupted mid-flight, so partially computed
/// items are simply discarded and no shared state is left torn. A token with
/// a deadline reports itself cancelled once the deadline passes, which is
/// how per-request deadlines thread through batch prediction.
///
/// # Example
///
/// ```
/// use mtperf_linalg::parallel::CancelToken;
/// use std::time::Duration;
///
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// token.cancel();
/// assert!(token.is_cancelled());
///
/// // Already-expired deadlines cancel immediately and deterministically.
/// let expired = CancelToken::with_deadline(Duration::ZERO);
/// assert!(expired.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that additionally reports cancelled once `timeout` from now
    /// has elapsed.
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        Self::with_deadline_at(Instant::now() + timeout)
    }

    /// A token with an absolute deadline.
    pub fn with_deadline_at(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Requests cancellation; all clones of this token observe it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
            || self
                .inner
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// The absolute deadline, if this token carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

/// How many worker threads parallel sections may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use the machine's available parallelism.
    #[default]
    Auto,
    /// Run everything serially on the calling thread.
    Off,
    /// Use exactly this many threads (≥ 1; 1 behaves like [`Parallelism::Off`]).
    Fixed(usize),
}

impl Parallelism {
    /// The concrete thread count this setting resolves to on this machine.
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Off => 1,
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

impl FromStr for Parallelism {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Parallelism::Auto),
            "off" => Ok(Parallelism::Off),
            n => n
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .map(Parallelism::Fixed)
                .ok_or_else(|| {
                    format!("invalid parallelism {s:?}: expected \"auto\", \"off\", or a thread count >= 1")
                }),
        }
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Auto => write!(f, "auto"),
            Parallelism::Off => write!(f, "off"),
            Parallelism::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// Global default used when a caller does not pass an explicit setting.
/// Encoding: 0 = Auto, 1 = Off, n ≥ 2 = Fixed(n − 1).
static GLOBAL: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default [`Parallelism`] (e.g. from a `--threads`
/// CLI flag).
pub fn set_global(par: Parallelism) {
    let encoded = match par {
        Parallelism::Auto => 0,
        Parallelism::Off => 1,
        Parallelism::Fixed(n) => n.max(1) + 1,
    };
    GLOBAL.store(encoded, Ordering::Relaxed);
}

/// The process-wide default [`Parallelism`].
pub fn global() -> Parallelism {
    match GLOBAL.load(Ordering::Relaxed) {
        0 => Parallelism::Auto,
        1 => Parallelism::Off,
        n => Parallelism::Fixed(n - 1),
    }
}

thread_local! {
    /// True inside a `par_map` worker: nested calls run serially instead of
    /// oversubscribing the machine.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// The first caught worker panic: the input-order index of the item whose
/// closure panicked, plus the original panic payload.
struct FirstPanic {
    index: usize,
    payload: Box<dyn Any + Send + 'static>,
}

impl FirstPanic {
    /// Renders the payload as text the way the default panic hook does.
    fn message(&self) -> String {
        if let Some(s) = self.payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }
}

/// Why a parallel section stopped early: a worker panicked, or the caller's
/// cancellation token fired between items.
enum ParFailure {
    Panic(FirstPanic),
    Cancelled,
}

/// Shared engine behind [`par_map`], [`try_par_map`], and
/// [`try_par_map_cancel`]: every closure call runs under [`catch_unwind`],
/// so a panicking worker never tears down its thread — the chunk stops,
/// siblings finish, and the lowest-index panic is reported to the caller as
/// a value. A cancellation token, when given, is consulted before each item.
fn par_map_core<T, R, F>(
    par: Parallelism,
    items: &[T],
    min_chunk: usize,
    cancel: Option<&CancelToken>,
    f: F,
) -> Result<Vec<R>, ParFailure>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = par.threads().min(
        if min_chunk == 0 {
            n
        } else {
            n / min_chunk.max(1)
        }
        .max(1),
    );

    // Runs one contiguous chunk, catching the first panic. `offset` is the
    // chunk's position in `items`, so panic indices are input-order global.
    let run_chunk = |chunk: &[T], offset: usize| -> Result<Vec<R>, ParFailure> {
        let mut out = Vec::with_capacity(chunk.len());
        for (i, item) in chunk.iter().enumerate() {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(ParFailure::Cancelled);
            }
            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(r) => out.push(r),
                Err(payload) => {
                    return Err(ParFailure::Panic(FirstPanic {
                        index: offset + i,
                        payload,
                    }))
                }
            }
        }
        Ok(out)
    };

    if threads <= 1 || n <= 1 || IN_PARALLEL.with(Cell::get) {
        return run_chunk(items, 0);
    }

    // Contiguous near-equal chunks; the first `rem` chunks get one extra.
    let base = n / threads;
    let rem = n % threads;
    let mut chunks: Vec<(&[T], usize)> = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < rem);
        chunks.push((&items[start..start + len], start));
        start += len;
    }
    debug_assert_eq!(start, n);

    let run_chunk_flagged = |chunk: &[T], offset: usize| -> Result<Vec<R>, ParFailure> {
        IN_PARALLEL.with(|flag| flag.set(true));
        let out = run_chunk(chunk, offset);
        IN_PARALLEL.with(|flag| flag.set(false));
        out
    };

    // Capture the caller's span context (if tracing is on) so spans opened
    // inside worker closures nest under the span that spawned the section.
    // `None` when tracing is disabled: workers then run the closure directly.
    let obs_ctx = mtperf_obs::current_context();

    let mut per_chunk: Vec<Result<Vec<R>, ParFailure>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .skip(1)
            .map(|(chunk, offset)| {
                let ctx = obs_ctx.as_ref();
                scope.spawn(move || {
                    mtperf_obs::in_context(ctx, || run_chunk_flagged(chunk, *offset))
                })
            })
            .collect();
        // The calling thread works the first chunk instead of idling.
        per_chunk.push(run_chunk_flagged(chunks[0].0, chunks[0].1));
        for handle in handles {
            // Workers catch their own panics, so join only fails if the
            // panic machinery itself panicked; treat that as item 0's panic.
            per_chunk.push(handle.join().unwrap_or_else(|payload| {
                Err(ParFailure::Panic(FirstPanic { index: 0, payload }))
            }));
        }
    });

    // Deterministic error choice: the panic with the lowest input index wins,
    // regardless of which thread finished first; a panic anywhere outranks
    // cancellation (the panic names a concrete defect, cancellation is just
    // the controller giving up).
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    let mut first: Option<FirstPanic> = None;
    let mut cancelled = false;
    for chunk in per_chunk {
        match chunk {
            Ok(rs) => results.push(rs),
            Err(ParFailure::Cancelled) => cancelled = true,
            Err(ParFailure::Panic(p)) => {
                if first.as_ref().is_none_or(|f| p.index < f.index) {
                    first = Some(p);
                }
            }
        }
    }
    match (first, cancelled) {
        (Some(p), _) => Err(ParFailure::Panic(p)),
        (None, true) => Err(ParFailure::Cancelled),
        (None, false) => Ok(results.into_iter().flatten().collect()),
    }
}

/// Maps `f` over `items`, possibly on multiple threads, preserving input
/// order in the result.
///
/// Items are split into at most `threads` contiguous chunks of at least
/// `min_chunk` items each, so small inputs stay on one thread and avoid
/// spawn overhead. Results are concatenated chunk by chunk: element `i` of
/// the return value is always `f(&items[i])`.
///
/// # Panics
///
/// Re-raises the first worker panic (lowest input index) on the calling
/// thread. Use [`try_par_map`] to receive it as a [`LinalgError`] instead.
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match par_map_core(par, items, min_chunk, None, f) {
        Ok(results) => results,
        Err(ParFailure::Panic(p)) => std::panic::resume_unwind(p.payload),
        // Unreachable: no token was passed, so nothing can cancel.
        Err(ParFailure::Cancelled) => unreachable!("cancelled without a token"),
    }
}

/// Panic-isolated [`par_map`]: identical output for non-failing runs (bit
/// for bit, at any thread count), but a panicking worker closure surfaces as
/// [`LinalgError::WorkerPanic`] instead of unwinding through the caller.
///
/// The reported index is deterministic — the lowest input-order index whose
/// closure panicked among the panics observed — so retries and error
/// messages are stable across thread counts and scheduling.
///
/// # Errors
///
/// Returns [`LinalgError::WorkerPanic`] when any worker closure panics.
///
/// # Example
///
/// ```
/// use mtperf_linalg::parallel::{try_par_map, Parallelism};
///
/// let ok = try_par_map(Parallelism::Fixed(2), &[1, 2, 3], 1, |&x| x * x);
/// assert_eq!(ok.unwrap(), vec![1, 4, 9]);
///
/// let err = try_par_map(Parallelism::Fixed(2), &[1, 2, 3], 1, |&x| {
///     assert!(x != 2, "bad item");
///     x
/// });
/// assert!(err.is_err());
/// ```
pub fn try_par_map<T, R, F>(
    par: Parallelism,
    items: &[T],
    min_chunk: usize,
    f: F,
) -> Result<Vec<R>, LinalgError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_core(par, items, min_chunk, None, f).map_err(ParFailure::into_error)
}

impl ParFailure {
    fn into_error(self) -> LinalgError {
        match self {
            ParFailure::Panic(p) => LinalgError::WorkerPanic {
                index: p.index,
                message: p.message(),
            },
            ParFailure::Cancelled => LinalgError::Cancelled,
        }
    }
}

/// [`try_par_map`] with cooperative cancellation: `cancel` is consulted
/// before every item, on every worker, so a fired token (explicit
/// [`CancelToken::cancel`] or an expired deadline) stops the section within
/// one item's worth of work per thread.
///
/// Successful runs are bit-identical to [`try_par_map`] at any thread
/// count. Cancellation discards all partial results — the caller gets
/// [`LinalgError::Cancelled`], never a partially filled vector.
///
/// # Errors
///
/// Returns [`LinalgError::Cancelled`] when the token fires before the last
/// item completes, and [`LinalgError::WorkerPanic`] when a worker closure
/// panics (a panic outranks concurrent cancellation, deterministically).
///
/// # Example
///
/// ```
/// use mtperf_linalg::parallel::{try_par_map_cancel, CancelToken, Parallelism};
/// use mtperf_linalg::LinalgError;
///
/// let token = CancelToken::new();
/// token.cancel();
/// let err = try_par_map_cancel(Parallelism::Fixed(2), &[1, 2, 3], 1, &token, |&x| x);
/// assert!(matches!(err, Err(LinalgError::Cancelled)));
/// ```
pub fn try_par_map_cancel<T, R, F>(
    par: Parallelism,
    items: &[T],
    min_chunk: usize,
    cancel: &CancelToken,
    f: F,
) -> Result<Vec<R>, LinalgError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_core(par, items, min_chunk, Some(cancel), f).map_err(ParFailure::into_error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_thread_count() {
        let items: Vec<usize> = (0..1000).collect();
        let serial = par_map(Parallelism::Off, &items, 1, |&x| x * 3);
        for threads in [1, 2, 3, 4, 7, 16] {
            let parallel = par_map(Parallelism::Fixed(threads), &items, 1, |&x| x * 3);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(Parallelism::Auto, &empty, 1, |&x| x).is_empty());
        assert_eq!(
            par_map(Parallelism::Fixed(8), &[5u32], 1, |&x| x + 1),
            vec![6]
        );
    }

    #[test]
    fn min_chunk_limits_fan_out() {
        // 10 items with min_chunk 8 must not use more than one thread; the
        // observable contract is just that results stay correct and ordered.
        let items: Vec<usize> = (0..10).collect();
        let got = par_map(Parallelism::Fixed(8), &items, 8, |&x| x + 1);
        assert_eq!(got, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_calls_run_serially_and_correctly() {
        let outer: Vec<usize> = (0..8).collect();
        let got = par_map(Parallelism::Fixed(4), &outer, 1, |&i| {
            let inner: Vec<usize> = (0..4).collect();
            par_map(Parallelism::Fixed(4), &inner, 1, move |&j| i * 10 + j)
        });
        for (i, row) in got.iter().enumerate() {
            assert_eq!(row, &vec![i * 10, i * 10 + 1, i * 10 + 2, i * 10 + 3]);
        }
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        par_map(Parallelism::Fixed(4), &items, 1, |&x| {
            assert!(x < 60, "worker boom");
            x
        });
    }

    #[test]
    fn try_par_map_matches_par_map_on_clean_runs() {
        let items: Vec<usize> = (0..500).collect();
        let plain = par_map(Parallelism::Off, &items, 1, |&x| (x as f64).sqrt());
        for threads in [1, 2, 3, 8] {
            let tried = try_par_map(Parallelism::Fixed(threads), &items, 1, |&x| {
                (x as f64).sqrt()
            })
            .unwrap();
            assert_eq!(tried.len(), plain.len());
            for (a, b) in tried.iter().zip(plain.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn panicking_closure_returns_error_instead_of_unwinding() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 2, 4, 8] {
            let err = try_par_map(Parallelism::Fixed(threads), &items, 1, |&x| {
                assert!(x != 17, "deliberate failure");
                x
            })
            .unwrap_err();
            match err {
                LinalgError::WorkerPanic { index, message } => {
                    assert_eq!(index, 17, "threads = {threads}");
                    assert!(message.contains("deliberate failure"), "{message}");
                }
                other => panic!("unexpected error: {other}"),
            }
        }
    }

    #[test]
    fn first_panic_index_is_deterministic_across_thread_counts() {
        // Multiple failing items: the reported index must always be the
        // lowest one, no matter how chunks are scheduled.
        let items: Vec<usize> = (0..100).collect();
        for threads in [2, 3, 7, 16] {
            let err = try_par_map(Parallelism::Fixed(threads), &items, 1, |&x| {
                assert!(!(x >= 23 && x % 3 == 2), "multi-fail");
                x
            })
            .unwrap_err();
            let LinalgError::WorkerPanic { index, .. } = err else {
                panic!("wrong variant");
            };
            assert_eq!(index, 23, "threads = {threads}");
        }
    }

    #[test]
    fn non_string_panic_payload_is_reported() {
        let err = try_par_map(Parallelism::Off, &[1u32], 0, |_| {
            std::panic::panic_any(42u32);
            #[allow(unreachable_code)]
            0u32
        })
        .unwrap_err();
        let LinalgError::WorkerPanic { message, .. } = err else {
            panic!("wrong variant");
        };
        assert!(message.contains("non-string"), "{message}");
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_work() {
        let items: Vec<usize> = (0..100).collect();
        let token = CancelToken::new();
        token.cancel();
        for threads in [1, 2, 8] {
            let err =
                try_par_map_cancel(Parallelism::Fixed(threads), &items, 1, &token, |&x| x * 2)
                    .unwrap_err();
            assert!(matches!(err, LinalgError::Cancelled), "threads = {threads}");
        }
    }

    #[test]
    fn expired_deadline_cancels() {
        let items: Vec<usize> = (0..50).collect();
        let token = CancelToken::with_deadline(Duration::ZERO);
        let err = try_par_map_cancel(Parallelism::Fixed(4), &items, 1, &token, |&x| x).unwrap_err();
        assert!(matches!(err, LinalgError::Cancelled));
    }

    #[test]
    fn future_deadline_lets_work_complete() {
        let items: Vec<usize> = (0..64).collect();
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        let got = try_par_map_cancel(Parallelism::Fixed(4), &items, 1, &token, |&x| x + 1).unwrap();
        assert_eq!(got, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn mid_run_cancel_from_another_thread_stops_the_section() {
        let items: Vec<usize> = (0..10_000).collect();
        let token = CancelToken::new();
        let witness = token.clone();
        let err = try_par_map_cancel(Parallelism::Fixed(2), &items, 1, &token, |&x| {
            if x == 5 {
                witness.cancel();
            }
            x
        })
        .unwrap_err();
        assert!(matches!(err, LinalgError::Cancelled));
    }

    #[test]
    fn worker_panic_outranks_cancellation() {
        // One item panics, another cancels: the panic must win so the defect
        // is reported, at any thread count.
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 2, 8] {
            let token = CancelToken::new();
            let witness = token.clone();
            let err = try_par_map_cancel(Parallelism::Fixed(threads), &items, 1, &token, |&x| {
                assert!(x != 0, "defect first");
                if x == 1 {
                    witness.cancel();
                }
                x
            })
            .unwrap_err();
            assert!(
                matches!(err, LinalgError::WorkerPanic { index: 0, .. }),
                "threads = {threads}: {err}"
            );
        }
    }

    #[test]
    fn cancel_token_clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        assert!(a.deadline().is_none());
        assert!(CancelToken::with_deadline(Duration::from_secs(1))
            .deadline()
            .is_some());
    }

    #[test]
    fn parallelism_parses_and_displays() {
        assert_eq!("auto".parse::<Parallelism>().unwrap(), Parallelism::Auto);
        assert_eq!("off".parse::<Parallelism>().unwrap(), Parallelism::Off);
        assert_eq!("6".parse::<Parallelism>().unwrap(), Parallelism::Fixed(6));
        assert!("0".parse::<Parallelism>().is_err());
        assert!("fast".parse::<Parallelism>().is_err());
        for p in [Parallelism::Auto, Parallelism::Off, Parallelism::Fixed(3)] {
            assert_eq!(p.to_string().parse::<Parallelism>().unwrap(), p);
        }
    }

    #[test]
    fn global_default_round_trips() {
        let original = global();
        for p in [Parallelism::Off, Parallelism::Fixed(5), Parallelism::Auto] {
            set_global(p);
            assert_eq!(global(), p);
        }
        set_global(original);
    }

    #[test]
    fn threads_resolves_sensibly() {
        assert_eq!(Parallelism::Off.threads(), 1);
        assert_eq!(Parallelism::Fixed(3).threads(), 3);
        assert_eq!(Parallelism::Fixed(0).threads(), 1);
        assert!(Parallelism::Auto.threads() >= 1);
    }
}
