//! Linear-system and least-squares solvers.
//!
//! The model-tree leaves solve many small least-squares problems whose design
//! matrices frequently contain (near-)constant columns — a hardware event
//! that simply never fires inside one performance class. [`lstsq`] therefore
//! solves the normal equations by Cholesky factorization and escalates to a
//! tiny ridge penalty when the Gram matrix is singular to working precision,
//! which keeps the fit defined (and harmless) in the degenerate cases.

use crate::{LinalgError, Matrix};

/// Relative ridge escalation ladder used by [`lstsq`] when the plain normal
/// equations are singular.
const RIDGE_LADDER: [f64; 4] = [1e-12, 1e-9, 1e-6, 1e-3];

/// Cholesky factorization of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular factor `L` with `A = L * Lᵀ`.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] if `a` is not positive definite to
/// working precision and [`LinalgError::ShapeMismatch`] if `a` is not square.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::ShapeMismatch {
            left: a.shape(),
            right: a.shape(),
            op: "cholesky",
        });
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    // Tolerance scaled by the largest diagonal entry.
    let scale = (0..n).fold(0.0_f64, |m, i| m.max(a[(i, i)].abs()));
    let tol = scale.max(1.0) * 1e-13;
    for j in 0..n {
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= tol {
            return Err(LinalgError::Singular);
        }
        let dj = d.sqrt();
        l[(j, j)] = dj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / dj;
        }
    }
    Ok(l)
}

/// Solves `L * x = b` for lower-triangular `L` by forward substitution.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] on incompatible shapes and
/// [`LinalgError::Singular`] on a zero diagonal element.
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if l.rows() != l.cols() || l.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            left: l.shape(),
            right: (b.len(), 1),
            op: "solve_lower",
        });
    }
    let n = b.len();
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l[(i, j)] * x[j];
        }
        let d = l[(i, i)];
        if d == 0.0 {
            return Err(LinalgError::Singular);
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `U * x = b` for upper-triangular `U` by back substitution.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] on incompatible shapes and
/// [`LinalgError::Singular`] on a zero diagonal element.
pub fn solve_upper(u: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if u.rows() != u.cols() || u.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            left: u.shape(),
            right: (b.len(), 1),
            op: "solve_upper",
        });
    }
    let n = b.len();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in (i + 1)..n {
            s -= u[(i, j)] * x[j];
        }
        let d = u[(i, i)];
        if d == 0.0 {
            return Err(LinalgError::Singular);
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves the symmetric positive-definite system `A * x = b` via Cholesky.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] if `A` is not positive definite and
/// [`LinalgError::ShapeMismatch`] on incompatible shapes.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let l = cholesky(a)?;
    let y = solve_lower(&l, b)?;
    solve_upper(&l.transpose(), &y)
}

/// Ordinary least squares: finds `beta` minimizing `‖X·beta − y‖²`.
///
/// Solves the normal equations `XᵀX·beta = Xᵀy` by Cholesky factorization.
/// If `XᵀX` is singular to working precision (collinear or constant-zero
/// columns), the solve is retried with an escalating relative ridge penalty,
/// so a solution is always produced for well-formed inputs; the returned
/// coefficients of redundant columns are then shrunk toward zero.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] if `y.len() != x.rows()` and
/// [`LinalgError::Empty`] if `x` has no rows or no columns.
pub fn lstsq(x: &Matrix, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if x.rows() == 0 || x.cols() == 0 {
        return Err(LinalgError::Empty);
    }
    if y.len() != x.rows() {
        return Err(LinalgError::ShapeMismatch {
            left: x.shape(),
            right: (y.len(), 1),
            op: "lstsq",
        });
    }
    let g = x.gram();
    let rhs = x.t_matvec(y)?;
    if let Ok(beta) = cholesky_solve(&g, &rhs) {
        return Ok(beta);
    }
    let scale = (0..g.rows())
        .fold(0.0_f64, |m, i| m.max(g[(i, i)]))
        .max(1.0);
    for rel in RIDGE_LADDER {
        let mut gr = g.clone();
        for i in 0..gr.rows() {
            gr[(i, i)] += rel * scale;
        }
        if let Ok(beta) = cholesky_solve(&gr, &rhs) {
            return Ok(beta);
        }
    }
    Err(LinalgError::Singular)
}

/// Ridge regression: finds `beta` minimizing `‖X·beta − y‖² + lambda·‖beta‖²`.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] if `y.len() != x.rows()`,
/// [`LinalgError::Empty`] for an empty design matrix, and
/// [`LinalgError::Singular`] if the penalized system is still singular
/// (only possible for `lambda <= 0`).
pub fn lstsq_ridge(x: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>, LinalgError> {
    if x.rows() == 0 || x.cols() == 0 {
        return Err(LinalgError::Empty);
    }
    if y.len() != x.rows() {
        return Err(LinalgError::ShapeMismatch {
            left: x.shape(),
            right: (y.len(), 1),
            op: "lstsq_ridge",
        });
    }
    let mut g = x.gram();
    for i in 0..g.rows() {
        g[(i, i)] += lambda;
    }
    let rhs = x.t_matvec(y)?;
    cholesky_solve(&g, &rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn cholesky_of_known_spd() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let l = cholesky(&a).unwrap();
        // L * Lᵀ == A
        let back = l.matmul(&l.transpose()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert_eq!(cholesky(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn cholesky_rejects_nonsquare() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn triangular_solves() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]).unwrap();
        let x = solve_lower(&l, &[4.0, 11.0]).unwrap();
        approx(&x, &[2.0, 3.0], 1e-12);
        let u = l.transpose();
        let x = solve_upper(&u, &[7.0, 9.0]).unwrap();
        approx(&x, &[2.0, 3.0], 1e-12);
    }

    #[test]
    fn triangular_solve_shape_errors() {
        let l = Matrix::zeros(2, 2);
        assert!(solve_lower(&l, &[1.0]).is_err());
        assert!(solve_upper(&l, &[1.0]).is_err());
    }

    #[test]
    fn triangular_solve_singular() {
        let l = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]).unwrap();
        assert_eq!(
            solve_lower(&l, &[1.0, 1.0]).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn lstsq_exact_fit() {
        // y = 1 + 2*x1 - 3*x2, exactly determined.
        let x = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0],
            &[1.0, 1.0, 0.0],
            &[1.0, 0.0, 1.0],
            &[1.0, 2.0, 1.0],
        ])
        .unwrap();
        let y: Vec<f64> = (0..4)
            .map(|r| {
                let row = x.row(r);
                1.0 * row[0] + 2.0 * row[1] - 3.0 * row[2]
            })
            .collect();
        let beta = lstsq(&x, &y).unwrap();
        approx(&beta, &[1.0, 2.0, -3.0], 1e-9);
    }

    #[test]
    fn lstsq_overdetermined_minimizes_residual() {
        // Noisy line fit: residuals must be orthogonal to the columns.
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let y = [0.1, 1.9, 4.2, 5.8];
        let beta = lstsq(&x, &y).unwrap();
        let yhat = x.matvec(&beta).unwrap();
        let resid: Vec<f64> = y.iter().zip(&yhat).map(|(a, b)| a - b).collect();
        let ortho = x.t_matvec(&resid).unwrap();
        for v in ortho {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn lstsq_handles_zero_column() {
        // Second column never fires: Gram is singular, ridge fallback kicks in.
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0], &[3.0, 0.0]]).unwrap();
        let y = [2.0, 4.0, 6.0];
        let beta = lstsq(&x, &y).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-4);
        assert!(beta[1].abs() < 1e-6);
    }

    #[test]
    fn lstsq_handles_duplicate_columns() {
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let y = [2.0, 4.0, 6.0];
        let beta = lstsq(&x, &y).unwrap();
        // Ridge splits the weight; the sum must still predict y.
        let yhat = x.matvec(&beta).unwrap();
        for (p, a) in yhat.iter().zip(&y) {
            assert!((p - a).abs() < 1e-3);
        }
    }

    #[test]
    fn lstsq_rejects_bad_shapes() {
        let x = Matrix::zeros(2, 2);
        assert!(lstsq(&x, &[1.0]).is_err());
        let empty = Matrix::zeros(0, 0);
        assert_eq!(lstsq(&empty, &[]).unwrap_err(), LinalgError::Empty);
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
        let y = [1.0, 3.0, 5.0];
        let ols = lstsq(&x, &y).unwrap();
        let ridge = lstsq_ridge(&x, &y, 10.0).unwrap();
        assert!(ridge[1].abs() < ols[1].abs());
    }

    #[test]
    fn ridge_rejects_bad_shapes() {
        let x = Matrix::zeros(2, 2);
        assert!(lstsq_ridge(&x, &[1.0], 1.0).is_err());
        let empty = Matrix::zeros(0, 0);
        assert!(lstsq_ridge(&empty, &[], 1.0).is_err());
    }
}
