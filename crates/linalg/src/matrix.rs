use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::LinalgError;

/// A dense, row-major matrix of `f64`.
///
/// `Matrix` is the workhorse container behind the least-squares fits in the
/// model-tree leaves. It is intentionally minimal: construction, indexing,
/// transpose-products and a handful of conveniences. Solvers live in
/// the crate root ([`lstsq`](crate::lstsq) and friends).
///
/// # Example
///
/// ```
/// use mtperf_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::RaggedRows`] if the rows have unequal lengths
    /// and [`LinalgError::Empty`] if `rows` is empty or the rows are empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let first = rows.first().ok_or(LinalgError::Empty)?;
        if first.is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(LinalgError::RaggedRows {
                    expected: cols,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                left: (rows, cols),
                right: (data.len(), 1),
                op: "from_vec",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col {c} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != v.len()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: (v.len(), 1),
                op: "matvec",
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum::<f64>())
            .collect())
    }

    /// Computes the Gram matrix `selfᵀ * self` without materializing the
    /// transpose; this is the `p x p` normal-equations matrix for a design
    /// matrix with `p` columns.
    pub fn gram(&self) -> Matrix {
        let p = self.cols;
        let mut g = Matrix::zeros(p, p);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..p {
                let xi = row[i];
                if xi == 0.0 {
                    continue;
                }
                for j in i..p {
                    g[(i, j)] += xi * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..p {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Computes `selfᵀ * y`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `y.len() != self.rows()`.
    pub fn t_matvec(&self, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if y.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: (y.len(), 1),
                op: "t_matvec",
            });
        }
        let mut out = vec![0.0; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            if yr == 0.0 {
                continue;
            }
            for (o, x) in out.iter_mut().zip(self.row(r)) {
                *o += x * yr;
            }
        }
        Ok(out)
    }

    /// Maximum absolute element, or 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>10.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).unwrap_err();
        assert_eq!(
            err,
            LinalgError::RaggedRows {
                expected: 1,
                found: 2
            }
        );
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), LinalgError::Empty);
        let empty_row: &[f64] = &[];
        assert_eq!(
            Matrix::from_rows(&[empty_row]).unwrap_err(),
            LinalgError::Empty
        );
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn indexing_and_rows() {
        let m = m22();
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn row_mut_updates() {
        let mut m = m22();
        m.row_mut(0)[1] = 9.0;
        assert_eq!(m[(0, 1)], 9.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = m22();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = m22();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let p = a.matmul(&b).unwrap();
        assert_eq!(
            p,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = m22();
        let b = Matrix::zeros(3, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matvec_known() {
        let m = m22();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn gram_matches_explicit_product() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let g = m.gram();
        let explicit = m.transpose().matmul(&m).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn t_matvec_matches_explicit() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let y = [1.0, 0.5, -1.0];
        let tv = m.t_matvec(&y).unwrap();
        let explicit = m.transpose().matvec(&y).unwrap();
        assert_eq!(tv, explicit);
        assert!(m.t_matvec(&[1.0]).is_err());
    }

    #[test]
    fn max_abs() {
        let m = Matrix::from_rows(&[&[1.0, -7.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.max_abs(), 7.0);
    }

    #[test]
    fn display_nonempty() {
        let s = format!("{}", m22());
        assert!(s.contains("1.0000"));
        assert!(s.contains("4.0000"));
    }

    #[test]
    fn serde_roundtrip() {
        let m = m22();
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
