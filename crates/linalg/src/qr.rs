//! Householder QR least squares.
//!
//! The normal-equations route ([`crate::lstsq`]) squares the condition
//! number of the design matrix; QR works on the design matrix directly and
//! stays accurate on ill-conditioned problems. The model-tree leaves use the
//! normal equations for speed (their designs are small and re-scaled), but
//! QR is exposed for callers fitting wider or worse-conditioned models, and
//! the property tests cross-check the two solvers against each other.

use crate::{LinalgError, Matrix};

/// Least squares via Householder QR: finds `beta` minimizing
/// `‖X·beta − y‖²`.
///
/// More numerically robust than [`crate::lstsq`] (no condition-number
/// squaring), at roughly twice the flops. Rank-deficient designs are
/// detected and rejected rather than silently regularized.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty design,
/// [`LinalgError::ShapeMismatch`] if `y.len() != x.rows()` or the system is
/// underdetermined (`rows < cols`), and [`LinalgError::Singular`] for
/// rank-deficient designs.
///
/// # Example
///
/// ```
/// use mtperf_linalg::{lstsq_qr, Matrix};
///
/// let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
/// let beta = lstsq_qr(&x, &[1.0, 3.0, 5.0]).unwrap();
/// assert!((beta[0] - 1.0).abs() < 1e-12);
/// assert!((beta[1] - 2.0).abs() < 1e-12);
/// ```
pub fn lstsq_qr(x: &Matrix, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let (n, p) = x.shape();
    if n == 0 || p == 0 {
        return Err(LinalgError::Empty);
    }
    if y.len() != n || n < p {
        return Err(LinalgError::ShapeMismatch {
            left: x.shape(),
            right: (y.len(), 1),
            op: "lstsq_qr",
        });
    }
    // Work on copies: R overwrites `a`, Qᵀy overwrites `b`.
    let mut a = x.clone();
    let mut b = y.to_vec();
    let scale = a.max_abs().max(1.0);

    for k in 0..p {
        // Householder vector for column k below the diagonal.
        let mut norm = 0.0;
        for i in k..n {
            norm += a[(i, k)] * a[(i, k)];
        }
        let norm = norm.sqrt();
        if norm <= scale * 1e-13 {
            return Err(LinalgError::Singular);
        }
        let alpha = if a[(k, k)] >= 0.0 { -norm } else { norm };
        // v = x_k - alpha * e_k (stored temporarily).
        let mut v = vec![0.0; n - k];
        v[0] = a[(k, k)] - alpha;
        for i in (k + 1)..n {
            v[i - k] = a[(i, k)];
        }
        let vtv: f64 = v.iter().map(|t| t * t).sum();
        if vtv <= 0.0 {
            // Column already triangular here.
            continue;
        }
        // Apply H = I - 2 v vᵀ / (vᵀv) to the remaining columns and to b.
        for j in k..p {
            let mut dot = 0.0;
            for i in k..n {
                dot += v[i - k] * a[(i, j)];
            }
            let f = 2.0 * dot / vtv;
            for i in k..n {
                a[(i, j)] -= f * v[i - k];
            }
        }
        let mut dot = 0.0;
        for i in k..n {
            dot += v[i - k] * b[i];
        }
        let f = 2.0 * dot / vtv;
        for i in k..n {
            b[i] -= f * v[i - k];
        }
        // Enforce exact triangularity for the solved column.
        a[(k, k)] = alpha;
        for i in (k + 1)..n {
            a[(i, k)] = 0.0;
        }
    }

    // Back-substitute R beta = (Qᵀy)[..p].
    let mut beta = vec![0.0; p];
    for i in (0..p).rev() {
        let mut s = b[i];
        for j in (i + 1)..p {
            s -= a[(i, j)] * beta[j];
        }
        let d = a[(i, i)];
        if d.abs() <= scale * 1e-13 {
            return Err(LinalgError::Singular);
        }
        beta[i] = s / d;
    }
    Ok(beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstsq;

    #[test]
    fn exact_line() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
        let beta = lstsq_qr(&x, &[1.0, 3.0, 5.0]).unwrap();
        assert!((beta[0] - 1.0).abs() < 1e-12);
        assert!((beta[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_normal_equations_on_well_conditioned_data() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![1.0, i as f64, ((i * 7) % 5) as f64])
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs).unwrap();
        let y: Vec<f64> = (0..20).map(|i| 2.0 + 0.5 * i as f64).collect();
        let qr = lstsq_qr(&x, &y).unwrap();
        let ne = lstsq(&x, &y).unwrap();
        for (a, b) in qr.iter().zip(&ne) {
            assert!((a - b).abs() < 1e-8, "{qr:?} vs {ne:?}");
        }
    }

    #[test]
    fn more_robust_than_normal_equations_when_ill_conditioned() {
        // Columns nearly collinear: kappa^2 hurts the normal equations.
        let eps = 1e-7;
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                let t = i as f64;
                vec![1.0, t, t + eps * (i % 3) as f64]
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs).unwrap();
        // Target generated by the nearly-degenerate combination.
        let y: Vec<f64> = rows.iter().map(|r| r[1] - r[2]).collect();
        let qr = lstsq_qr(&x, &y).unwrap();
        // Residual of the QR fit must be tiny even here.
        let yhat = x.matvec(&qr).unwrap();
        let resid: f64 = y
            .iter()
            .zip(&yhat)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(resid < 1e-6, "residual = {resid}");
    }

    #[test]
    fn rejects_rank_deficiency() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        assert_eq!(
            lstsq_qr(&x, &[1.0, 2.0, 3.0]).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn rejects_bad_shapes() {
        let x = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        // Underdetermined (1 row, 2 cols).
        assert!(matches!(
            lstsq_qr(&x, &[1.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        let ok = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        assert!(matches!(
            lstsq_qr(&ok, &[1.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        let empty = Matrix::zeros(0, 0);
        assert_eq!(lstsq_qr(&empty, &[]).unwrap_err(), LinalgError::Empty);
    }
}
