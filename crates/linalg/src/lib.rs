//! Dense linear algebra and statistics substrate for `mtperf`.
//!
//! The model-tree learner ([`mtperf-mtree`]) and the baseline regressors
//! ([`mtperf-baselines`]) need a small, dependable numerical core: a dense
//! matrix type, least-squares solvers that stay stable on the rank-deficient
//! design matrices produced by near-constant hardware-event columns, and the
//! summary statistics (mean, variance, correlation) used by the split
//! criterion and the evaluation metrics.
//!
//! Everything here is deliberately self-contained: no BLAS, no external
//! numerics crates, `f64` throughout.
//!
//! # Example
//!
//! ```
//! use mtperf_linalg::{Matrix, lstsq};
//!
//! // Fit y = 1 + 2x over three points.
//! let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
//! let y = [1.0, 3.0, 5.0];
//! let beta = lstsq(&x, &y).unwrap();
//! assert!((beta[0] - 1.0).abs() < 1e-9);
//! assert!((beta[1] - 2.0).abs() < 1e-9);
//! ```
//!
//! [`mtperf-mtree`]: https://docs.rs/mtperf-mtree
//! [`mtperf-baselines`]: https://docs.rs/mtperf-baselines

// `deny`, not `forbid`: the persistent worker pool (`pool.rs`) contains
// the workspace's one carefully-scoped unsafe cell (type-erased chunk
// handoff to persistent threads, rayon-style). Every other module — and
// every other library crate — remains free of `unsafe` with no allows.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod matrix;
pub mod parallel;
mod pool;
mod qr;
mod solve;
pub mod stats;

pub use error::LinalgError;
pub use matrix::Matrix;
pub use parallel::{try_par_fill, try_par_map, try_par_map_cancel, CancelToken, Parallelism};
pub use qr::lstsq_qr;
pub use solve::{cholesky, cholesky_solve, lstsq, lstsq_ridge, solve_lower, solve_upper};
