//! Training parameters for M5'.

use mtperf_linalg::Parallelism;
use serde::{de, Deserialize, Serialize, Value};

use crate::MtreeError;

/// Parameters controlling M5' tree construction.
///
/// Defaults follow WEKA's `M5P`: minimum of 4 instances per leaf, split
/// abandoned when a subset's standard deviation falls below 5 % of the
/// training set's, pruning and smoothing enabled. The paper determined
/// experimentally that **430** instances per leaf suited its dataset; pass
/// that via [`M5Params::with_min_instances`] when reproducing its tree.
///
/// # Example
///
/// ```
/// use mtperf_mtree::M5Params;
///
/// let p = M5Params::default()
///     .with_min_instances(430)
///     .with_smoothing(false);
/// assert_eq!(p.min_instances(), 430);
/// assert!(!p.smoothing());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct M5Params {
    min_instances: usize,
    sd_fraction: f64,
    prune: bool,
    smoothing: bool,
    smoothing_k: f64,
    max_depth: Option<usize>,
    parallelism: Parallelism,
}

impl M5Params {
    /// Minimum number of training instances in a leaf (pre-pruning).
    pub fn min_instances(&self) -> usize {
        self.min_instances
    }

    /// Splitting stops when a subset's target standard deviation is below
    /// this fraction of the root's.
    pub fn sd_fraction(&self) -> f64 {
        self.sd_fraction
    }

    /// Whether bottom-up error pruning runs after growth.
    pub fn prune(&self) -> bool {
        self.prune
    }

    /// Whether leaf predictions are smoothed along the root path.
    pub fn smoothing(&self) -> bool {
        self.smoothing
    }

    /// The smoothing constant `k` in `p' = (n·p + k·q)/(n + k)`.
    pub fn smoothing_k(&self) -> f64 {
        self.smoothing_k
    }

    /// Optional hard depth limit (mostly for tests and ablations).
    pub fn max_depth(&self) -> Option<usize> {
        self.max_depth
    }

    /// Thread budget for the split search. Any setting produces bit-identical
    /// trees; it only changes wall-clock time.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Sets the minimum instances per leaf.
    pub fn with_min_instances(mut self, n: usize) -> Self {
        self.min_instances = n;
        self
    }

    /// Sets the standard-deviation stopping fraction.
    pub fn with_sd_fraction(mut self, f: f64) -> Self {
        self.sd_fraction = f;
        self
    }

    /// Enables or disables pruning.
    pub fn with_prune(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Enables or disables smoothing.
    pub fn with_smoothing(mut self, smoothing: bool) -> Self {
        self.smoothing = smoothing;
        self
    }

    /// Sets the smoothing constant.
    pub fn with_smoothing_k(mut self, k: f64) -> Self {
        self.smoothing_k = k;
        self
    }

    /// Sets a hard depth limit.
    pub fn with_max_depth(mut self, depth: Option<usize>) -> Self {
        self.max_depth = depth;
        self
    }

    /// Sets the thread budget for the split search.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Validates the parameter combination.
    ///
    /// # Errors
    ///
    /// Returns [`MtreeError::BadParams`] when a field is out of range.
    pub fn validate(&self) -> Result<(), MtreeError> {
        if self.min_instances == 0 {
            return Err(MtreeError::BadParams("min_instances must be >= 1".into()));
        }
        if !(0.0..1.0).contains(&self.sd_fraction) {
            return Err(MtreeError::BadParams(
                "sd_fraction must be in [0, 1)".into(),
            ));
        }
        if !self.smoothing_k.is_finite() || self.smoothing_k < 0.0 {
            return Err(MtreeError::BadParams(
                "smoothing_k must be finite and non-negative".into(),
            ));
        }
        if self.max_depth == Some(0) {
            return Err(MtreeError::BadParams("max_depth must be >= 1".into()));
        }
        Ok(())
    }
}

impl Default for M5Params {
    fn default() -> Self {
        M5Params {
            min_instances: 4,
            sd_fraction: 0.05,
            prune: true,
            smoothing: true,
            smoothing_k: 15.0,
            max_depth: None,
            parallelism: Parallelism::default(),
        }
    }
}

// Manual serde impls: `parallelism` is an execution-resource knob, not a
// model property — it never changes what gets learned — so it is NOT
// serialized (saved models stay byte-identical across thread budgets) and
// is optional on the way back in (older or foreign blobs that do carry the
// field still load; absent means Auto).

impl Serialize for M5Params {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            (
                "min_instances".to_string(),
                Serialize::serialize(&self.min_instances),
            ),
            (
                "sd_fraction".to_string(),
                Serialize::serialize(&self.sd_fraction),
            ),
            ("prune".to_string(), Serialize::serialize(&self.prune)),
            (
                "smoothing".to_string(),
                Serialize::serialize(&self.smoothing),
            ),
            (
                "smoothing_k".to_string(),
                Serialize::serialize(&self.smoothing_k),
            ),
            (
                "max_depth".to_string(),
                Serialize::serialize(&self.max_depth),
            ),
        ])
    }
}

impl Deserialize for M5Params {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, de::Error> {
            T::deserialize(value.get_field(name).unwrap_or(&Value::Null))
                .map_err(|e| e.context(name).context("M5Params"))
        }
        if value.as_object().is_none() {
            return Err(de::Error::mismatch("object", value).context("M5Params"));
        }
        let parallelism = match value.get_field("parallelism") {
            None | Some(Value::Null) => Parallelism::default(),
            Some(v) => {
                let text: String = String::deserialize(v)
                    .map_err(|e| e.context("parallelism").context("M5Params"))?;
                text.parse().map_err(|e: String| {
                    de::Error::custom(e)
                        .context("parallelism")
                        .context("M5Params")
                })?
            }
        };
        Ok(M5Params {
            min_instances: field(value, "min_instances")?,
            sd_fraction: field(value, "sd_fraction")?,
            prune: field(value, "prune")?,
            smoothing: field(value, "smoothing")?,
            smoothing_k: field(value, "smoothing_k")?,
            max_depth: field(value, "max_depth")?,
            parallelism,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_weka() {
        let p = M5Params::default();
        assert_eq!(p.min_instances(), 4);
        assert!((p.sd_fraction() - 0.05).abs() < 1e-12);
        assert!(p.prune());
        assert!(p.smoothing());
        assert!((p.smoothing_k() - 15.0).abs() < 1e-12);
        assert_eq!(p.max_depth(), None);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn builder_chains() {
        let p = M5Params::default()
            .with_min_instances(430)
            .with_sd_fraction(0.01)
            .with_prune(false)
            .with_smoothing(false)
            .with_smoothing_k(10.0)
            .with_max_depth(Some(3));
        assert_eq!(p.min_instances(), 430);
        assert_eq!(p.max_depth(), Some(3));
        assert!(!p.prune());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(M5Params::default()
            .with_min_instances(0)
            .validate()
            .is_err());
        assert!(M5Params::default()
            .with_sd_fraction(1.5)
            .validate()
            .is_err());
        assert!(M5Params::default()
            .with_smoothing_k(-1.0)
            .validate()
            .is_err());
        assert!(M5Params::default()
            .with_max_depth(Some(0))
            .validate()
            .is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let p = M5Params::default()
            .with_min_instances(99)
            .with_parallelism(Parallelism::Fixed(4));
        let json = serde_json::to_string(&p).unwrap();
        // The thread budget is an execution knob, not a model property: it
        // must not leak into the serialized form...
        assert!(!json.contains("parallelism"), "{json}");
        let back: M5Params = serde_json::from_str(&json).unwrap();
        // ...so it comes back as the default while everything else holds.
        assert_eq!(back.parallelism(), Parallelism::Auto);
        assert_eq!(back, p.with_parallelism(Parallelism::Auto));
    }

    #[test]
    fn deserializes_blobs_with_explicit_parallelism_field() {
        // Blobs written by builds that did serialize the field still load.
        let json = r#"{
            "min_instances": 4,
            "sd_fraction": 0.05,
            "prune": true,
            "smoothing": true,
            "smoothing_k": 15.0,
            "max_depth": null,
            "parallelism": "6"
        }"#;
        let p: M5Params = serde_json::from_str(json).unwrap();
        assert_eq!(p.parallelism(), Parallelism::Fixed(6));
        assert!(serde_json::from_str::<M5Params>(&json.replace("\"6\"", "\"minus-one\"")).is_err());
    }

    #[test]
    fn deserializes_blobs_without_parallelism_field() {
        // Parameter JSON written before the field existed.
        let json = r#"{
            "min_instances": 4,
            "sd_fraction": 0.05,
            "prune": true,
            "smoothing": true,
            "smoothing_k": 15.0,
            "max_depth": null
        }"#;
        let p: M5Params = serde_json::from_str(json).unwrap();
        assert_eq!(p.parallelism(), Parallelism::Auto);
        assert_eq!(p.min_instances(), 4);
    }
}
