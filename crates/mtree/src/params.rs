//! Training parameters for M5'.

use serde::{Deserialize, Serialize};

use crate::MtreeError;

/// Parameters controlling M5' tree construction.
///
/// Defaults follow WEKA's `M5P`: minimum of 4 instances per leaf, split
/// abandoned when a subset's standard deviation falls below 5 % of the
/// training set's, pruning and smoothing enabled. The paper determined
/// experimentally that **430** instances per leaf suited its dataset; pass
/// that via [`M5Params::with_min_instances`] when reproducing its tree.
///
/// # Example
///
/// ```
/// use mtperf_mtree::M5Params;
///
/// let p = M5Params::default()
///     .with_min_instances(430)
///     .with_smoothing(false);
/// assert_eq!(p.min_instances(), 430);
/// assert!(!p.smoothing());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct M5Params {
    min_instances: usize,
    sd_fraction: f64,
    prune: bool,
    smoothing: bool,
    smoothing_k: f64,
    max_depth: Option<usize>,
}

impl M5Params {
    /// Minimum number of training instances in a leaf (pre-pruning).
    pub fn min_instances(&self) -> usize {
        self.min_instances
    }

    /// Splitting stops when a subset's target standard deviation is below
    /// this fraction of the root's.
    pub fn sd_fraction(&self) -> f64 {
        self.sd_fraction
    }

    /// Whether bottom-up error pruning runs after growth.
    pub fn prune(&self) -> bool {
        self.prune
    }

    /// Whether leaf predictions are smoothed along the root path.
    pub fn smoothing(&self) -> bool {
        self.smoothing
    }

    /// The smoothing constant `k` in `p' = (n·p + k·q)/(n + k)`.
    pub fn smoothing_k(&self) -> f64 {
        self.smoothing_k
    }

    /// Optional hard depth limit (mostly for tests and ablations).
    pub fn max_depth(&self) -> Option<usize> {
        self.max_depth
    }

    /// Sets the minimum instances per leaf.
    pub fn with_min_instances(mut self, n: usize) -> Self {
        self.min_instances = n;
        self
    }

    /// Sets the standard-deviation stopping fraction.
    pub fn with_sd_fraction(mut self, f: f64) -> Self {
        self.sd_fraction = f;
        self
    }

    /// Enables or disables pruning.
    pub fn with_prune(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Enables or disables smoothing.
    pub fn with_smoothing(mut self, smoothing: bool) -> Self {
        self.smoothing = smoothing;
        self
    }

    /// Sets the smoothing constant.
    pub fn with_smoothing_k(mut self, k: f64) -> Self {
        self.smoothing_k = k;
        self
    }

    /// Sets a hard depth limit.
    pub fn with_max_depth(mut self, depth: Option<usize>) -> Self {
        self.max_depth = depth;
        self
    }

    /// Validates the parameter combination.
    ///
    /// # Errors
    ///
    /// Returns [`MtreeError::BadParams`] when a field is out of range.
    pub fn validate(&self) -> Result<(), MtreeError> {
        if self.min_instances == 0 {
            return Err(MtreeError::BadParams("min_instances must be >= 1".into()));
        }
        if !(0.0..1.0).contains(&self.sd_fraction) {
            return Err(MtreeError::BadParams(
                "sd_fraction must be in [0, 1)".into(),
            ));
        }
        if !self.smoothing_k.is_finite() || self.smoothing_k < 0.0 {
            return Err(MtreeError::BadParams(
                "smoothing_k must be finite and non-negative".into(),
            ));
        }
        if self.max_depth == Some(0) {
            return Err(MtreeError::BadParams("max_depth must be >= 1".into()));
        }
        Ok(())
    }
}

impl Default for M5Params {
    fn default() -> Self {
        M5Params {
            min_instances: 4,
            sd_fraction: 0.05,
            prune: true,
            smoothing: true,
            smoothing_k: 15.0,
            max_depth: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_weka() {
        let p = M5Params::default();
        assert_eq!(p.min_instances(), 4);
        assert!((p.sd_fraction() - 0.05).abs() < 1e-12);
        assert!(p.prune());
        assert!(p.smoothing());
        assert!((p.smoothing_k() - 15.0).abs() < 1e-12);
        assert_eq!(p.max_depth(), None);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn builder_chains() {
        let p = M5Params::default()
            .with_min_instances(430)
            .with_sd_fraction(0.01)
            .with_prune(false)
            .with_smoothing(false)
            .with_smoothing_k(10.0)
            .with_max_depth(Some(3));
        assert_eq!(p.min_instances(), 430);
        assert_eq!(p.max_depth(), Some(3));
        assert!(!p.prune());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(M5Params::default()
            .with_min_instances(0)
            .validate()
            .is_err());
        assert!(M5Params::default().with_sd_fraction(1.5).validate().is_err());
        assert!(M5Params::default()
            .with_smoothing_k(-1.0)
            .validate()
            .is_err());
        assert!(M5Params::default()
            .with_max_depth(Some(0))
            .validate()
            .is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let p = M5Params::default().with_min_instances(99);
        let json = serde_json::to_string(&p).unwrap();
        let back: M5Params = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
