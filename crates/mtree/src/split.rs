//! Split search: the standard-deviation-reduction (SDR) criterion.

use crate::Dataset;

/// A candidate binary split: instances with `attr <= threshold` go left.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Split {
    /// Attribute (column) index tested.
    pub attr: usize,
    /// Split threshold (midpoint between adjacent attribute values).
    pub threshold: f64,
    /// Standard-deviation reduction achieved.
    pub sdr: f64,
}

/// Population standard deviation from sums: `sqrt(E[y²] − E[y]²)`.
fn sd_from_sums(sum: f64, sum_sq: f64, n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let mean = sum / n;
    (sum_sq / n - mean * mean).max(0.0).sqrt()
}

/// Finds the best split of the instances in `idx` over all attributes.
///
/// Implements M5's criterion: maximize
/// `SDR = sd(S) − Σᵢ |Sᵢ|/|S| · sd(Sᵢ)` over all `(attribute, threshold)`
/// pairs, where thresholds are midpoints between consecutive distinct
/// attribute values. Splits leaving either side with fewer than
/// `min_instances` are not considered.
///
/// Returns `None` when no admissible split has positive SDR (constant
/// attributes, too few instances, or a constant target).
///
/// # Example
///
/// ```
/// use mtperf_mtree::{best_split, Dataset};
///
/// let d = Dataset::from_rows(
///     vec!["x".into()],
///     &[[0.0], [1.0], [2.0], [3.0]],
///     &[0.0, 0.0, 10.0, 10.0],
/// ).unwrap();
/// let s = best_split(&d, &[0, 1, 2, 3], 1).unwrap();
/// assert_eq!(s.attr, 0);
/// assert!((s.threshold - 1.5).abs() < 1e-12);
/// ```
pub fn best_split(data: &Dataset, idx: &[usize], min_instances: usize) -> Option<Split> {
    let n = idx.len();
    if n < 2 * min_instances.max(1) {
        return None;
    }
    let nf = n as f64;
    let (sum, sum_sq) = idx.iter().fold((0.0, 0.0), |(s, q), &i| {
        let y = data.target(i);
        (s + y, q + y * y)
    });
    let sd_total = sd_from_sums(sum, sum_sq, nf);
    if sd_total <= 0.0 {
        return None;
    }

    let mut best: Option<Split> = None;
    let mut order: Vec<usize> = idx.to_vec();
    for attr in 0..data.n_attrs() {
        let col = data.column(attr);
        order.sort_unstable_by(|&a, &b| {
            col[a].partial_cmp(&col[b]).expect("finite attribute values")
        });
        // Scan boundaries between consecutive instances with prefix sums.
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for (k, &i) in order.iter().enumerate().take(n - 1) {
            let y = data.target(i);
            left_sum += y;
            left_sq += y * y;
            let n_left = k + 1;
            let n_right = n - n_left;
            if n_left < min_instances || n_right < min_instances {
                continue;
            }
            let v = col[i];
            let v_next = col[order[k + 1]];
            if v == v_next {
                continue; // not a boundary between distinct values
            }
            let sd_left = sd_from_sums(left_sum, left_sq, n_left as f64);
            let sd_right =
                sd_from_sums(sum - left_sum, sum_sq - left_sq, n_right as f64);
            let sdr = sd_total
                - (n_left as f64 / nf) * sd_left
                - (n_right as f64 / nf) * sd_right;
            if sdr > best.map_or(0.0, |b| b.sdr) {
                best = Some(Split {
                    attr,
                    threshold: (v + v_next) / 2.0,
                    sdr,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> Dataset {
        // Perfect step on x at 2.5; y independent of z.
        let rows: Vec<[f64; 2]> = (0..6).map(|i| [i as f64, (i % 2) as f64]).collect();
        let ys = [1.0, 1.0, 1.0, 9.0, 9.0, 9.0];
        Dataset::from_rows(vec!["x".into(), "z".into()], &rows, &ys).unwrap()
    }

    #[test]
    fn finds_the_step() {
        let d = step_data();
        let idx: Vec<usize> = (0..6).collect();
        let s = best_split(&d, &idx, 1).unwrap();
        assert_eq!(s.attr, 0);
        assert!((s.threshold - 2.5).abs() < 1e-12);
        // SDR of a perfect split equals sd(total): both sides become
        // zero-variance.
        let sd_total = mtperf_linalg::stats::std_dev(&ys());
        assert!((s.sdr - sd_total).abs() < 1e-9);

        fn ys() -> Vec<f64> {
            vec![1.0, 1.0, 1.0, 9.0, 9.0, 9.0]
        }
    }

    #[test]
    fn respects_min_instances() {
        let d = step_data();
        let idx: Vec<usize> = (0..6).collect();
        // min 3 allows only the 3|3 boundary.
        let s = best_split(&d, &idx, 3).unwrap();
        assert!((s.threshold - 2.5).abs() < 1e-12);
        // min 4 admits nothing.
        assert!(best_split(&d, &idx, 4).is_none());
    }

    #[test]
    fn constant_target_has_no_split() {
        let rows: Vec<[f64; 1]> = (0..4).map(|i| [i as f64]).collect();
        let d = Dataset::from_rows(vec!["x".into()], &rows, &[5.0; 4]).unwrap();
        assert!(best_split(&d, &(0..4).collect::<Vec<_>>(), 1).is_none());
    }

    #[test]
    fn constant_attribute_has_no_split() {
        let rows = [[1.0], [1.0], [1.0], [1.0]];
        let d =
            Dataset::from_rows(vec!["x".into()], &rows, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(best_split(&d, &(0..4).collect::<Vec<_>>(), 1).is_none());
    }

    #[test]
    fn threshold_is_midpoint_of_distinct_values() {
        let rows = [[0.0], [0.0], [4.0], [4.0]];
        let d =
            Dataset::from_rows(vec!["x".into()], &rows, &[0.0, 0.0, 8.0, 8.0]).unwrap();
        let s = best_split(&d, &(0..4).collect::<Vec<_>>(), 1).unwrap();
        assert!((s.threshold - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_values_never_split_apart() {
        // All x equal except one; boundary must fall between distinct values.
        let rows = [[1.0], [1.0], [1.0], [2.0]];
        let d =
            Dataset::from_rows(vec!["x".into()], &rows, &[0.0, 0.0, 0.0, 10.0]).unwrap();
        let s = best_split(&d, &(0..4).collect::<Vec<_>>(), 1).unwrap();
        assert!((s.threshold - 1.5).abs() < 1e-12);
    }

    #[test]
    fn picks_most_discriminative_attribute() {
        // x separates targets perfectly; z only partially.
        let rows = [
            [0.0, 0.0],
            [1.0, 1.0],
            [2.0, 0.0],
            [3.0, 1.0],
        ];
        let d = Dataset::from_rows(
            vec!["x".into(), "z".into()],
            &rows,
            &[0.0, 0.0, 10.0, 10.0],
        )
        .unwrap();
        let s = best_split(&d, &(0..4).collect::<Vec<_>>(), 1).unwrap();
        assert_eq!(s.attr, 0);
    }

    #[test]
    fn works_on_subsets() {
        let d = step_data();
        // Subset covering only the low half: constant target, no split.
        assert!(best_split(&d, &[0, 1, 2], 1).is_none());
    }

    #[test]
    fn too_few_instances() {
        let d = step_data();
        assert!(best_split(&d, &[0], 1).is_none());
        assert!(best_split(&d, &[0, 5], 2).is_none());
    }
}
