//! Split search: the standard-deviation-reduction (SDR) criterion.

use mtperf_linalg::parallel::{par_map, Parallelism};

use crate::Dataset;

/// A candidate binary split: instances with `attr <= threshold` go left.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Split {
    /// Attribute (column) index tested.
    pub attr: usize,
    /// Split threshold (midpoint between adjacent attribute values, clamped
    /// into `[v, v_next)` so it always separates them).
    pub threshold: f64,
    /// Standard-deviation reduction achieved.
    pub sdr: f64,
}

/// Population standard deviation from sums: `sqrt(E[y²] − E[y]²)`.
///
/// Callers pass sums of **mean-shifted** targets (see [`best_split_with`]),
/// which keeps `E[y²]` and `E[y]²` the same magnitude and avoids the
/// catastrophic cancellation raw sums suffer when targets sit far from zero
/// (e.g. `y ≈ 1e9` with spread `1e-3`).
fn sd_from_sums(sum: f64, sum_sq: f64, n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let mean = sum / n;
    (sum_sq / n - mean * mean).max(0.0).sqrt()
}

/// Midpoint of two adjacent attribute values, clamped into `[v, v_next)`.
///
/// `(v + v_next) / 2` can round **up to exactly `v_next`** when the two
/// values are adjacent floats (ties-to-even), which would send both
/// instances to the same side and desynchronize the split counts from the
/// SDR bookkeeping. Halving before adding also avoids overflow near
/// `f64::MAX`.
fn split_threshold(v: f64, v_next: f64) -> f64 {
    debug_assert!(v < v_next);
    let mid = v / 2.0 + v_next / 2.0;
    if mid >= v_next {
        v
    } else if mid < v {
        // Subnormal halving can round below `v`; clamp back.
        v
    } else {
        mid
    }
}

/// Per-attribute boundary scan state, shared by every attribute's search.
struct ScanContext<'a> {
    data: &'a Dataset,
    idx: &'a [usize],
    min_instances: usize,
    /// Mean of the subset's targets; targets are shifted by this before
    /// any sum is formed.
    target_mean: f64,
    /// Σ(y − ȳ) over the subset (≈ 0 up to rounding).
    sum: f64,
    /// Σ(y − ȳ)² over the subset.
    sum_sq: f64,
    sd_total: f64,
}

/// Scans one attribute's boundaries and returns its best split (if any has
/// positive SDR) plus the number of admissible boundaries it evaluated.
///
/// Instances are ordered by `(value, instance index)` — a canonical total
/// order — so the result depends only on the subset's contents, never on the
/// caller's index order or on which thread runs the scan.
fn best_split_for_attr(ctx: &ScanContext<'_>, attr: usize) -> (Option<Split>, u64) {
    let n = ctx.idx.len();
    let col = ctx.data.column(attr);
    let mut order: Vec<usize> = ctx.idx.to_vec();
    order.sort_unstable_by(|&a, &b| col[a].total_cmp(&col[b]).then(a.cmp(&b)));

    let nf = n as f64;
    let mut best: Option<Split> = None;
    let mut evaluated = 0u64;
    let mut left_sum = 0.0;
    let mut left_sq = 0.0;
    for (k, &i) in order.iter().enumerate().take(n - 1) {
        let y = ctx.data.target(i) - ctx.target_mean;
        left_sum += y;
        left_sq += y * y;
        let n_left = k + 1;
        let n_right = n - n_left;
        if n_left < ctx.min_instances || n_right < ctx.min_instances {
            continue;
        }
        let v = col[i];
        let v_next = col[order[k + 1]];
        if v == v_next {
            continue; // not a boundary between distinct values
        }
        evaluated += 1;
        let sd_left = sd_from_sums(left_sum, left_sq, n_left as f64);
        let sd_right = sd_from_sums(ctx.sum - left_sum, ctx.sum_sq - left_sq, n_right as f64);
        let sdr = ctx.sd_total - (n_left as f64 / nf) * sd_left - (n_right as f64 / nf) * sd_right;
        // Strict `>`: the earliest admissible boundary wins ties.
        if sdr > best.map_or(0.0, |b| b.sdr) {
            best = Some(Split {
                attr,
                threshold: split_threshold(v, v_next),
                sdr,
            });
        }
    }
    (best, evaluated)
}

/// Finds the best split of the instances in `idx` over all attributes,
/// scanning serially.
///
/// Implements M5's criterion: maximize
/// `SDR = sd(S) − Σᵢ |Sᵢ|/|S| · sd(Sᵢ)` over all `(attribute, threshold)`
/// pairs, where thresholds are midpoints between consecutive distinct
/// attribute values. Splits leaving either side with fewer than
/// `min_instances` are not considered.
///
/// Returns `None` when no admissible split has positive SDR (constant
/// attributes, too few instances, or a constant target).
///
/// # Example
///
/// ```
/// use mtperf_mtree::{best_split, Dataset};
///
/// let d = Dataset::from_rows(
///     vec!["x".into()],
///     &[[0.0], [1.0], [2.0], [3.0]],
///     &[0.0, 0.0, 10.0, 10.0],
/// ).unwrap();
/// let s = best_split(&d, &[0, 1, 2, 3], 1).unwrap();
/// assert_eq!(s.attr, 0);
/// assert!((s.threshold - 1.5).abs() < 1e-12);
/// ```
pub fn best_split(data: &Dataset, idx: &[usize], min_instances: usize) -> Option<Split> {
    best_split_with(data, idx, min_instances, Parallelism::Off)
}

/// Finds the best split, scanning attributes with up to `par` threads.
///
/// Bit-identical to [`best_split`] at every thread count: each attribute's
/// scan is an independent computation over a canonically ordered copy of the
/// subset, and the per-attribute winners are reduced in ascending attribute
/// order with a strict comparison (ties go to the lowest attribute index),
/// exactly as a serial left-to-right sweep would.
pub fn best_split_with(
    data: &Dataset,
    idx: &[usize],
    min_instances: usize,
    par: Parallelism,
) -> Option<Split> {
    let n = idx.len();
    if n < 2 * min_instances.max(1) {
        return None;
    }
    // Center targets on the subset mean so the sum-based standard deviations
    // stay accurate for targets far from zero.
    let target_mean = idx.iter().map(|&i| data.target(i)).sum::<f64>() / n as f64;
    let (sum, sum_sq) = idx.iter().fold((0.0, 0.0), |(s, q), &i| {
        let y = data.target(i) - target_mean;
        (s + y, q + y * y)
    });
    let sd_total = sd_from_sums(sum, sum_sq, n as f64);
    if sd_total <= 0.0 {
        return None;
    }

    let ctx = ScanContext {
        data,
        idx,
        min_instances,
        target_mean,
        sum,
        sum_sq,
        sd_total,
    };
    let attrs: Vec<usize> = (0..data.n_attrs()).collect();
    let per_attr = par_map(par, &attrs, 1, |&attr| best_split_for_attr(&ctx, attr));

    mtperf_obs::add("mtree.split_searches", 1);
    mtperf_obs::add(
        "mtree.split_candidates",
        per_attr.iter().map(|(_, e)| e).sum(),
    );

    // Ascending-attribute reduce with strict `>`: lowest attr index wins ties.
    let mut best: Option<Split> = None;
    for (candidate, _) in per_attr {
        let Some(candidate) = candidate else { continue };
        if candidate.sdr > best.map_or(0.0, |b| b.sdr) {
            best = Some(candidate);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> Dataset {
        // Perfect step on x at 2.5; y independent of z.
        let rows: Vec<[f64; 2]> = (0..6).map(|i| [i as f64, (i % 2) as f64]).collect();
        let ys = [1.0, 1.0, 1.0, 9.0, 9.0, 9.0];
        Dataset::from_rows(vec!["x".into(), "z".into()], &rows, &ys).unwrap()
    }

    #[test]
    fn finds_the_step() {
        let d = step_data();
        let idx: Vec<usize> = (0..6).collect();
        let s = best_split(&d, &idx, 1).unwrap();
        assert_eq!(s.attr, 0);
        assert!((s.threshold - 2.5).abs() < 1e-12);
        // SDR of a perfect split equals sd(total): both sides become
        // zero-variance.
        let sd_total = mtperf_linalg::stats::std_dev(&ys());
        assert!((s.sdr - sd_total).abs() < 1e-9);

        fn ys() -> Vec<f64> {
            vec![1.0, 1.0, 1.0, 9.0, 9.0, 9.0]
        }
    }

    #[test]
    fn respects_min_instances() {
        let d = step_data();
        let idx: Vec<usize> = (0..6).collect();
        // min 3 allows only the 3|3 boundary.
        let s = best_split(&d, &idx, 3).unwrap();
        assert!((s.threshold - 2.5).abs() < 1e-12);
        // min 4 admits nothing.
        assert!(best_split(&d, &idx, 4).is_none());
    }

    #[test]
    fn constant_target_has_no_split() {
        let rows: Vec<[f64; 1]> = (0..4).map(|i| [i as f64]).collect();
        let d = Dataset::from_rows(vec!["x".into()], &rows, &[5.0; 4]).unwrap();
        assert!(best_split(&d, &(0..4).collect::<Vec<_>>(), 1).is_none());
    }

    #[test]
    fn constant_attribute_has_no_split() {
        let rows = [[1.0], [1.0], [1.0], [1.0]];
        let d = Dataset::from_rows(vec!["x".into()], &rows, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(best_split(&d, &(0..4).collect::<Vec<_>>(), 1).is_none());
    }

    #[test]
    fn threshold_is_midpoint_of_distinct_values() {
        let rows = [[0.0], [0.0], [4.0], [4.0]];
        let d = Dataset::from_rows(vec!["x".into()], &rows, &[0.0, 0.0, 8.0, 8.0]).unwrap();
        let s = best_split(&d, &(0..4).collect::<Vec<_>>(), 1).unwrap();
        assert!((s.threshold - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_values_never_split_apart() {
        // All x equal except one; boundary must fall between distinct values.
        let rows = [[1.0], [1.0], [1.0], [2.0]];
        let d = Dataset::from_rows(vec!["x".into()], &rows, &[0.0, 0.0, 0.0, 10.0]).unwrap();
        let s = best_split(&d, &(0..4).collect::<Vec<_>>(), 1).unwrap();
        assert!((s.threshold - 1.5).abs() < 1e-12);
    }

    #[test]
    fn picks_most_discriminative_attribute() {
        // x separates targets perfectly; z only partially.
        let rows = [[0.0, 0.0], [1.0, 1.0], [2.0, 0.0], [3.0, 1.0]];
        let d = Dataset::from_rows(vec!["x".into(), "z".into()], &rows, &[0.0, 0.0, 10.0, 10.0])
            .unwrap();
        let s = best_split(&d, &(0..4).collect::<Vec<_>>(), 1).unwrap();
        assert_eq!(s.attr, 0);
    }

    #[test]
    fn works_on_subsets() {
        let d = step_data();
        // Subset covering only the low half: constant target, no split.
        assert!(best_split(&d, &[0, 1, 2], 1).is_none());
    }

    #[test]
    fn too_few_instances() {
        let d = step_data();
        assert!(best_split(&d, &[0], 1).is_none());
        assert!(best_split(&d, &[0, 5], 2).is_none());
    }

    /// Regression: with adjacent floats, `(v + v_next) / 2` rounds up to
    /// exactly `v_next`, so a threshold of `v_next` with the `<=` partition
    /// rule would put BOTH values on the left — the split would not separate
    /// the pair the SDR bookkeeping assumed it did.
    #[test]
    fn threshold_between_adjacent_floats_separates_them() {
        let v = f64::from_bits(1.0f64.to_bits() + 1);
        let v_next = f64::from_bits(1.0f64.to_bits() + 2);
        // Midpoint of this pair rounds to v_next under ties-to-even.
        assert_eq!((v + v_next) / 2.0, v_next);

        let rows = [[v], [v], [v_next], [v_next]];
        let d = Dataset::from_rows(vec!["x".into()], &rows, &[0.0, 0.0, 8.0, 8.0]).unwrap();
        let s = best_split(&d, &(0..4).collect::<Vec<_>>(), 1).unwrap();
        assert!(
            s.threshold >= v && s.threshold < v_next,
            "threshold {} outside [v, v_next)",
            s.threshold
        );
        let col = d.column(0);
        let left = (0..4).filter(|&i| col[i] <= s.threshold).count();
        assert_eq!(left, 2, "split must separate the adjacent pair");
    }

    /// Regression: raw-sum variance suffers catastrophic cancellation when
    /// targets sit far from zero. Shifting targets by a huge constant leaves
    /// every SDR comparison intact, so the chosen split must not move.
    #[test]
    fn split_is_invariant_under_large_target_offsets() {
        let rows: Vec<[f64; 2]> = (0..12).map(|i| [i as f64, ((i * 7) % 5) as f64]).collect();
        let ys: Vec<f64> = (0..12)
            .map(|i| {
                if i < 5 {
                    1.0 + 0.001 * i as f64
                } else {
                    2.0 - 0.001 * i as f64
                }
            })
            .collect();
        let base = Dataset::from_rows(vec!["x".into(), "z".into()], &rows, &ys).unwrap();
        let s0 = best_split(&base, &(0..12).collect::<Vec<_>>(), 2).unwrap();

        for offset in [1e9, -1e9, 1e12] {
            let shifted_ys: Vec<f64> = ys.iter().map(|y| y + offset).collect();
            let shifted =
                Dataset::from_rows(vec!["x".into(), "z".into()], &rows, &shifted_ys).unwrap();
            let s = best_split(&shifted, &(0..12).collect::<Vec<_>>(), 2)
                .unwrap_or_else(|| panic!("offset {offset}: no split found"));
            assert_eq!(s.attr, s0.attr, "offset {offset}");
            assert_eq!(s.threshold, s0.threshold, "offset {offset}");
        }
    }

    /// The parallel attribute scan is bit-identical to the serial one at any
    /// thread count, including the tie-break toward the lowest attribute
    /// index (both attributes below carry an identical copy of x).
    #[test]
    fn parallel_scan_matches_serial_bit_for_bit() {
        let rows: Vec<[f64; 3]> = (0..40)
            .map(|i| {
                let x = (i as f64 * 0.37).sin() * 10.0;
                // b is near-constant jitter: never the best split.
                [x, x, (i as f64 * 0.11).cos() * 1e-3]
            })
            .collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| {
                if r[0] <= 0.0 {
                    1.0 + 0.05 * r[0]
                } else {
                    5.0 - 0.03 * r[0]
                }
            })
            .collect();
        let d = Dataset::from_rows(vec!["a".into(), "a2".into(), "b".into()], &rows, &ys).unwrap();
        let idx: Vec<usize> = (0..40).collect();
        let serial = best_split(&d, &idx, 2);
        for threads in [1, 2, 3, 8] {
            let parallel = best_split_with(&d, &idx, 2, Parallelism::Fixed(threads));
            assert_eq!(parallel, serial, "threads = {threads}");
        }
        // The duplicated column forces an exact SDR tie; attr 0 must win.
        assert_eq!(serial.unwrap().attr, 0);
    }

    /// The result must not depend on the caller's index order (the scan
    /// sorts canonically by value, then instance index).
    #[test]
    fn index_order_does_not_change_the_split() {
        let d = step_data();
        let forward: Vec<usize> = (0..6).collect();
        let backward: Vec<usize> = (0..6).rev().collect();
        let shuffled = vec![3, 0, 5, 2, 4, 1];
        let a = best_split(&d, &forward, 1);
        assert_eq!(best_split(&d, &backward, 1), a);
        assert_eq!(best_split(&d, &shuffled, 1), a);
    }
}
