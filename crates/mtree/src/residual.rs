//! Compositional residual learning (Concorde-style fusion).
//!
//! A cheap analytical model predicts most of the target from first
//! principles; the learner is only asked to fit what the analytical model
//! gets wrong. Concretely, the dataset carries the analytical prediction as
//! one of its columns (the *baseline attribute*), the wrapped learner is
//! trained on `target − baseline`, and prediction reconstructs
//! `learner(row) + row[baseline]`.
//!
//! # Bit-identity contract
//!
//! Reconstruction is a single `+` appended to the wrapped predictor's
//! output, applied identically on the scalar and batch paths. Therefore
//! [`ResidualPredictor::predict_batch`] is bit-identical to calling
//! [`ResidualPredictor::predict`] row by row whenever the wrapped
//! predictor's batch path is bit-identical to its scalar path (which the
//! model tree's compiled engine guarantees).

use mtperf_linalg::Matrix;

use crate::learner::{Learner, Predictor};
use crate::{Dataset, MtreeError};

/// Rewrites `data`'s targets as residuals against its `baseline_attr`
/// column (`target − row[baseline_attr]`), keeping every attribute column
/// unchanged. This is the training-side half of residual fusion; the
/// prediction-side half is [`ResidualPredictor`]'s reconstruction.
///
/// # Errors
///
/// [`MtreeError::AttributeOutOfRange`] when `baseline_attr` is not a column
/// of `data`; [`MtreeError::NonFiniteValue`] when a residual overflows to a
/// non-finite value (pathological baselines).
pub fn residual_dataset(data: &Dataset, baseline_attr: usize) -> Result<Dataset, MtreeError> {
    if baseline_attr >= data.n_attrs() {
        return Err(MtreeError::AttributeOutOfRange {
            attr: baseline_attr,
            n_attrs: data.n_attrs(),
        });
    }
    let baseline = data.column(baseline_attr);
    let residuals: Vec<f64> = data
        .targets()
        .iter()
        .zip(baseline)
        .map(|(&y, &b)| y - b)
        .collect();
    let columns: Vec<Vec<f64>> = (0..data.n_attrs())
        .map(|j| data.column(j).to_vec())
        .collect();
    Dataset::from_columns(data.attr_names().to_vec(), columns, residuals)
}

/// A [`Learner`] that fits its wrapped learner on the residual between the
/// target and a baseline column, and returns a reconstructing
/// [`ResidualPredictor`].
///
/// # Example
///
/// ```
/// use mtperf_mtree::{Dataset, Learner, M5Learner, ResidualLearner};
///
/// // Column 1 is an analytical estimate of the target; the tree only has
/// // to learn the remaining (here: constant 0.5) correction.
/// let rows: Vec<[f64; 2]> = (0..40).map(|i| [i as f64, 2.0 * i as f64]).collect();
/// let ys: Vec<f64> = rows.iter().map(|r| r[1] + 0.5).collect();
/// let d = Dataset::from_rows(vec!["x".into(), "an".into()], &rows, &ys).unwrap();
/// let model = ResidualLearner::new(M5Learner::default(), 1).fit(&d).unwrap();
/// assert!((model.predict(&[7.0, 14.0]) - 14.5).abs() < 0.2);
/// ```
pub struct ResidualLearner<L> {
    base: L,
    baseline_attr: usize,
    name: String,
}

impl<L: Learner> ResidualLearner<L> {
    /// Wraps `base` to learn residuals against column `baseline_attr`.
    pub fn new(base: L, baseline_attr: usize) -> Self {
        let name = format!("residual({})", base.name());
        ResidualLearner {
            base,
            baseline_attr,
            name,
        }
    }

    /// The wrapped learner.
    pub fn base(&self) -> &L {
        &self.base
    }

    /// The baseline (analytical-prediction) column index.
    pub fn baseline_attr(&self) -> usize {
        self.baseline_attr
    }
}

impl<L: Learner> Learner for ResidualLearner<L> {
    fn fit(&self, data: &Dataset) -> Result<Box<dyn Predictor>, MtreeError> {
        let residuals = residual_dataset(data, self.baseline_attr)?;
        let base = self.base.fit(&residuals)?;
        Ok(Box::new(ResidualPredictor {
            base,
            baseline_attr: self.baseline_attr,
        }))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A fitted residual model: the wrapped predictor's output plus the row's
/// baseline column (see the [module docs](self) for the contract).
pub struct ResidualPredictor {
    base: Box<dyn Predictor>,
    baseline_attr: usize,
}

impl ResidualPredictor {
    /// Wraps an already-fitted `base` predictor of residuals.
    pub fn new(base: Box<dyn Predictor>, baseline_attr: usize) -> Self {
        ResidualPredictor {
            base,
            baseline_attr,
        }
    }

    /// The baseline (analytical-prediction) column index.
    pub fn baseline_attr(&self) -> usize {
        self.baseline_attr
    }
}

impl Predictor for ResidualPredictor {
    fn predict(&self, row: &[f64]) -> f64 {
        self.base.predict(row) + row[self.baseline_attr]
    }

    /// Batch reconstruction: the wrapped batch prediction plus the baseline
    /// column, one `+` per row in row order — the exact operation
    /// [`ResidualPredictor::predict`] appends, so batch and scalar paths
    /// stay bit-identical.
    fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
        let mut out = self.base.predict_batch(rows);
        for (r, p) in out.iter_mut().enumerate() {
            *p += rows.row(r)[self.baseline_attr];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{M5Learner, M5Params};

    /// Targets = analytical baseline (column 2) + a piecewise residual the
    /// tree can learn from columns 0..1.
    fn fused_data(n: usize) -> Dataset {
        let mut rows: Vec<[f64; 3]> = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let a = (i % 7) as f64 * 0.1;
            let b = if i % 2 == 0 { 0.0 } else { 1.0 };
            let baseline = 1.0 + a;
            rows.push([a, b, baseline]);
            ys.push(baseline + 0.3 * b + 0.05 * a);
        }
        Dataset::from_rows(vec!["a".into(), "b".into(), "an".into()], &rows, &ys).unwrap()
    }

    #[test]
    fn residual_dataset_subtracts_baseline() {
        let d = fused_data(50);
        let r = residual_dataset(&d, 2).unwrap();
        assert_eq!(r.n_rows(), d.n_rows());
        assert_eq!(r.n_attrs(), d.n_attrs());
        for i in 0..d.n_rows() {
            assert_eq!(r.target(i), d.target(i) - d.value(i, 2));
            assert_eq!(r.row(i), d.row(i));
        }
    }

    #[test]
    fn residual_dataset_rejects_bad_column() {
        let d = fused_data(10);
        assert_eq!(
            residual_dataset(&d, 3).unwrap_err(),
            MtreeError::AttributeOutOfRange {
                attr: 3,
                n_attrs: 3
            }
        );
    }

    #[test]
    fn fit_reconstructs_the_target_scale() {
        let d = fused_data(120);
        let learner = ResidualLearner::new(
            M5Learner::new(M5Params::default().with_min_instances(10)),
            2,
        );
        assert_eq!(learner.name(), "residual(M5' model tree)");
        assert_eq!(learner.baseline_attr(), 2);
        let model = learner.fit(&d).unwrap();
        // Predictions land near the *original* targets, not the residuals.
        let mut mae = 0.0;
        for i in 0..d.n_rows() {
            mae += (model.predict(&d.row(i)) - d.target(i)).abs();
        }
        mae /= d.n_rows() as f64;
        assert!(mae < 0.1, "mae = {mae}");
    }

    #[test]
    fn batch_matches_scalar_bitwise() {
        let d = fused_data(120);
        let model = ResidualLearner::new(
            M5Learner::new(M5Params::default().with_min_instances(10)),
            2,
        )
        .fit(&d)
        .unwrap();
        let m = d.to_matrix();
        let batch = model.predict_batch(&m);
        assert_eq!(batch.len(), d.n_rows());
        for (i, b) in batch.iter().enumerate() {
            assert_eq!(b.to_bits(), model.predict(&d.row(i)).to_bits(), "row {i}");
        }
    }

    #[test]
    fn fit_propagates_baseline_errors() {
        let d = fused_data(20);
        let learner = ResidualLearner::new(M5Learner::default(), 9);
        let err = match learner.fit(&d) {
            Err(e) => e,
            Ok(_) => panic!("fit must fail on an out-of-range baseline"),
        };
        assert!(matches!(
            err,
            MtreeError::AttributeOutOfRange { attr: 9, .. }
        ));
    }
}
