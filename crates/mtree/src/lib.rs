//! M5' model trees, implemented from scratch.
//!
//! This crate is the primary contribution of the reproduced paper (*Using
//! Model Trees for Computer Architecture Performance Analysis of Software
//! Applications*, ISPASS 2007): a regression learner that recursively
//! partitions the input space by the most variance-reducing attribute and
//! fits **linear models at the nodes**, following Quinlan's M5 as refined by
//! Wang & Witten's M5' (the WEKA implementation the paper used).
//!
//! The pipeline:
//!
//! 1. **Growth** — at each node pick the (attribute, threshold) pair
//!    maximizing the standard-deviation reduction (SDR); stop on small or
//!    homogeneous subsets ([`best_split`]);
//! 2. **Node models** — fit a least-squares model at every node over the
//!    attributes referenced in its subtree, then greedily drop terms while
//!    the `(n + v)/(n - v)`-inflated training error improves ([`LinearModel`]).
//! 3. **Pruning** — bottom-up, replace a subtree by its node model when that
//!    lowers the estimated error.
//! 4. **Smoothing** — optionally blend leaf predictions with ancestor models
//!    (`p' = (n·p + k·q)/(n + k)`).
//!
//! On top of the learner sits the paper's *performance-analysis* layer
//! ([`analysis`]): classify a workload section to its leaf (performance
//! class), decompose its predicted CPI into per-event contributions (the
//! "what" and "how much" questions), and quantify split-variable impact.
//!
//! # Example
//!
//! ```
//! use mtperf_mtree::{Dataset, M5Params, ModelTree};
//!
//! // y = 2x below 0, y = 10 - 3x above: a piecewise-linear target.
//! let mut data = Dataset::new(vec!["x".into()]).unwrap();
//! for i in -50..50 {
//!     let x = i as f64 / 10.0;
//!     let y = if x <= 0.0 { 2.0 * x } else { 10.0 - 3.0 * x };
//!     data.push_row(&[x], y).unwrap();
//! }
//! let params = M5Params::default().with_min_instances(10).with_smoothing(false);
//! let tree = ModelTree::fit(&data, &params).unwrap();
//! assert!((tree.predict(&[-2.0]) - -4.0).abs() < 0.5);
//! assert!((tree.predict(&[2.0]) - 4.0).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod build;
pub mod compiled;
mod dataset;
mod error;
mod learner;
mod model;
mod node;
mod params;
mod persist;
mod phase;
mod render;
mod residual;
mod rules;
mod split;
mod tree;

pub use compiled::{CompiledRules, CompiledTree};
pub use dataset::Dataset;
pub use error::MtreeError;
pub use learner::{Learner, M5Learner, Predictor};
pub use model::LinearModel;
pub use node::{LeafId, Node};
pub use params::M5Params;
pub use persist::PersistError;
pub use phase::{Phase, PhaseTracker};
pub use residual::{residual_dataset, ResidualLearner, ResidualPredictor};
pub use rules::{Condition, Rule, RuleSet};
pub use split::{best_split, best_split_with, Split};
pub use tree::ModelTree;
