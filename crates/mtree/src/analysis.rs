//! The performance-analysis layer: the paper's "what" and "how much"
//! questions (§III, §IV.C, §V.A.2).
//!
//! Given a fitted tree over hardware-event attributes:
//!
//! * [`ModelTree::classify`] routes a section to its performance class and
//!   records the decision rules on the way — the *implicit categorical
//!   factors* of that class;
//! * [`contributions`] decomposes the predicted CPI into per-event terms
//!   `coefⱼ·xⱼ / ŷ` — the paper's worked example: with LM8's
//!   `6.69·L1IM` term, `L1IM = 0.03` and `CPI = 1.0`, instruction-cache
//!   misses account for `6.69·0.03/1.0 ≈ 20 %` of execution time;
//! * [`rank_opportunities`] orders those contributions into an optimization
//!   to-do list (answering *what* to fix first and *how much* it may help);
//! * [`split_impacts`] quantifies split variables that do not appear in the
//!   leaf models, by the paper's two methods: the mean-CPI difference across
//!   the split and the R² of a simple regression of CPI on the variable.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mtperf_linalg::stats;

use crate::node::{LeafId, Node};
use crate::{Dataset, ModelTree, MtreeError};

/// One decision on the path from root to leaf.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Attribute tested.
    pub attr: usize,
    /// Threshold tested against.
    pub threshold: f64,
    /// `true` if the instance went to the high (`>`) side — per the paper,
    /// the side flagging the event as a potential performance problem.
    pub went_high: bool,
}

/// The classification of one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Classification {
    /// The leaf (performance class) reached.
    pub leaf: LeafId,
    /// Decision rules from root to leaf.
    pub path: Vec<Decision>,
    /// Raw (unsmoothed) leaf-model prediction.
    pub prediction: f64,
}

impl Classification {
    /// Attributes whose *high* side was taken on the path — the implicit
    /// performance limiters of this class.
    pub fn high_side_attrs(&self) -> Vec<usize> {
        self.path
            .iter()
            .filter(|d| d.went_high)
            .map(|d| d.attr)
            .collect()
    }
}

/// One event's share of a predicted CPI.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Contribution {
    /// Attribute (event) index.
    pub attr: usize,
    /// Model coefficient of the event.
    pub coefficient: f64,
    /// The instance's per-instruction rate for the event.
    pub value: f64,
    /// Absolute contribution `coefficient · value` (CPI units).
    pub amount: f64,
    /// Fractional contribution `amount / prediction`; the expected relative
    /// gain from eliminating the event entirely.
    pub fraction: f64,
}

/// Impact of one split variable, by the paper's two estimators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitImpact {
    /// Attribute tested by the split.
    pub attr: usize,
    /// Threshold of the split.
    pub threshold: f64,
    /// Training instances reaching the split node.
    pub n: usize,
    /// Mean target of the low (`<=`) side.
    pub mean_low: f64,
    /// Mean target of the high (`>`) side.
    pub mean_high: f64,
    /// `mean_high − mean_low`: the average cost of being on the high side.
    pub mean_difference: f64,
    /// `mean_difference / mean_high`: the fraction of the high side's CPI
    /// attributable to the variable (the paper's "0.30, i.e. 35 % of CPI").
    pub fraction_of_high: f64,
    /// R² of a simple regression of the target on the variable over the
    /// node's instances (the paper's more sophisticated alternative).
    pub r_squared: f64,
}

impl ModelTree {
    /// Classifies `row`: which leaf it lands in, through which rules.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the attribute count; see
    /// [`ModelTree::try_classify`] for the fallible form.
    pub fn classify(&self, row: &[f64]) -> Classification {
        assert!(row.len() >= self.attr_names().len());
        let mut path = Vec::new();
        let mut node = self.root();
        loop {
            match node {
                Node::Leaf { id, model, .. } => {
                    return Classification {
                        leaf: *id,
                        path,
                        prediction: model.predict(row),
                    };
                }
                Node::Split {
                    attr,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    let went_high = row[*attr] > *threshold;
                    path.push(Decision {
                        attr: *attr,
                        threshold: *threshold,
                        went_high,
                    });
                    node = if went_high { right } else { left };
                }
            }
        }
    }

    /// Fallible [`ModelTree::classify`]: a row shorter than the attribute
    /// count is a typed [`MtreeError::RowLengthMismatch`] instead of a
    /// panic, so callers feeding externally-supplied rows (the CLI, the
    /// sweep engine) can surface a data error.
    ///
    /// # Errors
    ///
    /// [`MtreeError::RowLengthMismatch`] when `row` is shorter than the
    /// tree's attribute count.
    pub fn try_classify(&self, row: &[f64]) -> Result<Classification, MtreeError> {
        check_row(self, row)?;
        Ok(self.classify(row))
    }
}

/// Validates that `row` covers every attribute the tree can reference.
fn check_row(tree: &ModelTree, row: &[f64]) -> Result<(), MtreeError> {
    let expected = tree.attr_names().len();
    if row.len() < expected {
        return Err(MtreeError::RowLengthMismatch {
            expected,
            found: row.len(),
        });
    }
    Ok(())
}

/// Validates a caller-supplied change set against a row of width
/// `n_attrs`: every index must be in range and no index may repeat.
fn check_changes(n_attrs: usize, changes: &[(usize, f64)]) -> Result<(), MtreeError> {
    for (i, &(attr, _)) in changes.iter().enumerate() {
        if attr >= n_attrs {
            return Err(MtreeError::AttributeOutOfRange { attr, n_attrs });
        }
        if changes[..i].iter().any(|&(seen, _)| seen == attr) {
            return Err(MtreeError::DuplicateAttribute { attr });
        }
    }
    Ok(())
}

/// Decomposes the (raw) predicted target for `row` into per-attribute
/// contributions, sorted by descending absolute fraction.
///
/// Only attributes present in the leaf's linear model appear; split-variable
/// effects are covered by [`split_impacts`]. A zero-term leaf (a constant
/// class after attribute elimination) yields an empty vector.
///
/// # Errors
///
/// [`MtreeError::RowLengthMismatch`] when `row` is shorter than the tree's
/// attribute count.
pub fn contributions(tree: &ModelTree, row: &[f64]) -> Result<Vec<Contribution>, MtreeError> {
    check_row(tree, row)?;
    let c = tree.classify(row);
    let leaf = tree.leaf_for(row);
    let model = leaf.model();
    let pred = c.prediction;
    let mut out: Vec<Contribution> = model
        .terms()
        .iter()
        .map(|&(attr, coefficient)| {
            let value = row[attr];
            let amount = coefficient * value;
            Contribution {
                attr,
                coefficient,
                value,
                amount,
                fraction: if pred != 0.0 { amount / pred } else { 0.0 },
            }
        })
        .collect();
    // total_cmp: a NaN fraction (degenerate leaf model on pathological
    // data) sorts last instead of panicking the analysis.
    out.sort_by(|a, b| b.fraction.abs().total_cmp(&a.fraction.abs()));
    Ok(out)
}

/// Ranks the *positive* contributions — the events whose mitigation the
/// model predicts would help, best first. This is the paper's answer to the
/// "what" (order) and "how much" (fraction) questions.
///
/// # Errors
///
/// Same conditions as [`contributions`].
pub fn rank_opportunities(tree: &ModelTree, row: &[f64]) -> Result<Vec<Contribution>, MtreeError> {
    Ok(contributions(tree, row)?
        .into_iter()
        .filter(|c| c.amount > 0.0)
        .collect())
}

/// Computes a [`SplitImpact`] for every split node, pre-order.
///
/// `data` should be the training set (or any representative set); it is
/// routed down the tree to evaluate the per-node regressions.
pub fn split_impacts(tree: &ModelTree, data: &Dataset) -> Vec<SplitImpact> {
    let mut out = Vec::new();
    let idx: Vec<usize> = (0..data.n_rows()).collect();
    walk(tree.root(), data, idx, &mut out);
    out
}

fn walk(node: &Node, data: &Dataset, idx: Vec<usize>, out: &mut Vec<SplitImpact>) {
    let Node::Split {
        attr,
        threshold,
        left,
        right,
        ..
    } = node
    else {
        return;
    };
    let col = data.column(*attr);
    let (low, high): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| col[i] <= *threshold);
    let ys_low: Vec<f64> = low.iter().map(|&i| data.target(i)).collect();
    let ys_high: Vec<f64> = high.iter().map(|&i| data.target(i)).collect();
    let mean_low = stats::mean(&ys_low);
    let mean_high = stats::mean(&ys_high);
    let xs: Vec<f64> = idx.iter().map(|&i| col[i]).collect();
    let ys: Vec<f64> = idx.iter().map(|&i| data.target(i)).collect();
    let r_squared = stats::simple_regression(&xs, &ys)
        .map(|(_, _, r2)| r2)
        .unwrap_or(0.0);
    out.push(SplitImpact {
        attr: *attr,
        threshold: *threshold,
        n: idx.len(),
        mean_low,
        mean_high,
        mean_difference: mean_high - mean_low,
        fraction_of_high: if mean_high != 0.0 {
            (mean_high - mean_low) / mean_high
        } else {
            0.0
        },
        r_squared,
    });
    walk(left, data, low, out);
    walk(right, data, high, out);
}

/// Counterfactual prediction: the target if `attr` were forced to
/// `new_value` — the instance is **re-routed** through the tree, so a change
/// that crosses a split boundary switches performance class, unlike the
/// within-leaf linear extrapolation of [`contributions`].
///
/// This is the honest estimator for the paper's "how much" question: the
/// linear decomposition assumes the section stays in its class after the
/// optimization, while `what_if` lets it move (e.g. eliminating all L2
/// misses moves a section from the LM17-like class to the low-L2M subtree).
///
/// # Errors
///
/// [`MtreeError::RowLengthMismatch`] when `row` is shorter than the tree's
/// attribute count, [`MtreeError::AttributeOutOfRange`] when `attr` indexes
/// past the end of `row` — previously both were index panics.
pub fn what_if(
    tree: &ModelTree,
    row: &[f64],
    attr: usize,
    new_value: f64,
) -> Result<f64, MtreeError> {
    what_if_many(tree, row, &[(attr, new_value)])
}

/// Counterfactual prediction with several attributes forced at once
/// (e.g. zeroing the whole DTLB event family to model a perfect TLB).
///
/// # Errors
///
/// The conditions of [`what_if`], plus [`MtreeError::DuplicateAttribute`]
/// when `changes` forces the same column twice (ambiguous: only the last
/// write would win silently).
pub fn what_if_many(
    tree: &ModelTree,
    row: &[f64],
    changes: &[(usize, f64)],
) -> Result<f64, MtreeError> {
    check_row(tree, row)?;
    check_changes(row.len(), changes)?;
    let mut modified = row.to_vec();
    for &(attr, value) in changes {
        modified[attr] = value;
    }
    Ok(tree.predict_raw(&modified))
}

/// The predicted relative gain from eliminating `attr` entirely
/// (`what_if(.., 0.0)` against the current prediction); positive means the
/// model expects an improvement.
///
/// # Errors
///
/// Same conditions as [`what_if`].
pub fn elimination_gain(tree: &ModelTree, row: &[f64], attr: usize) -> Result<f64, MtreeError> {
    check_row(tree, row)?;
    check_changes(row.len(), &[(attr, 0.0)])?;
    let before = tree.predict_raw(row);
    if before == 0.0 {
        return Ok(0.0);
    }
    let after = what_if(tree, row, attr, 0.0)?;
    Ok((before - after) / before)
}

/// Pairwise interaction cost of two events, in the sense of Fields et al.
/// (the paper's reference \[17\], computed statistically instead of with
/// dedicated hardware):
///
/// ```text
/// icost(a, b) = gain(a and b eliminated) − gain(a) − gain(b)
/// ```
///
/// Zero means the events are independent (serial costs); positive means
/// eliminating both is worth more than the sum of the parts (parallel
/// interaction, e.g. an L2 miss hiding a page walk); negative means the
/// gains overlap.
///
/// # Errors
///
/// The conditions of [`what_if_many`]; `a == b` is a
/// [`MtreeError::DuplicateAttribute`].
pub fn interaction_cost(
    tree: &ModelTree,
    row: &[f64],
    a: usize,
    b: usize,
) -> Result<f64, MtreeError> {
    check_row(tree, row)?;
    check_changes(row.len(), &[(a, 0.0), (b, 0.0)])?;
    let before = tree.predict_raw(row);
    if before == 0.0 {
        return Ok(0.0);
    }
    let mut both = row.to_vec();
    both[a] = 0.0;
    both[b] = 0.0;
    let gain_both = (before - tree.predict_raw(&both)) / before;
    Ok(gain_both - elimination_gain(tree, row, a)? - elimination_gain(tree, row, b)?)
}

/// Counts how many of `rows` land in each leaf.
pub fn leaf_occupancy<R: AsRef<[f64]>>(tree: &ModelTree, rows: &[R]) -> BTreeMap<LeafId, usize> {
    let mut out = BTreeMap::new();
    for row in rows {
        *out.entry(tree.leaf_id_for(row.as_ref())).or_insert(0) += 1;
    }
    out
}

/// Per-label leaf occupancy: for each label (e.g. workload name), the
/// distribution of its rows over leaves. This regenerates the paper's
/// observations like "more than 95 % of 436.cactusADM's sections fall into
/// LM18" and "more than 70 % of 429.mcf's sections are classified in LM17".
pub fn occupancy_by_label<R: AsRef<[f64]>>(
    tree: &ModelTree,
    rows: &[R],
    labels: &[String],
) -> BTreeMap<String, BTreeMap<LeafId, usize>> {
    assert_eq!(rows.len(), labels.len(), "one label per row");
    let mut out: BTreeMap<String, BTreeMap<LeafId, usize>> = BTreeMap::new();
    for (row, label) in rows.iter().zip(labels) {
        let id = tree.leaf_id_for(row.as_ref());
        *out.entry(label.clone()).or_default().entry(id).or_insert(0) += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::M5Params;

    /// Two regimes separated by attribute 0 ("L2M"-like): below the step the
    /// target is linear in attribute 1; above it the target is high/flat.
    fn perf_data() -> Dataset {
        let mut rows: Vec<[f64; 2]> = Vec::new();
        let mut ys = Vec::new();
        for i in 0..200 {
            let l2m = if i % 2 == 0 { 0.001 } else { 0.03 };
            let dtlb = (i % 10) as f64 * 0.01;
            rows.push([l2m, dtlb]);
            ys.push(if l2m <= 0.01 {
                0.5 + 3.0 * dtlb
            } else {
                2.0 + 5.0 * dtlb
            });
        }
        Dataset::from_rows(vec!["L2M".into(), "Dtlb".into()], &rows, &ys).unwrap()
    }

    fn tree() -> ModelTree {
        ModelTree::fit(
            &perf_data(),
            &M5Params::default()
                .with_min_instances(10)
                .with_smoothing(false),
        )
        .unwrap()
    }

    #[test]
    fn classify_routes_and_records_path() {
        let t = tree();
        let c = t.classify(&[0.03, 0.05]);
        assert!(!c.path.is_empty());
        // First decision should be on L2M (attr 0) and go high.
        assert_eq!(c.path[0].attr, 0);
        assert!(c.path[0].went_high);
        assert!(c.high_side_attrs().contains(&0));
        let c2 = t.classify(&[0.001, 0.05]);
        assert!(!c2.path[0].went_high);
        assert_ne!(c.leaf, c2.leaf);
    }

    #[test]
    fn contribution_math_matches_papers_example() {
        // Direct check of the worked example: coefficient 6.69, rate 0.03,
        // CPI 1.0 -> 20 % contribution.
        let amount: f64 = 6.69 * 0.03;
        let fraction: f64 = amount / 1.0;
        assert!((fraction - 0.2007).abs() < 1e-4);
    }

    #[test]
    fn contributions_decompose_prediction() {
        let t = tree();
        let row = [0.001, 0.07];
        let cs = contributions(&t, &row).unwrap();
        let pred = t.predict_raw(&row);
        let leaf_model = t.leaf_for(&row).model();
        let total: f64 = leaf_model.intercept() + cs.iter().map(|c| c.amount).sum::<f64>();
        assert!((total - pred).abs() < 1e-9);
        // Fractions are amounts over prediction.
        for c in &cs {
            assert!((c.fraction - c.amount / pred).abs() < 1e-12);
        }
        // Sorted by descending |fraction|.
        for w in cs.windows(2) {
            assert!(w[0].fraction.abs() >= w[1].fraction.abs());
        }
    }

    #[test]
    fn opportunities_are_positive_and_ranked() {
        let t = tree();
        let ops = rank_opportunities(&t, &[0.001, 0.07]).unwrap();
        assert!(ops.iter().all(|c| c.amount > 0.0));
        for w in ops.windows(2) {
            assert!(w[0].fraction.abs() >= w[1].fraction.abs());
        }
    }

    #[test]
    fn split_impacts_reflect_regime_gap() {
        let t = tree();
        let d = perf_data();
        let impacts = split_impacts(&t, &d);
        assert!(!impacts.is_empty());
        let root = &impacts[0];
        assert_eq!(root.attr, 0);
        assert_eq!(root.n, d.n_rows());
        // High side (L2M-heavy) averages well above the low side.
        assert!(root.mean_difference > 1.0, "{root:?}");
        assert!(root.fraction_of_high > 0.3);
        // CPI correlates with L2M over the whole set.
        assert!(root.r_squared > 0.3);
    }

    #[test]
    fn what_if_reroutes_across_splits() {
        let t = tree();
        // A high-L2M section: forcing L2M to 0 must move it to the low
        // subtree and drop the prediction markedly.
        let row = [0.03, 0.05];
        let before = t.predict_raw(&row);
        let after = what_if(&t, &row, 0, 0.0).unwrap();
        assert!(after < before, "{after} vs {before}");
        assert_ne!(
            t.leaf_id_for(&row),
            t.leaf_id_for(&[0.0, 0.05]),
            "class must change"
        );
        let gain = elimination_gain(&t, &row, 0).unwrap();
        assert!(gain > 0.2, "gain = {gain}");
    }

    #[test]
    fn what_if_within_leaf_matches_linear_model() {
        let t = tree();
        // Change the Dtlb rate without crossing any split on attribute 1:
        // prediction must follow the leaf's linear model.
        let row = [0.001, 0.05];
        let leaf = t.leaf_for(&row);
        let new = what_if(&t, &row, 1, 0.06).unwrap();
        if t.leaf_id_for(&[0.001, 0.06]) == t.leaf_id_for(&row) {
            let expect = leaf.model().predict(&[0.001, 0.06]);
            assert!((new - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn interaction_cost_zero_for_independent_terms() {
        // Within one leaf, a linear model has no interactions; pick a row
        // whose eliminations stay in the same leaf.
        let t = tree();
        let row = [0.001, 0.03];
        let same_class = t.leaf_id_for(&row) == t.leaf_id_for(&[0.0, 0.03])
            && t.leaf_id_for(&row) == t.leaf_id_for(&[0.001, 0.0])
            && t.leaf_id_for(&row) == t.leaf_id_for(&[0.0, 0.0]);
        if same_class {
            let ic = interaction_cost(&t, &row, 0, 1).unwrap();
            assert!(ic.abs() < 1e-9, "ic = {ic}");
        }
    }

    #[test]
    fn elimination_gain_is_bounded_sane() {
        let t = tree();
        for &row in &[[0.03, 0.07], [0.001, 0.02]] {
            for attr in 0..2 {
                let g = elimination_gain(&t, &row, attr).unwrap();
                assert!(g.is_finite());
                assert!(g < 1.0, "gain cannot exceed 100%: {g}");
            }
        }
    }

    #[test]
    fn occupancy_counts_everything_once() {
        let t = tree();
        let d = perf_data();
        let rows: Vec<Vec<f64>> = (0..d.n_rows()).map(|i| d.row(i)).collect();
        let occ = leaf_occupancy(&t, &rows);
        assert_eq!(occ.values().sum::<usize>(), d.n_rows());

        let labels: Vec<String> = (0..d.n_rows())
            .map(|i| {
                if i % 2 == 0 {
                    "low".into()
                } else {
                    "high".into()
                }
            })
            .collect();
        let by_label = occupancy_by_label(&t, &rows, &labels);
        assert_eq!(by_label.len(), 2);
        // Even rows (low L2M) should concentrate in one leaf side.
        let low = &by_label["low"];
        let dominant = low.values().max().unwrap();
        assert!(*dominant as f64 / 100.0 > 0.9);
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn occupancy_by_label_checks_lengths() {
        let t = tree();
        occupancy_by_label(&t, &[vec![0.0, 0.0]], &[]);
    }

    #[test]
    fn what_if_rejects_out_of_range_attr() {
        let t = tree();
        let row = [0.03, 0.05];
        let err = what_if(&t, &row, 7, 0.0).unwrap_err();
        assert_eq!(
            err,
            MtreeError::AttributeOutOfRange {
                attr: 7,
                n_attrs: 2
            }
        );
        let err = what_if_many(&t, &row, &[(0, 0.0), (99, 0.0)]).unwrap_err();
        assert!(matches!(
            err,
            MtreeError::AttributeOutOfRange { attr: 99, .. }
        ));
        assert!(matches!(
            elimination_gain(&t, &row, 2).unwrap_err(),
            MtreeError::AttributeOutOfRange { attr: 2, .. }
        ));
    }

    #[test]
    fn what_if_many_rejects_duplicate_attrs() {
        let t = tree();
        let row = [0.03, 0.05];
        let err = what_if_many(&t, &row, &[(1, 0.0), (1, 0.1)]).unwrap_err();
        assert_eq!(err, MtreeError::DuplicateAttribute { attr: 1 });
        assert_eq!(
            interaction_cost(&t, &row, 0, 0).unwrap_err(),
            MtreeError::DuplicateAttribute { attr: 0 }
        );
    }

    #[test]
    fn short_rows_are_typed_errors_not_panics() {
        let t = tree();
        let short = [0.03];
        assert_eq!(
            t.try_classify(&short).unwrap_err(),
            MtreeError::RowLengthMismatch {
                expected: 2,
                found: 1
            }
        );
        assert!(matches!(
            contributions(&t, &short).unwrap_err(),
            MtreeError::RowLengthMismatch { .. }
        ));
        assert!(matches!(
            rank_opportunities(&t, &short).unwrap_err(),
            MtreeError::RowLengthMismatch { .. }
        ));
        assert!(matches!(
            what_if(&t, &short, 0, 0.0).unwrap_err(),
            MtreeError::RowLengthMismatch { .. }
        ));
        assert!(matches!(
            interaction_cost(&t, &short, 0, 1).unwrap_err(),
            MtreeError::RowLengthMismatch { .. }
        ));
        // A wider row than the tree is fine (extra columns are ignored).
        assert!(t.try_classify(&[0.03, 0.05, 9.9]).is_ok());
    }

    #[test]
    fn contributions_on_zero_term_leaf_are_empty() {
        // A constant target trains to a single zero-term leaf; the analysis
        // must degrade to "no opportunities", not panic.
        let rows: Vec<[f64; 2]> = (0..40).map(|i| [(i % 5) as f64, 1.0]).collect();
        let ys = vec![2.2; 40];
        let d = Dataset::from_rows(vec!["a".into(), "b".into()], &rows, &ys).unwrap();
        let t = ModelTree::fit(&d, &M5Params::default()).unwrap();
        let cs = contributions(&t, &[1.0, 1.0]).unwrap();
        assert!(cs.is_empty());
        assert!(rank_opportunities(&t, &[1.0, 1.0]).unwrap().is_empty());
        // what_if on the constant tree keeps the constant prediction.
        let w = what_if(&t, &[1.0, 1.0], 0, 100.0).unwrap();
        assert!((w - 2.2).abs() < 1e-9);
    }
}
