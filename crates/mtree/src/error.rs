use std::error::Error;
use std::fmt;

use mtperf_linalg::LinalgError;

/// Error type for dataset construction and model-tree training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MtreeError {
    /// The dataset has no rows or no attributes.
    EmptyDataset,
    /// A row's length does not match the attribute count.
    RowLengthMismatch {
        /// Expected attribute count.
        expected: usize,
        /// Length of the offending row.
        found: usize,
    },
    /// A value in the dataset is NaN or infinite.
    NonFiniteValue {
        /// Row index of the offending value.
        row: usize,
        /// Column index of the offending attribute, or `None` when the
        /// target value itself is non-finite.
        attr: Option<usize>,
    },
    /// Attribute names must be unique and non-empty.
    BadAttributeNames,
    /// A caller-supplied attribute index is out of range for the row or
    /// model it was applied to (e.g. a `what_if` change on a column the
    /// instance does not have).
    AttributeOutOfRange {
        /// The offending attribute index.
        attr: usize,
        /// Number of attributes actually available.
        n_attrs: usize,
    },
    /// The same attribute appears more than once in a set of changes that
    /// must be disjoint (e.g. `what_if_many` forcing one column twice —
    /// ambiguous, since only the last write would win silently).
    DuplicateAttribute {
        /// The attribute index that was repeated.
        attr: usize,
    },
    /// Training parameters are inconsistent.
    BadParams(String),
    /// The data itself is degenerate for the requested computation: an
    /// empty partition reached a tree builder, an evaluation set came out
    /// empty (e.g. fully quarantined under a skip policy), or a leaf solve
    /// had no usable rows. Distinct from [`MtreeError::BadParams`]: the
    /// caller's parameters were fine, the data was not.
    DegenerateData(String),
    /// A cooperative cancellation token (deadline or explicit cancel) fired
    /// before the computation finished; partial results were discarded.
    Cancelled,
    /// An underlying linear-algebra failure that could not be recovered.
    Linalg(LinalgError),
}

impl fmt::Display for MtreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtreeError::EmptyDataset => write!(f, "dataset has no rows or no attributes"),
            MtreeError::RowLengthMismatch { expected, found } => {
                write!(f, "row has {found} values, expected {expected}")
            }
            MtreeError::NonFiniteValue { row, attr } => match attr {
                Some(a) => write!(f, "non-finite value in row {row}, attribute {a}"),
                None => write!(f, "non-finite target in row {row}"),
            },
            MtreeError::BadAttributeNames => {
                write!(f, "attribute names must be unique and non-empty")
            }
            MtreeError::AttributeOutOfRange { attr, n_attrs } => {
                write!(
                    f,
                    "attribute index {attr} out of range (row has {n_attrs} attributes)"
                )
            }
            MtreeError::DuplicateAttribute { attr } => {
                write!(f, "attribute index {attr} appears more than once")
            }
            MtreeError::BadParams(msg) => write!(f, "bad training parameters: {msg}"),
            MtreeError::DegenerateData(msg) => write!(f, "degenerate data: {msg}"),
            MtreeError::Cancelled => {
                write!(
                    f,
                    "computation cancelled (deadline passed or caller gave up)"
                )
            }
            MtreeError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for MtreeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MtreeError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for MtreeError {
    fn from(e: LinalgError) -> Self {
        match e {
            // Cancellation is a caller decision, not an algebra failure;
            // keep it a first-class variant so callers can match on it.
            LinalgError::Cancelled => MtreeError::Cancelled,
            other => MtreeError::Linalg(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MtreeError::EmptyDataset.to_string().contains("no rows"));
        assert!(MtreeError::RowLengthMismatch {
            expected: 3,
            found: 2
        }
        .to_string()
        .contains("expected 3"));
        assert!(MtreeError::NonFiniteValue { row: 7, attr: None }
            .to_string()
            .contains("7"));
        assert!(MtreeError::NonFiniteValue {
            row: 7,
            attr: Some(2)
        }
        .to_string()
        .contains("attribute 2"));
        assert!(MtreeError::BadParams("x".into()).to_string().contains("x"));
        assert!(MtreeError::DegenerateData("empty fold".into())
            .to_string()
            .contains("empty fold"));
        assert!(MtreeError::AttributeOutOfRange {
            attr: 9,
            n_attrs: 4
        }
        .to_string()
        .contains("index 9"));
        assert!(MtreeError::DuplicateAttribute { attr: 3 }
            .to_string()
            .contains("more than once"));
    }

    #[test]
    fn from_linalg() {
        let e: MtreeError = LinalgError::Singular.into();
        assert!(matches!(e, MtreeError::Linalg(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
