//! Model persistence: save and load fitted trees as JSON, crash-safely.
//!
//! The tree (structure, models, parameters, attribute names) serializes via
//! serde; these helpers add the file plumbing plus a versioned envelope so
//! incompatible or corrupt dumps fail loudly — with a *typed* error — instead
//! of deserializing garbage or panicking.
//!
//! # On-disk format
//!
//! Version 2 (written by [`ModelTree::to_json`] / [`RuleSet::to_json`]) is an
//! integrity header line followed by the version-1 body:
//!
//! ```text
//! {"format":"mtperf-model-tree","version":2,"checksum":"fnv1a64:<16 hex>","payload_len":N}
//! {
//!   "format": "mtperf-model-tree",
//!   "version": 1,
//!   "tree": { ... }
//! }
//! ```
//!
//! The checksum is 64-bit FNV-1a over the payload bytes (everything after the
//! header line), and `payload_len` pins the exact payload size, so torn
//! writes, truncations, and bit flips map to [`PersistError::Truncated`] and
//! [`PersistError::ChecksumMismatch`] rather than a JSON parse error deep in
//! the tree — or worse, a silently different model. Version-1 dumps (no
//! header line) still load.
//!
//! # Crash safety
//!
//! [`ModelTree::save`] and [`RuleSet::save`] write through
//! [`mtperf_obs::fsio::atomic_write`]: temp file in the destination
//! directory, fsync, rename, fsync the directory. A crash — including
//! `kill -9` — mid-save leaves either the previous complete file or the new
//! complete file, never a torn one. Loads retry EINTR/EAGAIN-class transient
//! failures on a bounded deterministic backoff schedule.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::{ModelTree, RuleSet};

/// On-disk format version written by `save`/`to_json`; bumped on breaking
/// model-layout changes. Version 2 added the integrity header.
const FORMAT_VERSION: u32 = 2;

/// The body format carried inside the envelope (and the whole file for
/// pre-checksum dumps).
const BODY_VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
struct Envelope {
    format: String,
    version: u32,
    tree: ModelTree,
}

#[derive(Serialize, Deserialize)]
struct RuleEnvelope {
    format: String,
    version: u32,
    rules: RuleSet,
}

/// The version-2 integrity header: first line of the file, protecting the
/// payload (all following bytes) with a length and an FNV-1a checksum.
#[derive(Serialize, Deserialize)]
struct IntegrityHeader {
    format: String,
    version: u32,
    checksum: String,
    payload_len: usize,
}

/// Error loading or saving a persisted model.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a model dump or has an incompatible version.
    Format(String),
    /// The payload hashes differently than the integrity header says: the
    /// file was corrupted in place (bit flip, partial overwrite, spliced
    /// content).
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload as found on disk.
        found: u64,
    },
    /// The payload is shorter or longer than the integrity header says: the
    /// file was torn by a crash mid-write (of a non-atomic writer) or
    /// truncated/extended after the fact.
    Truncated {
        /// Payload length recorded in the header.
        expected_len: usize,
        /// Payload length found on disk.
        found_len: usize,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model i/o error: {e}"),
            PersistError::Format(msg) => write!(f, "model format error: {msg}"),
            PersistError::ChecksumMismatch { expected, found } => write!(
                f,
                "model file corrupt: checksum fnv1a64:{found:016x} does not match recorded fnv1a64:{expected:016x}"
            ),
            PersistError::Truncated {
                expected_len,
                found_len,
            } => write!(
                f,
                "model file torn: payload is {found_len} bytes, header records {expected_len}"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Wraps a version-1 body in the version-2 integrity envelope.
fn seal(format: &str, mut body: String) -> String {
    if !body.ends_with('\n') {
        body.push('\n');
    }
    let header = serde_json::to_string(&IntegrityHeader {
        format: format.into(),
        version: FORMAT_VERSION,
        checksum: format!(
            "fnv1a64:{:016x}",
            mtperf_obs::fsio::fnv1a_64(body.as_bytes())
        ),
        payload_len: body.len(),
    })
    .expect("header serialization cannot fail");
    format!("{header}\n{body}")
}

/// Splits a dump into its verified version-1 body.
///
/// Version-2 dumps (integrity header on the first line) have their payload
/// length and checksum verified; version-1 dumps pass through whole. The
/// caller parses the returned body as the version-1 envelope.
fn open_sealed<'a>(format: &str, text: &'a str) -> Result<&'a str, PersistError> {
    let first_line = text.lines().next().unwrap_or("");
    let Ok(header) = serde_json::from_str::<IntegrityHeader>(first_line) else {
        // No integrity header: a version-1 dump (or garbage the body parser
        // will reject with a Format error).
        return Ok(text);
    };
    if header.format != format {
        return Err(PersistError::Format(format!(
            "unexpected format marker {:?} (expected {format:?})",
            header.format
        )));
    }
    if header.version != FORMAT_VERSION {
        return Err(PersistError::Format(format!(
            "unsupported envelope version {} (expected {FORMAT_VERSION})",
            header.version
        )));
    }
    let expected = header
        .checksum
        .strip_prefix("fnv1a64:")
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .ok_or_else(|| {
            PersistError::Format(format!("unparsable checksum field {:?}", header.checksum))
        })?;
    let payload = text
        .split_once('\n')
        .map(|(_, rest)| rest)
        .unwrap_or_default();
    if payload.len() != header.payload_len {
        return Err(PersistError::Truncated {
            expected_len: header.payload_len,
            found_len: payload.len(),
        });
    }
    let found = mtperf_obs::fsio::fnv1a_64(payload.as_bytes());
    if found != expected {
        return Err(PersistError::ChecksumMismatch { expected, found });
    }
    Ok(payload)
}

/// Shared body-envelope checks for trees and rule sets.
fn check_body(format: &str, found_format: &str, version: u32) -> Result<(), PersistError> {
    if found_format != format {
        return Err(PersistError::Format(format!(
            "unexpected format marker {found_format:?}"
        )));
    }
    if version != BODY_VERSION {
        return Err(PersistError::Format(format!(
            "unsupported version {version} (expected {BODY_VERSION})"
        )));
    }
    Ok(())
}

impl ModelTree {
    /// Serializes the tree as a version-2 dump: one integrity-header line
    /// (length + FNV-1a checksum of everything after it) followed by the
    /// versioned JSON envelope.
    pub fn to_json(&self) -> String {
        let body = serde_json::to_string_pretty(&Envelope {
            format: "mtperf-model-tree".into(),
            version: BODY_VERSION,
            tree: self.clone(),
        })
        .expect("tree serialization cannot fail");
        seal("mtperf-model-tree", body)
    }

    /// Deserializes a tree from [`ModelTree::to_json`] output (version 2) or
    /// a pre-checksum version-1 dump.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] / [`PersistError::ChecksumMismatch`]
    /// when a version-2 dump fails integrity verification, and
    /// [`PersistError::Format`] for non-model JSON or version mismatches.
    pub fn from_json(json: &str) -> Result<ModelTree, PersistError> {
        let body = open_sealed("mtperf-model-tree", json)?;
        let env: Envelope =
            serde_json::from_str(body).map_err(|e| PersistError::Format(e.to_string()))?;
        check_body("mtperf-model-tree", &env.format, env.version)?;
        Ok(env.tree)
    }

    /// Saves the tree to `path` atomically (temp file, fsync, rename, fsync
    /// directory): a crash mid-save can never leave a torn model file at
    /// `path`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        mtperf_obs::fsio::atomic_write(path, self.to_json().as_bytes())?;
        Ok(())
    }

    /// Loads a tree from a file written by [`ModelTree::save`], retrying
    /// transient (EINTR/EAGAIN-class) read failures on a bounded backoff.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on read failure and the typed corruption
    /// errors of [`ModelTree::from_json`] on malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<ModelTree, PersistError> {
        let path = path.as_ref();
        let json = mtperf_obs::fsio::with_retry("model_load", || {
            mtperf_detsim::fs::check(mtperf_detsim::fs::FsOp::Read, path)?;
            fs::read_to_string(path)
        })?;
        Self::from_json(&json)
    }
}

impl RuleSet {
    /// Serializes the rule set as a version-2 dump (format marker
    /// `mtperf-rule-set`), preserving the full extraction state: rule order,
    /// conditions, per-rule models, coverage, and means. A rule set loaded
    /// back (and compiled) predicts bit-identically to the in-memory one.
    pub fn to_json(&self) -> String {
        let body = serde_json::to_string_pretty(&RuleEnvelope {
            format: "mtperf-rule-set".into(),
            version: BODY_VERSION,
            rules: self.clone(),
        })
        .expect("rule serialization cannot fail");
        seal("mtperf-rule-set", body)
    }

    /// Deserializes a rule set from [`RuleSet::to_json`] output (version 2)
    /// or a pre-checksum version-1 dump.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] / [`PersistError::ChecksumMismatch`]
    /// when a version-2 dump fails integrity verification, and
    /// [`PersistError::Format`] for non-rule JSON or version mismatches.
    pub fn from_json(json: &str) -> Result<RuleSet, PersistError> {
        let body = open_sealed("mtperf-rule-set", json)?;
        let env: RuleEnvelope =
            serde_json::from_str(body).map_err(|e| PersistError::Format(e.to_string()))?;
        check_body("mtperf-rule-set", &env.format, env.version)?;
        Ok(env.rules)
    }

    /// Saves the rule set to `path` atomically (same contract as
    /// [`ModelTree::save`]).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        mtperf_obs::fsio::atomic_write(path, self.to_json().as_bytes())?;
        Ok(())
    }

    /// Loads a rule set from a file written by [`RuleSet::save`], retrying
    /// transient read failures like [`ModelTree::load`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on read failure and the typed corruption
    /// errors of [`RuleSet::from_json`] on malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<RuleSet, PersistError> {
        let path = path.as_ref();
        let json = mtperf_obs::fsio::with_retry("rules_load", || {
            mtperf_detsim::fs::check(mtperf_detsim::fs::FsOp::Read, path)?;
            fs::read_to_string(path)
        })?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, M5Params};

    fn tree() -> ModelTree {
        let rows: Vec<[f64; 1]> = (0..80).map(|i| [i as f64]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] <= 40.0 { r[0] } else { 80.0 - r[0] })
            .collect();
        let d = Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap();
        ModelTree::fit(&d, &M5Params::default().with_min_instances(8)).unwrap()
    }

    /// The version-1 rendering of a tree (no integrity header), as written
    /// by pre-checksum releases.
    fn v1_json(t: &ModelTree) -> String {
        serde_json::to_string_pretty(&Envelope {
            format: "mtperf-model-tree".into(),
            version: 1,
            tree: t.clone(),
        })
        .unwrap()
    }

    #[test]
    fn json_roundtrip() {
        let t = tree();
        let back = ModelTree::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.predict(&[17.0]), t.predict(&[17.0]));
    }

    #[test]
    fn v2_dump_has_integrity_header() {
        let json = tree().to_json();
        let first = json.lines().next().unwrap();
        assert!(first.contains("\"version\":2"), "{first}");
        assert!(first.contains("fnv1a64:"), "{first}");
        let header: IntegrityHeader = serde_json::from_str(first).unwrap();
        assert_eq!(header.payload_len, json.split_once('\n').unwrap().1.len());
    }

    #[test]
    fn v1_dump_still_loads() {
        let t = tree();
        let back = ModelTree::from_json(&v1_json(&t)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn file_roundtrip() {
        let t = tree();
        let dir = std::env::temp_dir().join("mtperf-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        t.save(&path).unwrap();
        let back = ModelTree::load(&path).unwrap();
        assert_eq!(back, t);
        // Atomic save leaves no staging file behind.
        assert!(!mtperf_obs::fsio::staging_path(&path).unwrap().exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_is_detected_as_torn() {
        let t = tree();
        let json = t.to_json();
        let cut = &json[..json.len() - json.len() / 3];
        let err = ModelTree::from_json(cut).unwrap_err();
        assert!(matches!(err, PersistError::Truncated { .. }), "{err}");
        assert!(err.to_string().contains("torn"), "{err}");
    }

    #[test]
    fn bit_flip_is_detected_as_checksum_mismatch() {
        let t = tree();
        let json = t.to_json();
        // Flip one payload character without changing the length.
        let idx = json.rfind("\"tree\"").unwrap() + 1;
        let mut bytes = json.into_bytes();
        bytes[idx] = if bytes[idx] == b'x' { b'y' } else { b'x' };
        let corrupt = String::from_utf8(bytes).unwrap();
        let err = ModelTree::from_json(&corrupt).unwrap_err();
        assert!(
            matches!(err, PersistError::ChecksumMismatch { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("fnv1a64:"), "{err}");
    }

    #[test]
    fn rejects_wrong_format() {
        let err =
            ModelTree::from_json("{\"format\":\"other\",\"version\":1,\"tree\":null}").unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "{err}");
        let err = ModelTree::from_json("not json at all").unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
    }

    #[test]
    fn rule_set_roundtrip_preserves_extraction_state() {
        let t = tree();
        let rules = crate::RuleSet::from_tree(&t);
        let back = crate::RuleSet::from_json(&rules.to_json()).unwrap();
        assert_eq!(back, rules);
        for i in 0..80 {
            let row = [i as f64];
            assert_eq!(back.predict(&row).to_bits(), rules.predict(&row).to_bits());
        }
        // A tree envelope is not a rule envelope and vice versa.
        let err = crate::RuleSet::from_json(&t.to_json()).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "{err}");
    }

    #[test]
    fn rejects_wrong_version() {
        let t = tree();
        // Unsupported envelope version in the header line.
        let json = t.to_json().replacen("\"version\":2", "\"version\":999", 1);
        let err = ModelTree::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        // Unsupported body version in a headerless (v1-style) dump.
        let json = v1_json(&t).replace("\"version\": 1", "\"version\": 999");
        let err = ModelTree::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = ModelTree::load("/nonexistent/nope.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }
}
