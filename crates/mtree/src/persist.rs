//! Model persistence: save and load fitted trees as JSON.
//!
//! The tree (structure, models, parameters, attribute names) serializes via
//! serde; these helpers add the file plumbing plus a version marker so
//! incompatible dumps fail loudly instead of deserializing garbage.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::{ModelTree, RuleSet};

/// On-disk format version; bumped on breaking model-layout changes.
const FORMAT_VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
struct Envelope {
    format: String,
    version: u32,
    tree: ModelTree,
}

#[derive(Serialize, Deserialize)]
struct RuleEnvelope {
    format: String,
    version: u32,
    rules: RuleSet,
}

/// Error loading or saving a persisted model.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a model dump or has an incompatible version.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model i/o error: {e}"),
            PersistError::Format(msg) => write!(f, "model format error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(_) => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl ModelTree {
    /// Serializes the tree to a JSON string (versioned envelope).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&Envelope {
            format: "mtperf-model-tree".into(),
            version: FORMAT_VERSION,
            tree: self.clone(),
        })
        .expect("tree serialization cannot fail")
    }

    /// Deserializes a tree from [`ModelTree::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Format`] for non-model JSON or version
    /// mismatches.
    pub fn from_json(json: &str) -> Result<ModelTree, PersistError> {
        let env: Envelope =
            serde_json::from_str(json).map_err(|e| PersistError::Format(e.to_string()))?;
        if env.format != "mtperf-model-tree" {
            return Err(PersistError::Format(format!(
                "unexpected format marker {:?}",
                env.format
            )));
        }
        if env.version != FORMAT_VERSION {
            return Err(PersistError::Format(format!(
                "unsupported version {} (expected {FORMAT_VERSION})",
                env.version
            )));
        }
        Ok(env.tree)
    }

    /// Saves the tree to `path` as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Loads a tree from a file written by [`ModelTree::save`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on read failure and
    /// [`PersistError::Format`] on malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<ModelTree, PersistError> {
        let json = fs::read_to_string(path)?;
        Self::from_json(&json)
    }
}

impl RuleSet {
    /// Serializes the rule set to a JSON string (versioned envelope, format
    /// marker `mtperf-rule-set`), preserving the full extraction state:
    /// rule order, conditions, per-rule models, coverage, and means. A rule
    /// set loaded back (and compiled) predicts bit-identically to the
    /// in-memory one.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&RuleEnvelope {
            format: "mtperf-rule-set".into(),
            version: FORMAT_VERSION,
            rules: self.clone(),
        })
        .expect("rule serialization cannot fail")
    }

    /// Deserializes a rule set from [`RuleSet::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Format`] for non-rule JSON or version
    /// mismatches.
    pub fn from_json(json: &str) -> Result<RuleSet, PersistError> {
        let env: RuleEnvelope =
            serde_json::from_str(json).map_err(|e| PersistError::Format(e.to_string()))?;
        if env.format != "mtperf-rule-set" {
            return Err(PersistError::Format(format!(
                "unexpected format marker {:?}",
                env.format
            )));
        }
        if env.version != FORMAT_VERSION {
            return Err(PersistError::Format(format!(
                "unsupported version {} (expected {FORMAT_VERSION})",
                env.version
            )));
        }
        Ok(env.rules)
    }

    /// Saves the rule set to `path` as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Loads a rule set from a file written by [`RuleSet::save`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on read failure and
    /// [`PersistError::Format`] on malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<RuleSet, PersistError> {
        let json = fs::read_to_string(path)?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, M5Params};

    fn tree() -> ModelTree {
        let rows: Vec<[f64; 1]> = (0..80).map(|i| [i as f64]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] <= 40.0 { r[0] } else { 80.0 - r[0] })
            .collect();
        let d = Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap();
        ModelTree::fit(&d, &M5Params::default().with_min_instances(8)).unwrap()
    }

    #[test]
    fn json_roundtrip() {
        let t = tree();
        let back = ModelTree::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.predict(&[17.0]), t.predict(&[17.0]));
    }

    #[test]
    fn file_roundtrip() {
        let t = tree();
        let dir = std::env::temp_dir().join("mtperf-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        t.save(&path).unwrap();
        let back = ModelTree::load(&path).unwrap();
        assert_eq!(back, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_format() {
        let err =
            ModelTree::from_json("{\"format\":\"other\",\"version\":1,\"tree\":null}").unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "{err}");
        let err = ModelTree::from_json("not json at all").unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
    }

    #[test]
    fn rule_set_roundtrip_preserves_extraction_state() {
        let t = tree();
        let rules = crate::RuleSet::from_tree(&t);
        let back = crate::RuleSet::from_json(&rules.to_json()).unwrap();
        assert_eq!(back, rules);
        for i in 0..80 {
            let row = [i as f64];
            assert_eq!(back.predict(&row).to_bits(), rules.predict(&row).to_bits());
        }
        // A tree envelope is not a rule envelope and vice versa.
        let err = crate::RuleSet::from_json(&t.to_json()).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "{err}");
    }

    #[test]
    fn rejects_wrong_version() {
        let t = tree();
        let json = t.to_json().replace("\"version\": 1", "\"version\": 999");
        let err = ModelTree::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = ModelTree::load("/nonexistent/nope.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }
}
