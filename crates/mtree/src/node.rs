//! Tree node representation.

use serde::{Deserialize, Serialize};

use crate::LinearModel;

/// Identifier of a leaf (performance class), numbered `LM1, LM2, …` in
/// left-to-right order, as in WEKA's output and the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LeafId(pub usize);

impl std::fmt::Display for LeafId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LM{}", self.0)
    }
}

/// A node of a fitted model tree.
///
/// Every node carries the linear model fitted over its training subset
/// (leaves use theirs for prediction; interior models drive smoothing and
/// remain available to the analysis layer), plus the subset's size and
/// target mean (used by the split-impact analysis of the paper's §V.A.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// A terminal node holding the prediction model of its class.
    Leaf {
        /// Leaf identifier (`LM<n>`).
        id: LeafId,
        /// The prediction model.
        model: LinearModel,
        /// Training instances that reached this leaf.
        n: usize,
        /// Mean target over those instances.
        mean: f64,
    },
    /// An interior decision node: `attr <= threshold` goes left.
    Split {
        /// Attribute (column) index tested.
        attr: usize,
        /// Decision threshold.
        threshold: f64,
        /// Model fitted over this node's whole subset (for smoothing).
        model: LinearModel,
        /// Training instances that reached this node.
        n: usize,
        /// Mean target over those instances.
        mean: f64,
        /// Subtree for `attr <= threshold`.
        left: Box<Node>,
        /// Subtree for `attr > threshold`.
        right: Box<Node>,
    },
}

impl Node {
    /// Training-instance count of the node.
    pub fn n(&self) -> usize {
        match self {
            Node::Leaf { n, .. } | Node::Split { n, .. } => *n,
        }
    }

    /// Mean training target of the node.
    pub fn mean(&self) -> f64 {
        match self {
            Node::Leaf { mean, .. } | Node::Split { mean, .. } => *mean,
        }
    }

    /// The node's fitted model.
    pub fn model(&self) -> &LinearModel {
        match self {
            Node::Leaf { model, .. } | Node::Split { model, .. } => model,
        }
    }

    /// `true` for leaves.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Number of leaves in the subtree.
    pub fn n_leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => left.n_leaves() + right.n_leaves(),
        }
    }

    /// Depth of the subtree (a lone leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    /// Collects the attribute indices used by splits in the subtree.
    pub fn split_attrs(&self, out: &mut Vec<usize>) {
        if let Node::Split {
            attr, left, right, ..
        } = self
        {
            out.push(*attr);
            left.split_attrs(out);
            right.split_attrs(out);
        }
    }

    /// Visits every leaf, left to right.
    pub fn for_each_leaf<'a>(&'a self, f: &mut impl FnMut(&'a Node)) {
        match self {
            Node::Leaf { .. } => f(self),
            Node::Split { left, right, .. } => {
                left.for_each_leaf(f);
                right.for_each_leaf(f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(id: usize, n: usize, mean: f64) -> Node {
        Node::Leaf {
            id: LeafId(id),
            model: LinearModel::constant(mean),
            n,
            mean,
        }
    }

    fn small_tree() -> Node {
        Node::Split {
            attr: 0,
            threshold: 1.0,
            model: LinearModel::constant(0.5),
            n: 10,
            mean: 0.5,
            left: Box::new(leaf(1, 6, 0.2)),
            right: Box::new(Node::Split {
                attr: 1,
                threshold: 2.0,
                model: LinearModel::constant(1.0),
                n: 4,
                mean: 1.0,
                left: Box::new(leaf(2, 2, 0.8)),
                right: Box::new(leaf(3, 2, 1.2)),
            }),
        }
    }

    #[test]
    fn counts_and_shape() {
        let t = small_tree();
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.n(), 10);
        assert!(!t.is_leaf());
        let mut attrs = Vec::new();
        t.split_attrs(&mut attrs);
        assert_eq!(attrs, vec![0, 1]);
    }

    #[test]
    fn leaf_visit_order() {
        let t = small_tree();
        let mut ids = Vec::new();
        t.for_each_leaf(&mut |n| {
            if let Node::Leaf { id, .. } = n {
                ids.push(id.0);
            }
        });
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn leaf_id_display() {
        assert_eq!(LeafId(8).to_string(), "LM8");
    }

    #[test]
    fn serde_roundtrip() {
        let t = small_tree();
        let json = serde_json::to_string(&t).unwrap();
        let back: Node = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
