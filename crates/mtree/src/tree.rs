//! The fitted model tree.

use serde::{Deserialize, Serialize};

use mtperf_linalg::stats;

use crate::build::{assign_leaf_ids, build};
use crate::node::{LeafId, Node};
use crate::{Dataset, M5Params, MtreeError};

/// A fitted M5' model tree.
///
/// # Example
///
/// ```
/// use mtperf_mtree::{Dataset, M5Params, ModelTree};
///
/// let mut data = Dataset::new(vec!["x".into()]).unwrap();
/// for i in 0..200 {
///     let x = i as f64 / 10.0;
///     let y = if x < 10.0 { x } else { 30.0 - 2.0 * x };
///     data.push_row(&[x], y).unwrap();
/// }
/// let tree = ModelTree::fit(&data, &M5Params::default().with_min_instances(8)).unwrap();
/// assert!(tree.n_leaves() >= 2);
/// assert!((tree.predict(&[5.0]) - 5.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelTree {
    root: Node,
    attr_names: Vec<String>,
    params: M5Params,
    n_train: usize,
    root_sd: f64,
    root_mean: f64,
}

impl ModelTree {
    /// Trains a tree on `data` with `params`.
    ///
    /// # Errors
    ///
    /// Returns [`MtreeError::EmptyDataset`] for an empty dataset,
    /// [`MtreeError::BadParams`] for invalid parameters, and propagates
    /// solver failures.
    pub fn fit(data: &Dataset, params: &M5Params) -> Result<Self, MtreeError> {
        params.validate()?;
        if data.n_rows() == 0 {
            return Err(MtreeError::EmptyDataset);
        }
        let mut fit_span = mtperf_obs::span("fit");
        fit_span.annotate_num("rows", data.n_rows() as f64);
        fit_span.annotate_num("attrs", data.n_attrs() as f64);
        let root_sd = stats::std_dev(data.targets());
        let root_mean = stats::mean(data.targets());
        let idx: Vec<usize> = (0..data.n_rows()).collect();
        let mut built = build(data, idx, params, root_sd, 0)?;
        let mut next = 0;
        assign_leaf_ids(&mut built.node, &mut next);
        fit_span.add("leaves", built.node.n_leaves() as u64);
        fit_span.add("depth", built.node.depth() as u64);
        Ok(ModelTree {
            root: built.node,
            attr_names: data.attr_names().to_vec(),
            params: params.clone(),
            n_train: data.n_rows(),
            root_sd,
            root_mean,
        })
    }

    /// The root node.
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// Attribute names the tree was trained with.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Training parameters used.
    pub fn params(&self) -> &M5Params {
        &self.params
    }

    /// Number of training instances.
    pub fn n_train(&self) -> usize {
        self.n_train
    }

    /// Standard deviation of the training targets.
    pub fn root_sd(&self) -> f64 {
        self.root_sd
    }

    /// Mean of the training targets.
    pub fn root_mean(&self) -> f64 {
        self.root_mean
    }

    /// Number of leaves (performance classes).
    pub fn n_leaves(&self) -> usize {
        self.root.n_leaves()
    }

    /// Tree depth (a single-leaf tree has depth 1).
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Predicts the target for `row`, applying smoothing if the tree was
    /// trained with it.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the attribute count.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert!(
            row.len() >= self.attr_names.len(),
            "row has {} values, tree expects {}",
            row.len(),
            self.attr_names.len()
        );
        if self.params.smoothing() {
            self.predict_smoothed(row)
        } else {
            self.leaf_for(row).model().predict(row)
        }
    }

    /// Predicts without smoothing (the raw leaf-model output); this is what
    /// the contribution analysis decomposes.
    pub fn predict_raw(&self, row: &[f64]) -> f64 {
        self.leaf_for(row).model().predict(row)
    }

    /// M5 smoothing: blend the leaf prediction with each ancestor model,
    /// `p' = (n·p + k·q) / (n + k)`, walking from the leaf to the root with
    /// `n` the instance count of the node below.
    fn predict_smoothed(&self, row: &[f64]) -> f64 {
        let k = self.params.smoothing_k();
        // Collect the path of nodes from root to leaf.
        let mut path: Vec<&Node> = Vec::new();
        let mut node = &self.root;
        loop {
            path.push(node);
            match node {
                Node::Leaf { .. } => break,
                Node::Split {
                    attr,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if row[*attr] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
        let leaf = path.last().expect("non-empty path");
        let mut p = leaf.model().predict(row);
        // Walk back up: the n in the formula is the instance count of the
        // node we came *from*.
        for w in path.windows(2).rev() {
            let (ancestor, below) = (w[0], w[1]);
            let q = ancestor.model().predict(row);
            let n = below.n() as f64;
            p = (n * p + k * q) / (n + k);
        }
        p
    }

    /// The leaf `row` is routed to.
    pub fn leaf_for(&self, row: &[f64]) -> &Node {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { .. } => return node,
                Node::Split {
                    attr,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if row[*attr] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// The identifier of the leaf `row` is routed to.
    pub fn leaf_id_for(&self, row: &[f64]) -> LeafId {
        match self.leaf_for(row) {
            Node::Leaf { id, .. } => *id,
            Node::Split { .. } => unreachable!("leaf_for returns leaves"),
        }
    }

    /// All leaves, left to right.
    pub fn leaves(&self) -> Vec<&Node> {
        let mut out = Vec::new();
        self.root.for_each_leaf(&mut |n| out.push(n));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn piecewise(n: i64) -> Dataset {
        let rows: Vec<[f64; 2]> = (0..n).map(|i| [(i % 40) as f64, (i % 7) as f64]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| {
                if r[0] <= 20.0 {
                    1.0 + 0.5 * r[0] + 0.1 * r[1]
                } else {
                    20.0 - 0.3 * r[0]
                }
            })
            .collect();
        Dataset::from_rows(vec!["x".into(), "z".into()], &rows, &ys).unwrap()
    }

    #[test]
    fn fit_predict_accuracy() {
        let d = piecewise(400);
        let tree = ModelTree::fit(
            &d,
            &M5Params::default()
                .with_min_instances(10)
                .with_smoothing(false),
        )
        .unwrap();
        // In-sample predictions must be near-exact for noise-free data.
        for i in 0..d.n_rows() {
            let p = tree.predict(&d.row(i));
            assert!(
                (p - d.target(i)).abs() < 0.5,
                "row {i}: {p} vs {}",
                d.target(i)
            );
        }
        assert_eq!(tree.n_train(), 400);
        assert!(tree.n_leaves() >= 2);
    }

    #[test]
    fn smoothing_changes_predictions_but_stays_close() {
        let d = piecewise(400);
        let smooth = ModelTree::fit(
            &d,
            &M5Params::default()
                .with_min_instances(10)
                .with_smoothing(true),
        )
        .unwrap();
        let raw = smooth.predict_raw(&[5.0, 3.0]);
        let sm = smooth.predict(&[5.0, 3.0]);
        // Smoothed differs from raw but not wildly.
        assert!((raw - sm).abs() < 2.0);
        if smooth.n_leaves() > 1 {
            assert_ne!(raw, sm);
        }
    }

    #[test]
    fn empty_dataset_rejected() {
        let d = Dataset::new(vec!["x".into()]).unwrap();
        assert!(matches!(
            ModelTree::fit(&d, &M5Params::default()),
            Err(MtreeError::EmptyDataset)
        ));
    }

    #[test]
    fn bad_params_rejected() {
        let d = piecewise(50);
        assert!(matches!(
            ModelTree::fit(&d, &M5Params::default().with_min_instances(0)),
            Err(MtreeError::BadParams(_))
        ));
    }

    #[test]
    fn single_instance_dataset_is_one_leaf() {
        let d = Dataset::from_rows(vec!["x".into()], &[[1.0]], &[7.0]).unwrap();
        let tree = ModelTree::fit(&d, &M5Params::default()).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict(&[123.0]), 7.0);
    }

    #[test]
    fn leaf_routing_is_consistent_with_prediction() {
        let d = piecewise(200);
        let tree = ModelTree::fit(
            &d,
            &M5Params::default()
                .with_min_instances(10)
                .with_smoothing(false),
        )
        .unwrap();
        for i in (0..d.n_rows()).step_by(17) {
            let row = d.row(i);
            let leaf = tree.leaf_for(&row);
            assert_eq!(tree.predict(&row), leaf.model().predict(&row));
            let id = tree.leaf_id_for(&row);
            assert!(id.0 >= 1 && id.0 <= tree.n_leaves());
        }
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn short_row_panics() {
        let d = piecewise(50);
        let tree = ModelTree::fit(&d, &M5Params::default()).unwrap();
        tree.predict(&[1.0]);
    }

    #[test]
    fn leaves_enumeration_matches_count() {
        let d = piecewise(400);
        let tree = ModelTree::fit(&d, &M5Params::default().with_min_instances(10)).unwrap();
        assert_eq!(tree.leaves().len(), tree.n_leaves());
    }

    #[test]
    fn serde_roundtrip() {
        let d = piecewise(100);
        let tree = ModelTree::fit(&d, &M5Params::default().with_min_instances(10)).unwrap();
        let json = serde_json::to_string(&tree).unwrap();
        let back: ModelTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tree);
        assert_eq!(back.predict(&[3.0, 2.0]), tree.predict(&[3.0, 2.0]));
    }
}
