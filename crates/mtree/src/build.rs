//! Tree construction: growth, node-model fitting, and pruning in one
//! bottom-up recursion.

use mtperf_linalg::stats;

use crate::node::{LeafId, Node};
use crate::split::best_split_with;
use crate::{Dataset, LinearModel, M5Params, MtreeError};

/// Result of building one subtree.
pub(crate) struct Built {
    pub node: Node,
    /// Inflated error estimate of the subtree (weighted over leaves).
    pub error: f64,
    /// Attributes referenced by splits in the subtree.
    pub attrs: Vec<usize>,
}

/// Recursively grows, fits, and (optionally) prunes the subtree over `idx`.
///
/// Follows M5' (Wang & Witten):
///
/// * stop splitting when the subset is small (`< 2·min_instances`), nearly
///   homogeneous (`sd < sd_fraction · root_sd`), at the depth limit, or no
///   admissible split reduces variance — such leaves predict the subset
///   mean (the paper's constant LM18 is one of these);
/// * otherwise split on the best SDR pair and recurse;
/// * fit this node's linear model over the attributes referenced in its
///   subtree, with greedy term elimination;
/// * prune: if the node model's inflated error is no worse than the
///   weighted subtree error, collapse to a leaf carrying the node model
///   (this is how multi-term leaf models like the paper's LM8 arise).
pub(crate) fn build(
    data: &Dataset,
    idx: Vec<usize>,
    params: &M5Params,
    root_sd: f64,
    depth: usize,
) -> Result<Built, MtreeError> {
    if idx.is_empty() {
        return Err(MtreeError::DegenerateData(format!(
            "empty partition reached the tree builder at depth {depth}"
        )));
    }
    mtperf_obs::add("mtree.nodes_built", 1);
    let ys: Vec<f64> = idx.iter().map(|&i| data.target(i)).collect();
    let mean = stats::mean(&ys);
    let sd = stats::std_dev(&ys);
    let n = idx.len();

    let depth_ok = params.max_depth().is_none_or(|d| depth < d);
    let homogeneous = sd < params.sd_fraction() * root_sd;
    let split = if depth_ok && !homogeneous && n >= 2 * params.min_instances() {
        best_split_with(data, &idx, params.min_instances(), params.parallelism())
    } else {
        None
    };
    if split.is_some() {
        mtperf_obs::add("mtree.splits_accepted", 1);
        if mtperf_obs::is_enabled() {
            // Per-depth winner counts need a formatted name; skip the
            // allocation entirely when tracing is off.
            mtperf_obs::add(&format!("mtree.splits_at_depth.{depth}"), 1);
        }
    }

    let Some(split) = split else {
        let model = LinearModel::constant(mean);
        let error = model.inflated_error(data, &idx);
        return Ok(Built {
            node: Node::Leaf {
                id: LeafId(0), // renumbered by the caller
                model,
                n,
                mean,
            },
            error,
            attrs: Vec::new(),
        });
    };

    let col = data.column(split.attr);
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        idx.iter().partition(|&&i| col[i] <= split.threshold);
    let left = build(data, left_idx, params, root_sd, depth + 1)?;
    let right = build(data, right_idx, params, root_sd, depth + 1)?;

    let mut attrs = left.attrs;
    attrs.extend(right.attrs);
    attrs.push(split.attr);
    attrs.sort_unstable();
    attrs.dedup();

    let model = LinearModel::fit_with_elimination(data, &idx, &attrs)?;
    let node_error = model.inflated_error(data, &idx);
    let nl = left.node.n() as f64;
    let nr = right.node.n() as f64;
    let subtree_error = (nl * left.error + nr * right.error) / (nl + nr);

    // The tolerance breaks exact-fit ties in favor of the simpler model.
    if params.prune() && node_error <= subtree_error * (1.0 + 1e-9) + 1e-12 {
        mtperf_obs::add("mtree.pruned_subtrees", 1);
        return Ok(Built {
            node: Node::Leaf {
                id: LeafId(0),
                model,
                n,
                mean,
            },
            error: node_error,
            attrs,
        });
    }

    Ok(Built {
        node: Node::Split {
            attr: split.attr,
            threshold: split.threshold,
            model,
            n,
            mean,
            left: Box::new(left.node),
            right: Box::new(right.node),
        },
        error: subtree_error,
        attrs,
    })
}

/// Renumbers leaves `LM1, LM2, …` left to right.
pub(crate) fn assign_leaf_ids(node: &mut Node, next: &mut usize) {
    match node {
        Node::Leaf { id, .. } => {
            *next += 1;
            *id = LeafId(*next);
        }
        Node::Split { left, right, .. } => {
            assign_leaf_ids(left, next);
            assign_leaf_ids(right, next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Piecewise-linear data: y = 2x for x <= 0, y = 10 − 3x for x > 0.
    fn piecewise() -> Dataset {
        let rows: Vec<[f64; 1]> = (-60..60).map(|i| [i as f64 / 10.0]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| {
                if r[0] <= 0.0 {
                    2.0 * r[0]
                } else {
                    10.0 - 3.0 * r[0]
                }
            })
            .collect();
        Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap()
    }

    fn params() -> M5Params {
        M5Params::default()
            .with_min_instances(10)
            .with_smoothing(false)
    }

    #[test]
    fn builds_and_prunes_piecewise_data() {
        let d = piecewise();
        let idx: Vec<usize> = (0..d.n_rows()).collect();
        let root_sd = stats::std_dev(d.targets());
        let built = build(&d, idx, &params(), root_sd, 0).unwrap();
        // Two linear regimes: the pruned tree should be small but not a
        // single leaf (a global linear model cannot fit the elbow).
        assert!(!built.node.is_leaf());
        assert!(built.node.n_leaves() <= 6);
        // Attributes used include x.
        assert!(built.attrs.contains(&0));
    }

    #[test]
    fn single_linear_regime_collapses_to_one_leaf() {
        // y = 3x + 1 globally: the root model is exact, so pruning collapses
        // everything.
        let rows: Vec<[f64; 1]> = (0..100).map(|i| [i as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] + 1.0).collect();
        let d = Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap();
        let idx: Vec<usize> = (0..100).collect();
        let root_sd = stats::std_dev(d.targets());
        let built = build(&d, idx, &params(), root_sd, 0).unwrap();
        assert!(built.node.is_leaf(), "{:?}", built.node.n_leaves());
        assert!(built.error < 1e-6);
    }

    #[test]
    fn unpruned_tree_is_at_least_as_large() {
        let d = piecewise();
        let idx: Vec<usize> = (0..d.n_rows()).collect();
        let root_sd = stats::std_dev(d.targets());
        let pruned = build(&d, idx.clone(), &params(), root_sd, 0).unwrap();
        let unpruned = build(&d, idx, &params().with_prune(false), root_sd, 0).unwrap();
        assert!(unpruned.node.n_leaves() >= pruned.node.n_leaves());
    }

    #[test]
    fn max_depth_limits_tree() {
        let d = piecewise();
        let idx: Vec<usize> = (0..d.n_rows()).collect();
        let root_sd = stats::std_dev(d.targets());
        let built = build(
            &d,
            idx,
            &params().with_prune(false).with_max_depth(Some(2)),
            root_sd,
            0,
        )
        .unwrap();
        assert!(built.node.depth() <= 3); // depth limit counts splits
    }

    #[test]
    fn leaf_ids_are_sequential_left_to_right() {
        let d = piecewise();
        let idx: Vec<usize> = (0..d.n_rows()).collect();
        let root_sd = stats::std_dev(d.targets());
        let mut built = build(&d, idx, &params().with_prune(false), root_sd, 0).unwrap();
        let mut next = 0;
        assign_leaf_ids(&mut built.node, &mut next);
        assert_eq!(next, built.node.n_leaves());
        let mut seen = Vec::new();
        built.node.for_each_leaf(&mut |n| {
            if let Node::Leaf { id, .. } = n {
                seen.push(id.0);
            }
        });
        let expect: Vec<usize> = (1..=seen.len()).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn node_counts_partition_instances() {
        let d = piecewise();
        let idx: Vec<usize> = (0..d.n_rows()).collect();
        let root_sd = stats::std_dev(d.targets());
        let built = build(&d, idx, &params(), root_sd, 0).unwrap();
        fn check(n: &Node) {
            if let Node::Split {
                left,
                right,
                n: total,
                ..
            } = n
            {
                assert_eq!(left.n() + right.n(), *total);
                check(left);
                check(right);
            }
        }
        check(&built.node);
        assert_eq!(built.node.n(), d.n_rows());
    }
}
