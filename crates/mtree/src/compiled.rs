//! Compiled batch inference: a fitted tree flattened into
//! structure-of-arrays form for high-throughput scoring.
//!
//! [`ModelTree::predict`] walks boxed nodes pointer by pointer and, under
//! smoothing, allocates a fresh path vector for every row — fine for a
//! single section, wasteful for scoring thousands. [`CompiledTree`] flattens
//! the fitted tree once into flat arrays:
//!
//! * **routing** — split attribute indices, thresholds, and interleaved
//!   child offsets, one entry per interior node in preorder; children that
//!   are leaves are encoded as negative offsets (`!leaf_index`), and the
//!   split direction selects a child by index (branchless), so routing is a
//!   tight loop over flat arrays with no pointer chasing and no
//!   data-dependent branches;
//! * **models** — every node's linear model packed into a shared
//!   [`ModelTable`]: one intercept per model plus `(attribute, coefficient)`
//!   term arrays addressed by a start-offset array;
//! * **smoothing paths** — for each leaf, the precomputed bottom-up sequence
//!   of `(ancestor model, instance count below)` pairs the M5 smoothing
//!   recurrence needs, so smoothed prediction needs no path collection at
//!   all.
//!
//! # Determinism contract
//!
//! Compiled prediction replays the *exact* floating-point operation sequence
//! of the interpreted walk — same comparison direction, same term order,
//! same blend expression `(n·p + k·q) / (n + k)` — so results are
//! **bit-identical** to [`ModelTree::predict`] for every row, with smoothing
//! on or off. [`CompiledTree::predict_batch`] fans row blocks out across the
//! deterministic [`parallel`](mtperf_linalg::parallel) engine (input-order
//! results, panic-isolated workers), so batch output is bit-identical at any
//! [`Parallelism`] setting. The differential test suite
//! (`tests/compiled_diff.rs`) pins this with `to_bits()` comparisons.
//!
//! # Example
//!
//! ```
//! use mtperf_linalg::Matrix;
//! use mtperf_mtree::{Dataset, M5Params, ModelTree};
//!
//! let rows: Vec<[f64; 1]> = (0..100).map(|i| [i as f64]).collect();
//! let ys: Vec<f64> = rows
//!     .iter()
//!     .map(|r| if r[0] <= 50.0 { r[0] } else { 100.0 - r[0] })
//!     .collect();
//! let d = Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap();
//! let tree = ModelTree::fit(&d, &M5Params::default().with_min_instances(8)).unwrap();
//! let compiled = tree.compile();
//! let batch = compiled.predict_batch(&d.to_matrix());
//! for (i, p) in batch.iter().enumerate() {
//!     assert_eq!(p.to_bits(), tree.predict(&d.row(i)).to_bits());
//! }
//! ```

use mtperf_detsim::clock;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use mtperf_linalg::parallel::{self, try_par_fill, CancelToken, Parallelism};
use mtperf_linalg::{LinalgError, Matrix};

use crate::node::Node;
use crate::rules::RuleSet;
use crate::{LinearModel, ModelTree, MtreeError};

/// Rows per cache block and per parallel work item: a block's working set
/// (row data + prediction/scratch lanes) stays L1/L2-resident while the
/// leaf-bucketed model-major loops stream over it, and blocks are small
/// enough to load-balance a 10 k-row batch across pool workers.
const ROW_BLOCK: usize = 512;

/// Reused per-thread scratch for [`CompiledTree::predict_block_into`]: the
/// leaf-routing/bucketing index arrays and the smoothing accumulator lane.
/// Kept in a thread-local so steady-state batch prediction performs zero
/// heap allocation per block — the buffers grow to the high-water mark of
/// `(n_rows_per_block, n_leaves)` once and are reused by every later block
/// (and every later batch) on that thread, pool workers included.
#[derive(Default)]
struct Scratch {
    /// `2 * n` lanes: rows' leaf ids, then row indices grouped by leaf.
    index: Vec<u32>,
    /// Rows per leaf (counting-sort histogram), `n_leaves` wide.
    counts: Vec<u32>,
    /// Bucket offsets (exclusive prefix sum), `n_leaves + 1` wide.
    starts: Vec<u32>,
    /// Scatter cursors, initialized from `starts`.
    next: Vec<u32>,
    /// Smoothing accumulator lane (`q` in the recurrence), `n` wide.
    q: Vec<f64>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Renders a caught panic payload the way the parallel engine does, so the
/// single-row fast path reports the same [`LinalgError::WorkerPanic`]
/// message a pooled worker would have.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// All linear models of a compiled artifact, packed into shared
/// structure-of-arrays storage.
///
/// Model `m` is `intercept[m] + Σ term_coef[t] · row[term_attr[t]]` for
/// `t` in `term_start[m] .. term_start[m + 1]`, accumulated in term order —
/// the same left-to-right sum [`LinearModel::predict`] computes.
#[derive(Debug, Clone, PartialEq)]
struct ModelTable {
    intercept: Vec<f64>,
    /// `len() == n_models + 1`; model `m` owns terms
    /// `term_start[m]..term_start[m + 1]`.
    term_start: Vec<u32>,
    term_attr: Vec<u32>,
    term_coef: Vec<f64>,
}

impl ModelTable {
    fn new() -> Self {
        ModelTable {
            intercept: Vec::new(),
            term_start: vec![0],
            term_attr: Vec::new(),
            term_coef: Vec::new(),
        }
    }

    /// Packs `model`, returning its index.
    fn push(&mut self, model: &LinearModel) -> u32 {
        let idx = self.intercept.len() as u32;
        self.intercept.push(model.intercept());
        for &(attr, coef) in model.terms() {
            self.term_attr.push(attr as u32);
            self.term_coef.push(coef);
        }
        self.term_start.push(self.term_attr.len() as u32);
        idx
    }

    /// Evaluates model `m` on `row`, replaying [`LinearModel::predict`]'s
    /// operation order exactly (accumulate terms from 0.0, then add the
    /// intercept). Slice-based iteration keeps the term loop free of
    /// per-element bounds checks.
    #[inline]
    fn eval(&self, m: usize, row: &[f64]) -> f64 {
        let start = self.term_start[m] as usize;
        let end = self.term_start[m + 1] as usize;
        let attrs = &self.term_attr[start..end];
        let coefs = &self.term_coef[start..end];
        let mut acc = 0.0;
        for (&a, &c) in attrs.iter().zip(coefs) {
            acc += c * row[a as usize];
        }
        self.intercept[m] + acc
    }

    /// Row-quad-major accumulation: adds model `m`'s terms, in term order,
    /// to `acc[r]` for every row index in `idx` (`acc` starts at 0.0, the
    /// intercept is applied by the caller — the per-row operation sequence
    /// is exactly [`ModelTable::eval`]'s).
    ///
    /// The quad iteration is hoisted to the outer loop (the previous
    /// term-major form re-walked the whole index slice once per term via a
    /// cloned chunk iterator, touching every `acc[r]` cache line `n_terms`
    /// times). Each quad loads its four accumulators into locals once, runs
    /// all terms with the attribute/coefficient pair hoisted per iteration,
    /// and stores the four sums back once. The four chains are independent,
    /// so the pipeliner can overlap their gathers without vectorizing —
    /// this shape no longer depends on the autovectorizer firing at all.
    ///
    /// Bit-identity: every row is owned by exactly one model, and its local
    /// accumulator receives exactly the same `+= c * data[...]` sequence in
    /// the same term order as the scalar walk — only the interleaving
    /// *across* rows changes, which cannot affect any row's bit pattern.
    fn accumulate(&self, m: usize, data: &[f64], cols: usize, idx: &[u32], acc: &mut [f64]) {
        let start = self.term_start[m] as usize;
        let end = self.term_start[m + 1] as usize;
        let attrs = &self.term_attr[start..end];
        let coefs = &self.term_coef[start..end];
        let quads = idx.chunks_exact(4);
        let tail = quads.remainder();
        for quad in quads {
            let [r0, r1, r2, r3] = [
                quad[0] as usize,
                quad[1] as usize,
                quad[2] as usize,
                quad[3] as usize,
            ];
            let (b0, b1, b2, b3) = (r0 * cols, r1 * cols, r2 * cols, r3 * cols);
            let mut a0 = acc[r0];
            let mut a1 = acc[r1];
            let mut a2 = acc[r2];
            let mut a3 = acc[r3];
            for (&a, &c) in attrs.iter().zip(coefs) {
                let a = a as usize;
                a0 += c * data[b0 + a];
                a1 += c * data[b1 + a];
                a2 += c * data[b2 + a];
                a3 += c * data[b3 + a];
            }
            acc[r0] = a0;
            acc[r1] = a1;
            acc[r2] = a2;
            acc[r3] = a3;
        }
        for &r in tail {
            let r = r as usize;
            let base = r * cols;
            let mut sum = acc[r];
            for (&a, &c) in attrs.iter().zip(coefs) {
                sum += c * data[base + a as usize];
            }
            acc[r] = sum;
        }
    }

    /// Fused single-pass form of [`ModelTable::accumulate`] + intercept for
    /// models with at most two terms (the common case after M5' attribute
    /// elimination): writes the finished prediction straight into `out[r]`
    /// and returns `true`, or returns `false` for the caller to take the
    /// general multi-pass path. The explicit `0.0 +` seeds reproduce the
    /// scalar accumulator exactly (they differ from a bare term only on a
    /// `-0.0` product, which must round to `+0.0` here too).
    fn eval_small(
        &self,
        m: usize,
        data: &[f64],
        cols: usize,
        idx: &[u32],
        out: &mut [f64],
    ) -> bool {
        let start = self.term_start[m] as usize;
        let end = self.term_start[m + 1] as usize;
        let i = self.intercept[m];
        // Same 4-wide row chunking as `accumulate`: chunks write disjoint
        // rows with the identical per-row expression, so the unrolling is
        // invisible to the bit pattern.
        let quads = idx.chunks_exact(4);
        let tail = quads.remainder();
        match end - start {
            0 => {
                for quad in quads {
                    out[quad[0] as usize] = i + 0.0;
                    out[quad[1] as usize] = i + 0.0;
                    out[quad[2] as usize] = i + 0.0;
                    out[quad[3] as usize] = i + 0.0;
                }
                for &r in tail {
                    out[r as usize] = i + 0.0;
                }
                true
            }
            1 => {
                let a = self.term_attr[start] as usize;
                let c = self.term_coef[start];
                let one = |r: usize| i + (0.0 + c * data[r * cols + a]);
                for quad in quads {
                    out[quad[0] as usize] = one(quad[0] as usize);
                    out[quad[1] as usize] = one(quad[1] as usize);
                    out[quad[2] as usize] = one(quad[2] as usize);
                    out[quad[3] as usize] = one(quad[3] as usize);
                }
                for &r in tail {
                    out[r as usize] = one(r as usize);
                }
                true
            }
            2 => {
                let a0 = self.term_attr[start] as usize;
                let c0 = self.term_coef[start];
                let a1 = self.term_attr[start + 1] as usize;
                let c1 = self.term_coef[start + 1];
                let two = |r: usize| {
                    let base = r * cols;
                    i + ((0.0 + c0 * data[base + a0]) + c1 * data[base + a1])
                };
                for quad in quads {
                    out[quad[0] as usize] = two(quad[0] as usize);
                    out[quad[1] as usize] = two(quad[1] as usize);
                    out[quad[2] as usize] = two(quad[2] as usize);
                    out[quad[3] as usize] = two(quad[3] as usize);
                }
                for &r in tail {
                    out[r as usize] = two(r as usize);
                }
                true
            }
            _ => false,
        }
    }

    fn n_models(&self) -> usize {
        self.intercept.len()
    }
}

/// Encodes a leaf index as a negative child offset.
#[inline]
fn encode_leaf(leaf: usize) -> i32 {
    !(leaf as i32)
}

/// Lazily measured per-row cost of the blocked serial path, in nanoseconds —
/// the "measured, not guessed" half of the serial/parallel cutover (the
/// other half is [`parallel::dispatch_overhead`]). One cell per compiled
/// artifact, filled by timing the first real block the artifact predicts
/// under [`Parallelism::Auto`].
///
/// Calibration state is deliberately excluded from identity: cloning caries
/// the measurement along (same tree ⇒ same cost), and two otherwise-equal
/// artifacts compare equal whether or not either has calibrated.
#[derive(Debug, Default)]
struct CutoverCell(OnceLock<f64>);

impl Clone for CutoverCell {
    fn clone(&self) -> Self {
        let cell = CutoverCell(OnceLock::new());
        if let Some(&v) = self.0.get() {
            let _ = cell.0.set(v);
        }
        cell
    }
}

impl PartialEq for CutoverCell {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// A [`ModelTree`] flattened for batch inference. Built by
/// [`ModelTree::compile`]; see the [module docs](self) for the layout and
/// the bit-identity contract.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTree {
    n_attrs: usize,
    n_leaves: usize,
    smoothing: bool,
    smoothing_k: f64,
    /// Root reference: interior node index, or `!leaf` for a lone-leaf tree.
    root: i32,
    /// Interior nodes, preorder. Children are stored interleaved —
    /// `children[2 * i]` is node `i`'s left child, `children[2 * i + 1]`
    /// its right — so routing selects by index instead of by branch (the
    /// 50/50 data-dependent split direction is unpredictable; a mispredict
    /// per level would dominate the per-row cost). Negative children are
    /// `!leaf_index`.
    split_attr: Vec<u32>,
    threshold: Vec<f64>,
    children: Vec<i32>,
    models: ModelTable,
    /// Model index of each leaf (leaves numbered left to right from 0).
    leaf_model: Vec<u32>,
    /// `len() == n_leaves + 1`; leaf `l` owns smoothing-path entries
    /// `path_start[l]..path_start[l + 1]` of the two arrays below.
    path_start: Vec<u32>,
    /// Ancestor model index, bottom-up (parent of the leaf first).
    path_model: Vec<u32>,
    /// Instance count `n` of the node *below* each ancestor, as f64.
    path_n: Vec<f64>,
    /// Measured per-row cost for the adaptive serial/parallel cutover.
    per_row_ns: CutoverCell,
}

impl CompiledTree {
    fn from_tree(tree: &ModelTree) -> CompiledTree {
        let mut c = CompiledTree {
            n_attrs: tree.attr_names().len(),
            n_leaves: 0,
            smoothing: tree.params().smoothing(),
            smoothing_k: tree.params().smoothing_k(),
            root: 0,
            split_attr: Vec::new(),
            threshold: Vec::new(),
            children: Vec::new(),
            models: ModelTable::new(),
            leaf_model: Vec::new(),
            path_start: vec![0],
            path_model: Vec::new(),
            path_n: Vec::new(),
            per_row_ns: CutoverCell::default(),
        };
        let mut ancestors: Vec<(u32, f64)> = Vec::new();
        c.root = c.flatten(tree.root(), &mut ancestors);
        c.n_leaves = c.leaf_model.len();
        c
    }

    /// Flattens `node`, returning its routing reference (interior index or
    /// encoded leaf). `ancestors` carries the `(model, n)` of every node on
    /// the path above, root first.
    fn flatten(&mut self, node: &Node, ancestors: &mut Vec<(u32, f64)>) -> i32 {
        match node {
            Node::Leaf { model, n, .. } => {
                let model_idx = self.models.push(model);
                let leaf = self.leaf_model.len();
                self.leaf_model.push(model_idx);
                // The smoothing recurrence walks bottom-up; `n` is the count
                // of the node *below* each ancestor (the leaf itself first).
                for i in (0..ancestors.len()).rev() {
                    self.path_model.push(ancestors[i].0);
                    self.path_n.push(if i + 1 == ancestors.len() {
                        *n as f64
                    } else {
                        ancestors[i + 1].1
                    });
                }
                self.path_start.push(self.path_model.len() as u32);
                encode_leaf(leaf)
            }
            Node::Split {
                attr,
                threshold,
                model,
                n,
                left,
                right,
                ..
            } => {
                let model_idx = self.models.push(model);
                let idx = self.split_attr.len();
                self.split_attr.push(*attr as u32);
                self.threshold.push(*threshold);
                self.children.push(0);
                self.children.push(0);
                ancestors.push((model_idx, *n as f64));
                let l = self.flatten(left, ancestors);
                let r = self.flatten(right, ancestors);
                ancestors.pop();
                self.children[2 * idx] = l;
                self.children[2 * idx + 1] = r;
                idx as i32
            }
        }
    }

    /// Attribute count the tree was trained with (rows must be at least
    /// this long).
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// Number of leaves (performance classes).
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Number of interior routing nodes.
    pub fn n_splits(&self) -> usize {
        self.split_attr.len()
    }

    /// Total packed models (one per node of the source tree).
    pub fn n_models(&self) -> usize {
        self.models.n_models()
    }

    /// Whether predictions are smoothed along the root path.
    pub fn smoothing(&self) -> bool {
        self.smoothing
    }

    /// Routes `row` to its leaf index (left-to-right, 0-based).
    #[inline]
    fn route(&self, row: &[f64]) -> usize {
        let mut node = self.root;
        while node >= 0 {
            let i = node as usize;
            // Branchless child select: `<=` goes left, everything else —
            // including NaN — goes right, exactly like the interpreted walk.
            let goes_left = (row[self.split_attr[i] as usize] <= self.threshold[i]) as usize;
            node = self.children[2 * i + 1 - goes_left];
        }
        !node as usize
    }

    #[inline]
    fn predict_leaf(&self, leaf: usize, row: &[f64]) -> f64 {
        let mut p = self.models.eval(self.leaf_model[leaf] as usize, row);
        if self.smoothing {
            let k = self.smoothing_k;
            let start = self.path_start[leaf] as usize;
            let end = self.path_start[leaf + 1] as usize;
            let models = &self.path_model[start..end];
            let below = &self.path_n[start..end];
            for (&m, &n) in models.iter().zip(below) {
                let q = self.models.eval(m as usize, row);
                p = (n * p + k * q) / (n + k);
            }
        }
        p
    }

    /// Predicts one row — bit-identical to [`ModelTree::predict`].
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the attribute count, like the
    /// interpreted walk.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert!(
            row.len() >= self.n_attrs,
            "row has {} values, tree expects {}",
            row.len(),
            self.n_attrs
        );
        self.predict_leaf(self.route(row), row)
    }

    /// Predicts every row of `rows` with the process-wide default thread
    /// budget ([`parallel::global`]).
    ///
    /// # Panics
    ///
    /// Panics if `rows` has fewer columns than the attribute count, or if a
    /// worker panics (see [`CompiledTree::try_predict_batch_with`] for the
    /// error-returning form).
    pub fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
        self.predict_batch_with(rows, parallel::global())
    }

    /// [`CompiledTree::predict_batch`] with an explicit thread budget.
    /// Output is bit-identical at any setting.
    ///
    /// # Panics
    ///
    /// Same as [`CompiledTree::predict_batch`].
    pub fn predict_batch_with(&self, rows: &Matrix, par: Parallelism) -> Vec<f64> {
        self.try_predict_batch_with(rows, par)
            .unwrap_or_else(|e| panic!("batch prediction failed: {e}"))
    }

    /// Panic-isolated batch prediction: row blocks fan out through
    /// [`try_par_map`], results return in input order, and a panicking
    /// worker surfaces as [`MtreeError::Linalg`] (worker panic) instead of
    /// unwinding.
    ///
    /// # Errors
    ///
    /// Returns [`MtreeError::RowLengthMismatch`] when `rows` is narrower
    /// than the attribute count, and the structured worker-panic error on
    /// internal failure.
    pub fn try_predict_batch_with(
        &self,
        rows: &Matrix,
        par: Parallelism,
    ) -> Result<Vec<f64>, MtreeError> {
        self.batch_core(rows, par, None)
    }

    /// [`CompiledTree::try_predict_batch_with`] under a cooperative
    /// [`CancelToken`]: the token (an explicit cancel or an expired
    /// deadline) is consulted before every row block on every worker, so a
    /// fired token stops the batch within one block's worth of work per
    /// thread. This is how a serving deadline bounds a single request's
    /// compute.
    ///
    /// # Errors
    ///
    /// Returns [`MtreeError::Cancelled`] when the token fires mid-batch (all
    /// partial results discarded), plus every error of
    /// [`CompiledTree::try_predict_batch_with`].
    pub fn try_predict_batch_cancel(
        &self,
        rows: &Matrix,
        par: Parallelism,
        cancel: &CancelToken,
    ) -> Result<Vec<f64>, MtreeError> {
        self.batch_core(rows, par, Some(cancel))
    }

    fn batch_core(
        &self,
        rows: &Matrix,
        par: Parallelism,
        cancel: Option<&CancelToken>,
    ) -> Result<Vec<f64>, MtreeError> {
        if rows.cols() < self.n_attrs {
            return Err(MtreeError::RowLengthMismatch {
                expected: self.n_attrs,
                found: rows.cols(),
            });
        }
        let n = rows.rows();
        let cols = rows.cols();
        let data = rows.as_slice();
        // Zero- and single-row batches return without touching the pool,
        // the batch span, or the leaf-bucket counters — a "bucketing" of
        // one row is pure noise in the occupancy ratio. The error ladder
        // is unchanged: an empty batch succeeds even under a fired token,
        // a fired token beats a single row's work, and a panic in that
        // row's models surfaces as the same `WorkerPanic { index: 0 }` a
        // pooled worker would report.
        if n == 0 {
            return Ok(Vec::new());
        }
        if n == 1 {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(MtreeError::Cancelled);
            }
            let row = &data[..cols];
            return catch_unwind(AssertUnwindSafe(|| self.predict_leaf(self.route(row), row)))
                .map(|p| vec![p])
                .map_err(|payload| {
                    MtreeError::from(LinalgError::WorkerPanic {
                        index: 0,
                        message: panic_message(payload.as_ref()),
                    })
                });
        }
        let par = self.effective_parallelism(par, n, data, cols);
        let mut batch_span = mtperf_obs::span("predict_batch");
        batch_span.annotate_num("rows", n as f64);
        batch_span.annotate_num("blocks", n.div_ceil(ROW_BLOCK) as f64);
        let t0 = batch_span.is_recording().then(clock::now);
        // Blocks are written in place: each worker fills its slice of the
        // output directly, so there is no per-block `Vec` and no final
        // flatten copy over the whole batch.
        let mut out = vec![0.0f64; n];
        try_par_fill(par, &mut out, ROW_BLOCK, cancel, |start, block_out| {
            let rows_here = block_out.len();
            let mut block_span = mtperf_obs::span_idx("predict_block", start / ROW_BLOCK);
            block_span.add("rows", rows_here as u64);
            SCRATCH.with(|s| {
                self.predict_block_into(
                    &data[start * cols..(start + rows_here) * cols],
                    cols,
                    block_out,
                    &mut s.borrow_mut(),
                );
            });
        })
        .map_err(MtreeError::from)?;
        if let Some(t0) = t0 {
            let secs = clock::now().saturating_sub(t0).as_secs_f64();
            if secs > 0.0 {
                mtperf_obs::gauge("predict.rows_per_sec", n as f64 / secs);
            }
        }
        Ok(out)
    }

    /// Resolves the caller's thread request for one batch. Only
    /// [`Parallelism::Auto`] is adaptive: explicit `Off` / `Fixed` are
    /// honored verbatim (the differential suite relies on `Fixed(n)`
    /// actually exercising the pool, and benchmarks need raw per-thread
    /// numbers). Under `Auto` with more than one thread available, batches
    /// below the measured cutover run serially — dispatch overhead would
    /// outweigh the parallel win. Output is bit-identical either way.
    fn effective_parallelism(
        &self,
        par: Parallelism,
        n: usize,
        data: &[f64],
        cols: usize,
    ) -> Parallelism {
        if !matches!(par, Parallelism::Auto) {
            return par;
        }
        let threads = par.threads();
        if threads <= 1 {
            return par; // resolves to serial anyway
        }
        if n < self.cutover_rows(threads, self.calibrate(data, cols)) {
            Parallelism::Off
        } else {
            par
        }
    }

    /// Measured per-row nanoseconds of the serial blocked path: times the
    /// first `min(n, ROW_BLOCK)` rows of the actual batch into a throwaway
    /// buffer, once per artifact. The duplicated work is one block
    /// (microseconds); it also contributes one block's worth of
    /// `predict.leaf_buckets_*` counts, which is honest — those rows were
    /// bucketed.
    fn calibrate(&self, data: &[f64], cols: usize) -> f64 {
        *self.per_row_ns.0.get_or_init(|| {
            let rows = (data.len() / cols).clamp(1, ROW_BLOCK);
            let mut out = vec![0.0f64; rows];
            let t = clock::now();
            SCRATCH.with(|s| {
                self.predict_block_into(&data[..rows * cols], cols, &mut out, &mut s.borrow_mut());
            });
            // Floor at 0.1 ns/row: below that the measurement is timer
            // noise and the cutover division would explode. (Under a
            // virtual clock the elapsed time is zero, so the floor is also
            // what makes simulated calibration deterministic.)
            (clock::now().saturating_sub(t).as_nanos() as f64 / rows as f64).max(0.1)
        })
    }

    /// Batch size above which parallel dispatch wins for `threads` workers.
    /// Parallel saves `n · per_row · (1 − 1/t)` of wall time but pays the
    /// pool's dispatch latency; the break-even with a 2× safety margin is
    /// `n* = 2 · overhead · t / (per_row · (t − 1))`, clamped to at least
    /// two blocks (below that there is nothing to share) and a sane upper
    /// bound so a mis-measured overhead can never pin huge batches serial.
    fn cutover_rows(&self, threads: usize, per_row_ns: f64) -> usize {
        let overhead_ns = parallel::dispatch_overhead().as_nanos() as f64;
        let t = threads as f64;
        let n = 2.0 * overhead_ns * t / (per_row_ns * (t - 1.0));
        (n as usize).clamp(2 * ROW_BLOCK, 4 << 20)
    }

    /// The measured serial/parallel cutover in rows for the process-wide
    /// thread budget: batches at least this large go parallel under
    /// [`Parallelism::Auto`]. `None` until some batch has calibrated the
    /// per-row cost, or when only one thread is available (everything runs
    /// serially; there is no cutover to report).
    pub fn parallel_cutover(&self) -> Option<usize> {
        let threads = parallel::global().threads();
        if threads <= 1 {
            return None;
        }
        let per_row = *self.per_row_ns.0.get()?;
        Some(self.cutover_rows(threads, per_row))
    }

    /// Leaf-grouped evaluation of one row block, written into `out`.
    ///
    /// Routes every row, buckets the row indices by leaf (counting sort),
    /// then evaluates model-major: each leaf's model — and, when smoothing,
    /// each ancestor model on its path — runs over all of that leaf's rows
    /// at once via [`ModelTable::accumulate`]. Every row still sees the
    /// exact operation sequence of the scalar walk (terms in order, then
    /// `intercept + acc`, then the bottom-up smoothing blend), so results
    /// are bit-identical; only the schedule changes, turning data-dependent
    /// chained loads and an unpredictable per-row branch pattern into
    /// independent streaming multiply-adds.
    ///
    /// `out` doubles as the `p` accumulator lane and must arrive zeroed
    /// (every caller hands a slice of a fresh `vec![0.0; _]`); all index
    /// and smoothing buffers come from `s` and allocate nothing once warm.
    fn predict_block_into(&self, data: &[f64], cols: usize, out: &mut [f64], s: &mut Scratch) {
        let n = data.len() / cols;
        debug_assert_eq!(out.len(), n);
        s.index.clear();
        s.index.resize(2 * n, 0);
        let (leaf_of, grouped) = s.index.split_at_mut(n);
        s.counts.clear();
        s.counts.resize(self.n_leaves, 0);
        for (r, leaf) in leaf_of.iter_mut().enumerate() {
            let l = self.route(&data[r * cols..(r + 1) * cols]);
            *leaf = l as u32;
            s.counts[l] += 1;
        }
        if mtperf_obs::is_enabled() {
            // Leaf-bucket occupancy: how many of the tree's leaves this block
            // actually touched. High counts mean scattered routing (poor
            // model-major locality); the ratio to `n_leaves` is the fill rate.
            let hit = s.counts.iter().filter(|&&c| c > 0).count() as u64;
            mtperf_obs::add("predict.leaf_buckets_hit", hit);
            mtperf_obs::add("predict.leaf_buckets_total", self.n_leaves as u64);
        }
        // Prefix-sum the counts into bucket offsets, then scatter the row
        // indices grouped by leaf (stable: ascending row order per leaf).
        s.starts.clear();
        s.starts.resize(self.n_leaves + 1, 0);
        for l in 0..self.n_leaves {
            s.starts[l + 1] = s.starts[l] + s.counts[l];
        }
        s.next.clear();
        s.next.extend_from_slice(&s.starts);
        for (r, &l) in leaf_of.iter().enumerate() {
            let slot = &mut s.next[l as usize];
            grouped[*slot as usize] = r as u32;
            *slot += 1;
        }

        // Smoothing walks each leaf's path bottom-up, so the *root* blend is
        // the final operation for every row and uses the same model for
        // every leaf. That last step is hoisted out of the per-bucket loop
        // below into one sequential pass over the whole block (`q` streams
        // through the rows in storage order with no index indirection).
        let blend_root = self.smoothing && !self.split_attr.is_empty();
        let p: &mut [f64] = out;
        if self.smoothing {
            s.q.clear();
            s.q.resize(n, 0.0);
        }
        let q = &mut s.q;
        let k = self.smoothing_k;
        for leaf in 0..self.n_leaves {
            let idx = &grouped[s.starts[leaf] as usize..s.starts[leaf + 1] as usize];
            if idx.is_empty() {
                continue;
            }
            let m = self.leaf_model[leaf] as usize;
            if !self.models.eval_small(m, data, cols, idx, p) {
                self.models.accumulate(m, data, cols, idx, p);
                let intercept = self.models.intercept[m];
                for &r in idx {
                    let finished = intercept + p[r as usize];
                    p[r as usize] = finished;
                }
            }
            if self.smoothing {
                let mut path = self.path_start[leaf] as usize..self.path_start[leaf + 1] as usize;
                if blend_root {
                    path.end -= 1; // the shared root entry runs in the global pass
                }
                for t in path {
                    let am = self.path_model[t] as usize;
                    let an = self.path_n[t];
                    self.models.accumulate(am, data, cols, idx, q);
                    let a_intercept = self.models.intercept[am];
                    for &r in idx {
                        let r = r as usize;
                        let qv = a_intercept + q[r];
                        p[r] = (an * p[r] + k * qv) / (an + k);
                        q[r] = 0.0;
                    }
                }
            }
        }
        if blend_root {
            // Global root blend: accumulate the root model's terms for every
            // row in storage order (sequential streaming loads the optimizer
            // can pipeline), then apply the final recurrence step. The root
            // entry is the last of every leaf's path; its per-row `n` is the
            // instance count of the root child on that row's side.
            let root_m = self.path_model[self.path_start[1] as usize - 1] as usize;
            let t0 = self.models.term_start[root_m] as usize;
            let t1 = self.models.term_start[root_m + 1] as usize;
            // All terms but the last stream into `q`; the last term (when
            // there is one) fuses into the blend pass below, finishing the
            // accumulator in the scalar walk's exact order.
            for t in t0..t1.max(t0 + 1) - 1 {
                let a = self.models.term_attr[t] as usize;
                let c = self.models.term_coef[t];
                for (qr, row) in q.iter_mut().zip(data.chunks_exact(cols)) {
                    *qr += c * row[a];
                }
            }
            let root_intercept = self.models.intercept[root_m];
            let last = (t1 > t0).then(|| {
                (
                    self.models.term_attr[t1 - 1] as usize,
                    self.models.term_coef[t1 - 1],
                )
            });
            for r in 0..n {
                let l = leaf_of[r] as usize;
                let an = self.path_n[self.path_start[l + 1] as usize - 1];
                let acc = match last {
                    Some((a, c)) => q[r] + c * data[r * cols + a],
                    None => q[r],
                };
                let qv = root_intercept + acc;
                p[r] = (an * p[r] + k * qv) / (an + k);
            }
        }
    }
}

impl ModelTree {
    /// Flattens the fitted tree into the compiled batch-inference form.
    /// Predictions are bit-identical to [`ModelTree::predict`]; see the
    /// [`compiled`](self) module docs.
    pub fn compile(&self) -> CompiledTree {
        CompiledTree::from_tree(self)
    }
}

/// A [`RuleSet`] flattened for batch inference: rule conditions packed into
/// parallel arrays (first-match evaluation order preserved), rule models in
/// a shared [`ModelTable`]. Bit-identical to [`RuleSet::predict`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledRules {
    n_attrs: usize,
    /// `len() == n_rules + 1`; rule `r` owns conditions
    /// `rule_start[r]..rule_start[r + 1]`.
    rule_start: Vec<u32>,
    cond_attr: Vec<u32>,
    cond_threshold: Vec<f64>,
    /// `true` for `attr > threshold`, `false` for `attr <= threshold`.
    cond_greater: Vec<bool>,
    /// One model per rule, in rule order.
    models: ModelTable,
}

impl CompiledRules {
    fn from_rules(rules: &RuleSet) -> CompiledRules {
        let mut c = CompiledRules {
            n_attrs: rules.attr_names().len(),
            rule_start: vec![0],
            cond_attr: Vec::new(),
            cond_threshold: Vec::new(),
            cond_greater: Vec::new(),
            models: ModelTable::new(),
        };
        for rule in rules.rules() {
            for cond in &rule.conditions {
                c.cond_attr.push(cond.attr as u32);
                c.cond_threshold.push(cond.threshold);
                c.cond_greater.push(cond.greater);
            }
            c.rule_start.push(c.cond_attr.len() as u32);
            c.models.push(&rule.model);
        }
        c
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.models.n_models()
    }

    /// `true` when there are no rules.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attribute count of the source rule set.
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// Index of the first rule matching `row`, or `None`.
    #[inline]
    fn first_match(&self, row: &[f64]) -> Option<usize> {
        'rules: for r in 0..self.len() {
            let start = self.rule_start[r] as usize;
            let end = self.rule_start[r + 1] as usize;
            for c in start..end {
                let v = row[self.cond_attr[c] as usize];
                let holds = if self.cond_greater[c] {
                    v > self.cond_threshold[c]
                } else {
                    v <= self.cond_threshold[c]
                };
                if !holds {
                    continue 'rules;
                }
            }
            return Some(r);
        }
        None
    }

    /// Predicts via the first matching rule — bit-identical to
    /// [`RuleSet::predict`].
    ///
    /// # Panics
    ///
    /// Panics if no rule matches, like the interpreted rule set (impossible
    /// for tree-derived rules over finite rows).
    pub fn predict(&self, row: &[f64]) -> f64 {
        let r = self
            .first_match(row)
            .expect("tree-derived rules partition the input space");
        self.models.eval(r, row)
    }

    /// Predicts every row of `rows` with the process-wide default thread
    /// budget. Bit-identical to per-row [`RuleSet::predict`] at any
    /// [`Parallelism`] setting.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is narrower than the attribute count or no rule
    /// matches a row.
    pub fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
        self.predict_batch_with(rows, parallel::global())
    }

    /// [`CompiledRules::predict_batch`] with an explicit thread budget.
    ///
    /// # Panics
    ///
    /// Same as [`CompiledRules::predict_batch`].
    pub fn predict_batch_with(&self, rows: &Matrix, par: Parallelism) -> Vec<f64> {
        assert!(
            rows.cols() >= self.n_attrs,
            "matrix has {} columns, rules expect {}",
            rows.cols(),
            self.n_attrs
        );
        let n = rows.rows();
        if n == 0 {
            return Vec::new();
        }
        // Same in-place block fill as the tree path: workers write their
        // slice of the output directly, no per-block buffers or flatten.
        let mut out = vec![0.0f64; n];
        try_par_fill(par, &mut out, ROW_BLOCK, None, |start, block| {
            for (i, v) in block.iter_mut().enumerate() {
                *v = self.predict(rows.row(start + i));
            }
        })
        .unwrap_or_else(|e: LinalgError| panic!("batch rule prediction failed: {e}"));
        out
    }
}

impl RuleSet {
    /// Flattens the rule list into the compiled batch-inference form.
    /// Predictions are bit-identical to [`RuleSet::predict`].
    pub fn compile(&self) -> CompiledRules {
        CompiledRules::from_rules(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, M5Params};

    fn piecewise(n: i64) -> Dataset {
        let rows: Vec<[f64; 3]> = (0..n)
            .map(|i| [(i % 37) as f64, (i % 11) as f64, (i % 5) as f64])
            .collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| {
                if r[0] <= 18.0 {
                    1.0 + 0.4 * r[1] - 0.1 * r[2]
                } else {
                    9.0 - 0.2 * r[0] + 0.3 * r[2]
                }
            })
            .collect();
        Dataset::from_rows(vec!["a".into(), "b".into(), "c".into()], &rows, &ys).unwrap()
    }

    fn fit(data: &Dataset, smoothing: bool) -> ModelTree {
        ModelTree::fit(
            data,
            &M5Params::default()
                .with_min_instances(12)
                .with_smoothing(smoothing),
        )
        .unwrap()
    }

    #[test]
    fn layout_counts_match_tree() {
        let d = piecewise(300);
        let tree = fit(&d, true);
        let c = tree.compile();
        assert_eq!(c.n_leaves(), tree.n_leaves());
        assert_eq!(c.n_splits(), tree.n_leaves() - 1);
        assert_eq!(c.n_models(), 2 * tree.n_leaves() - 1);
        assert_eq!(c.n_attrs(), 3);
        assert!(c.smoothing());
    }

    #[test]
    fn single_row_predictions_are_bit_identical() {
        let d = piecewise(300);
        for smoothing in [false, true] {
            let tree = fit(&d, smoothing);
            let c = tree.compile();
            for i in 0..d.n_rows() {
                let row = d.row(i);
                assert_eq!(
                    c.predict(&row).to_bits(),
                    tree.predict(&row).to_bits(),
                    "row {i}, smoothing {smoothing}"
                );
            }
        }
    }

    #[test]
    fn batch_matches_serial_at_any_parallelism() {
        let d = piecewise(400);
        let tree = fit(&d, true);
        let c = tree.compile();
        let m = d.to_matrix();
        let serial = c.predict_batch_with(&m, Parallelism::Off);
        for par in [
            Parallelism::Auto,
            Parallelism::Fixed(2),
            Parallelism::Fixed(3),
            Parallelism::Fixed(8),
        ] {
            let batch = c.predict_batch_with(&m, par);
            assert_eq!(batch.len(), serial.len());
            for (a, b) in batch.iter().zip(&serial) {
                assert_eq!(a.to_bits(), b.to_bits(), "par {par:?}");
            }
        }
    }

    #[test]
    fn single_leaf_tree_compiles() {
        let d = Dataset::from_rows(vec!["x".into()], &[[1.0], [2.0]], &[3.0, 3.0]).unwrap();
        let tree = ModelTree::fit(&d, &M5Params::default()).unwrap();
        let c = tree.compile();
        assert_eq!(c.n_leaves(), 1);
        assert_eq!(c.n_splits(), 0);
        assert_eq!(
            c.predict(&[99.0]).to_bits(),
            tree.predict(&[99.0]).to_bits()
        );
        let m = d.to_matrix();
        assert_eq!(c.predict_batch(&m), vec![3.0, 3.0]);
    }

    #[test]
    fn empty_batch_is_empty() {
        let d = piecewise(60);
        let c = fit(&d, false).compile();
        let empty = Matrix::zeros(0, 3);
        assert!(c.predict_batch(&empty).is_empty());
    }

    #[test]
    fn narrow_matrix_is_a_structured_error() {
        let d = piecewise(60);
        let c = fit(&d, false).compile();
        let narrow = Matrix::zeros(4, 2);
        match c.try_predict_batch_with(&narrow, Parallelism::Off) {
            Err(MtreeError::RowLengthMismatch { expected, found }) => {
                assert_eq!((expected, found), (3, 2));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn short_row_panics_like_interpreted() {
        let d = piecewise(60);
        let c = fit(&d, false).compile();
        c.predict(&[1.0]);
    }

    #[test]
    fn cutover_shrinks_with_threads_and_stays_clamped() {
        let d = piecewise(300);
        let c = fit(&d, false).compile();
        // More threads amortize dispatch better, so the break-even batch
        // shrinks (or stays pinned at a clamp edge); both edges hold for
        // degenerate measurements.
        let two = c.cutover_rows(2, 10.0);
        let many = c.cutover_rows(16, 10.0);
        assert!(many <= two, "cutover grew with threads: {two} -> {many}");
        assert!(many >= 2 * ROW_BLOCK);
        assert_eq!(
            c.cutover_rows(2, 1e9),
            2 * ROW_BLOCK,
            "costly rows: lower clamp"
        );
        assert_eq!(c.cutover_rows(2, 1e-9), 4 << 20, "free rows: upper clamp");
        // Reporting is consistent with calibration state: `None` before
        // any Auto batch ran (or on a single-thread budget); when `Some`,
        // the value respects the clamps.
        if let Some(n) = c.parallel_cutover() {
            assert!((2 * ROW_BLOCK..=4 << 20).contains(&n));
        }
        // Cloning carries calibration without tying identity to it.
        let clone = c.clone();
        assert_eq!(clone, c);
    }

    #[test]
    fn compiled_rules_match_rule_set() {
        let d = piecewise(300);
        let tree = fit(&d, false);
        let rules = RuleSet::from_tree(&tree);
        let c = rules.compile();
        assert_eq!(c.len(), rules.len());
        assert!(!c.is_empty());
        assert_eq!(c.n_attrs(), 3);
        let m = d.to_matrix();
        let batch = c.predict_batch_with(&m, Parallelism::Fixed(4));
        for (i, b) in batch.iter().enumerate() {
            let row = d.row(i);
            assert_eq!(c.predict(&row).to_bits(), rules.predict(&row).to_bits());
            assert_eq!(b.to_bits(), rules.predict(&row).to_bits());
        }
    }
}
