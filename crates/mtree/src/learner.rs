//! Learner/predictor abstraction shared by the model tree and the baseline
//! regressors, so the evaluation harness (`mtperf-eval`) can cross-validate
//! any of them uniformly.

use mtperf_linalg::Matrix;

use crate::compiled::CompiledTree;
use crate::{Dataset, M5Params, ModelTree, MtreeError};

/// A fitted regression model: maps an attribute row to a prediction.
///
/// `Send` so trained models can be handed back from worker threads (the
/// evaluation harness trains folds and baseline suites concurrently).
pub trait Predictor: Send {
    /// Predicts the target for `row`.
    fn predict(&self, row: &[f64]) -> f64;

    /// Predicts every row of `rows` (row-major, one instance per row).
    ///
    /// The default calls [`Predictor::predict`] once per row; models with a
    /// compiled batch path (the model tree) override it. Overrides must
    /// stay bit-identical to the per-row loop.
    fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
        (0..rows.rows())
            .map(|r| self.predict(rows.row(r)))
            .collect()
    }
}

/// A trainable regression algorithm.
///
/// `Send + Sync` so one learner can be shared by reference across the
/// evaluation harness's worker threads. Implementations hold plain
/// configuration data and fit without interior mutability.
pub trait Learner: Send + Sync {
    /// Fits a model to `data`.
    ///
    /// # Errors
    ///
    /// Implementations return an [`MtreeError`] when the dataset is
    /// malformed or fitting fails irrecoverably.
    fn fit(&self, data: &Dataset) -> Result<Box<dyn Predictor>, MtreeError>;

    /// Human-readable algorithm name (used in comparison tables).
    fn name(&self) -> &str;
}

impl Predictor for ModelTree {
    fn predict(&self, row: &[f64]) -> f64 {
        ModelTree::predict(self, row)
    }

    /// Compiles once, then scores through the flat arrays — bit-identical
    /// to the per-row walk (see [`crate::compiled`]).
    fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
        self.compile()
            .predict_batch_with(rows, self.params().parallelism())
    }
}

impl Predictor for CompiledTree {
    fn predict(&self, row: &[f64]) -> f64 {
        CompiledTree::predict(self, row)
    }

    fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
        CompiledTree::predict_batch(self, rows)
    }
}

/// [`Learner`] wrapper around [`ModelTree::fit`].
///
/// # Example
///
/// ```
/// use mtperf_mtree::{Dataset, Learner, M5Learner, M5Params};
///
/// let d = Dataset::from_rows(
///     vec!["x".into()],
///     &[[0.0], [1.0], [2.0], [3.0]],
///     &[0.0, 1.0, 2.0, 3.0],
/// ).unwrap();
/// let model = M5Learner::new(M5Params::default()).fit(&d).unwrap();
/// assert!((model.predict(&[1.5]) - 1.5).abs() < 0.2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct M5Learner {
    params: M5Params,
}

impl M5Learner {
    /// Creates a learner with the given parameters.
    pub fn new(params: M5Params) -> Self {
        M5Learner { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &M5Params {
        &self.params
    }
}

impl Learner for M5Learner {
    fn fit(&self, data: &Dataset) -> Result<Box<dyn Predictor>, MtreeError> {
        Ok(Box::new(ModelTree::fit(data, &self.params)?))
    }

    fn name(&self) -> &str {
        "M5' model tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learner_trains_and_predicts() {
        let rows: Vec<[f64; 1]> = (0..50).map(|i| [i as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 1.0).collect();
        let d = Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap();
        let learner = M5Learner::new(M5Params::default());
        assert_eq!(learner.name(), "M5' model tree");
        let model = learner.fit(&d).unwrap();
        assert!((model.predict(&[10.0]) - 21.0).abs() < 0.5);
    }

    #[test]
    fn learner_propagates_errors() {
        let d = Dataset::new(vec!["x".into()]).unwrap();
        let learner = M5Learner::default();
        assert!(learner.fit(&d).is_err());
    }

    #[test]
    fn trait_objects_compose() {
        let learners: Vec<Box<dyn Learner>> = vec![Box::new(M5Learner::default())];
        assert_eq!(learners[0].name(), "M5' model tree");
    }
}
