//! Training data container.

use std::collections::HashSet;

use mtperf_linalg::Matrix;
use serde::{de, Deserialize, Serialize, Value};

use crate::MtreeError;

/// A column-major numeric dataset: named continuous attributes plus one
/// continuous target.
///
/// Column-major storage suits M5' training, which repeatedly sorts and scans
/// a single attribute across a node's instances.
///
/// # Example
///
/// ```
/// use mtperf_mtree::Dataset;
///
/// let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
/// d.push_row(&[1.0, 2.0], 3.0).unwrap();
/// assert_eq!(d.n_rows(), 1);
/// assert_eq!(d.value(0, 1), 2.0);
/// assert_eq!(d.target(0), 3.0);
/// assert_eq!(d.attr_index("b"), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Dataset {
    attr_names: Vec<String>,
    /// `columns[j][i]`: attribute `j` of instance `i`.
    columns: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

// Deserialization goes through [`Dataset::from_columns`], so a hand-edited
// or corrupted JSON blob cannot smuggle in the states every constructor
// rejects (NaN/infinite values, ragged columns, duplicate names).
impl Deserialize for Dataset {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, de::Error> {
            T::deserialize(value.get_field(name).unwrap_or(&Value::Null))
                .map_err(|e| e.context(name).context("Dataset"))
        }
        if value.as_object().is_none() {
            return Err(de::Error::mismatch("object", value).context("Dataset"));
        }
        Dataset::from_columns(
            field(value, "attr_names")?,
            field(value, "columns")?,
            field(value, "targets")?,
        )
        .map_err(|e| de::Error::custom(e.to_string()).context("Dataset"))
    }
}

impl Dataset {
    /// Creates an empty dataset with the given attribute names.
    ///
    /// # Errors
    ///
    /// Returns [`MtreeError::BadAttributeNames`] if names are empty,
    /// duplicated, or the list is empty.
    pub fn new(attr_names: Vec<String>) -> Result<Self, MtreeError> {
        if attr_names.is_empty() || attr_names.iter().any(String::is_empty) {
            return Err(MtreeError::BadAttributeNames);
        }
        let unique: HashSet<&str> = attr_names.iter().map(String::as_str).collect();
        if unique.len() != attr_names.len() {
            return Err(MtreeError::BadAttributeNames);
        }
        let n = attr_names.len();
        Ok(Dataset {
            attr_names,
            columns: vec![Vec::new(); n],
            targets: Vec::new(),
        })
    }

    /// Builds a dataset from rows and targets in one call.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Dataset::new`] and [`Dataset::push_row`],
    /// plus [`MtreeError::EmptyDataset`] when `rows` is empty.
    pub fn from_rows<R: AsRef<[f64]>>(
        attr_names: Vec<String>,
        rows: &[R],
        targets: &[f64],
    ) -> Result<Self, MtreeError> {
        if rows.is_empty() {
            return Err(MtreeError::EmptyDataset);
        }
        if rows.len() != targets.len() {
            return Err(MtreeError::RowLengthMismatch {
                expected: rows.len(),
                found: targets.len(),
            });
        }
        let mut d = Dataset::new(attr_names)?;
        for (row, &y) in rows.iter().zip(targets) {
            d.push_row(row.as_ref(), y)?;
        }
        Ok(d)
    }

    /// Builds a dataset directly from column-major parts, applying every
    /// constructor validation (names, shape, finiteness). This is the path
    /// deserialization takes.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Dataset::new`] and [`Dataset::push_row`]:
    /// [`MtreeError::BadAttributeNames`], [`MtreeError::RowLengthMismatch`]
    /// when `columns` does not match `attr_names` or a column's length does
    /// not match `targets`, and [`MtreeError::NonFiniteValue`] for NaN or
    /// infinite entries.
    pub fn from_columns(
        attr_names: Vec<String>,
        columns: Vec<Vec<f64>>,
        targets: Vec<f64>,
    ) -> Result<Self, MtreeError> {
        let d = Dataset::new(attr_names)?;
        if columns.len() != d.attr_names.len() {
            return Err(MtreeError::RowLengthMismatch {
                expected: d.attr_names.len(),
                found: columns.len(),
            });
        }
        if let Some(col) = columns.iter().find(|c| c.len() != targets.len()) {
            return Err(MtreeError::RowLengthMismatch {
                expected: targets.len(),
                found: col.len(),
            });
        }
        for i in 0..targets.len() {
            if !targets[i].is_finite() {
                return Err(MtreeError::NonFiniteValue { row: i, attr: None });
            }
            if let Some(j) = columns.iter().position(|c| !c[i].is_finite()) {
                return Err(MtreeError::NonFiniteValue {
                    row: i,
                    attr: Some(j),
                });
            }
        }
        Ok(Dataset {
            columns,
            targets,
            ..d
        })
    }

    /// Appends one instance.
    ///
    /// # Errors
    ///
    /// Returns [`MtreeError::RowLengthMismatch`] on a wrong-length row and
    /// [`MtreeError::NonFiniteValue`] if any value (or the target) is NaN or
    /// infinite.
    pub fn push_row(&mut self, row: &[f64], target: f64) -> Result<(), MtreeError> {
        if row.len() != self.attr_names.len() {
            return Err(MtreeError::RowLengthMismatch {
                expected: self.attr_names.len(),
                found: row.len(),
            });
        }
        if !target.is_finite() {
            return Err(MtreeError::NonFiniteValue {
                row: self.targets.len(),
                attr: None,
            });
        }
        if let Some(j) = row.iter().position(|v| !v.is_finite()) {
            return Err(MtreeError::NonFiniteValue {
                row: self.targets.len(),
                attr: Some(j),
            });
        }
        for (col, &v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.targets.push(target);
        Ok(())
    }

    /// Number of instances.
    pub fn n_rows(&self) -> usize {
        self.targets.len()
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.attr_names.len()
    }

    /// Attribute names, in column order.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Name of attribute `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn attr_name(&self, j: usize) -> &str {
        &self.attr_names[j]
    }

    /// Index of the attribute called `name`, if present.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attr_names.iter().position(|n| n == name)
    }

    /// The full column of attribute `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn column(&self, j: usize) -> &[f64] {
        &self.columns[j]
    }

    /// Value of attribute `j` for instance `i`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.columns[j][i]
    }

    /// Target of instance `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn target(&self, i: usize) -> f64 {
        self.targets[i]
    }

    /// All targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Materializes instance `i` as a row vector (attribute order).
    pub fn row(&self, i: usize) -> Vec<f64> {
        self.columns.iter().map(|c| c[i]).collect()
    }

    /// Materializes the whole dataset as a row-major attribute matrix
    /// (`n_rows × n_attrs`, targets excluded) — the input shape of
    /// [`crate::CompiledTree::predict_batch`].
    pub fn to_matrix(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n_rows(), self.n_attrs());
        for (j, col) in self.columns.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Materializes the instances in `idx` as a row-major attribute matrix
    /// (`idx.len() × n_attrs`, row order follows `idx`).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn matrix_of(&self, idx: &[usize]) -> Matrix {
        let mut m = Matrix::zeros(idx.len(), self.n_attrs());
        for (r, &i) in idx.iter().enumerate() {
            for (j, col) in self.columns.iter().enumerate() {
                m[(r, j)] = col[i];
            }
        }
        m
    }

    /// Returns a new dataset containing only the attributes in `attrs`
    /// (column order follows `attrs`); targets are unchanged. Useful for
    /// feature-ablation studies.
    ///
    /// # Errors
    ///
    /// Returns [`MtreeError::BadAttributeNames`] if `attrs` is empty or
    /// contains duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any attribute index is out of range.
    pub fn select_attrs(&self, attrs: &[usize]) -> Result<Dataset, MtreeError> {
        let names: Vec<String> = attrs.iter().map(|&j| self.attr_names[j].clone()).collect();
        let unique: HashSet<&str> = names.iter().map(String::as_str).collect();
        if names.is_empty() || unique.len() != names.len() {
            return Err(MtreeError::BadAttributeNames);
        }
        Ok(Dataset {
            attr_names: names,
            columns: attrs.iter().map(|&j| self.columns[j].clone()).collect(),
            targets: self.targets.clone(),
        })
    }

    /// Returns a new dataset containing only the instances in `idx`
    /// (useful for train/test splits).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        Dataset {
            attr_names: self.attr_names.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| idx.iter().map(|&i| c[i]).collect())
                .collect(),
            targets: idx.iter().map(|&i| self.targets[i]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d3() -> Dataset {
        Dataset::from_rows(
            vec!["a".into(), "b".into()],
            &[[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]],
            &[0.1, 0.2, 0.3],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let d = d3();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.n_attrs(), 2);
        assert_eq!(d.column(1), &[10.0, 20.0, 30.0]);
        assert_eq!(d.value(2, 0), 3.0);
        assert_eq!(d.target(1), 0.2);
        assert_eq!(d.row(1), vec![2.0, 20.0]);
        assert_eq!(d.attr_index("a"), Some(0));
        assert_eq!(d.attr_index("zzz"), None);
        assert_eq!(d.attr_name(1), "b");
    }

    #[test]
    fn rejects_bad_names() {
        assert_eq!(
            Dataset::new(vec![]).unwrap_err(),
            MtreeError::BadAttributeNames
        );
        assert_eq!(
            Dataset::new(vec!["a".into(), "a".into()]).unwrap_err(),
            MtreeError::BadAttributeNames
        );
        assert_eq!(
            Dataset::new(vec!["".into()]).unwrap_err(),
            MtreeError::BadAttributeNames
        );
    }

    #[test]
    fn rejects_bad_rows() {
        let mut d = Dataset::new(vec!["a".into()]).unwrap();
        assert!(matches!(
            d.push_row(&[1.0, 2.0], 0.0),
            Err(MtreeError::RowLengthMismatch { .. })
        ));
        assert!(matches!(
            d.push_row(&[f64::NAN], 0.0),
            Err(MtreeError::NonFiniteValue { .. })
        ));
        assert!(matches!(
            d.push_row(&[1.0], f64::INFINITY),
            Err(MtreeError::NonFiniteValue { .. })
        ));
        assert_eq!(d.n_rows(), 0, "failed pushes must not mutate");
    }

    #[test]
    fn from_rows_validates_lengths() {
        let err = Dataset::from_rows::<[f64; 1]>(vec!["a".into()], &[], &[]).unwrap_err();
        assert_eq!(err, MtreeError::EmptyDataset);
        let err = Dataset::from_rows(vec!["a".into()], &[[1.0]], &[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, MtreeError::RowLengthMismatch { .. }));
    }

    #[test]
    fn select_attrs_projects_columns() {
        let d = d3();
        let p = d.select_attrs(&[1]).unwrap();
        assert_eq!(p.n_attrs(), 1);
        assert_eq!(p.attr_name(0), "b");
        assert_eq!(p.column(0), d.column(1));
        assert_eq!(p.targets(), d.targets());
        // Reordering works too.
        let r = d.select_attrs(&[1, 0]).unwrap();
        assert_eq!(r.attr_names(), &["b".to_string(), "a".to_string()]);
        assert_eq!(r.row(0), vec![10.0, 1.0]);
    }

    #[test]
    fn select_attrs_rejects_empty_and_duplicates() {
        let d = d3();
        assert!(d.select_attrs(&[]).is_err());
        assert!(d.select_attrs(&[0, 0]).is_err());
    }

    #[test]
    fn subset_extracts_rows() {
        let d = d3();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.row(0), vec![3.0, 30.0]);
        assert_eq!(s.target(1), 0.1);
        assert_eq!(s.attr_names(), d.attr_names());
    }

    #[test]
    fn failed_push_keeps_columns_consistent() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        d.push_row(&[1.0, 2.0], 3.0).unwrap();
        let _ = d.push_row(&[1.0], 9.9);
        // Column lengths must still agree.
        assert_eq!(d.column(0).len(), d.column(1).len());
        assert_eq!(d.column(0).len(), d.n_rows());
    }

    #[test]
    fn serde_roundtrip() {
        let d = d3();
        let json = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn from_columns_validates() {
        assert!(
            Dataset::from_columns(vec!["a".into()], vec![vec![1.0, 2.0]], vec![0.1, 0.2]).is_ok()
        );
        // Column count != attribute count.
        assert!(matches!(
            Dataset::from_columns(vec!["a".into()], vec![], vec![]),
            Err(MtreeError::RowLengthMismatch { .. })
        ));
        // Ragged column.
        assert!(matches!(
            Dataset::from_columns(vec!["a".into()], vec![vec![1.0]], vec![0.1, 0.2]),
            Err(MtreeError::RowLengthMismatch { .. })
        ));
        // Non-finite entries name the offending column (None = the target).
        assert!(matches!(
            Dataset::from_columns(vec!["a".into()], vec![vec![f64::INFINITY]], vec![0.1]),
            Err(MtreeError::NonFiniteValue {
                row: 0,
                attr: Some(0)
            })
        ));
        assert!(matches!(
            Dataset::from_columns(vec!["a".into()], vec![vec![1.0]], vec![f64::NAN]),
            Err(MtreeError::NonFiniteValue { row: 0, attr: None })
        ));
    }

    #[test]
    fn deserialization_rejects_invalid_blobs() {
        // `1e999` overflows to infinity in the JSON reader; the validated
        // deserializer must refuse it rather than build a poisoned dataset.
        let err = serde_json::from_str::<Dataset>(
            r#"{"attr_names":["a"],"columns":[[1e999]],"targets":[1.0]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
        // Ragged columns.
        assert!(serde_json::from_str::<Dataset>(
            r#"{"attr_names":["a"],"columns":[[1.0,2.0]],"targets":[1.0]}"#,
        )
        .is_err());
        // Duplicate attribute names.
        assert!(serde_json::from_str::<Dataset>(
            r#"{"attr_names":["a","a"],"columns":[[1.0],[1.0]],"targets":[1.0]}"#,
        )
        .is_err());
    }
}
