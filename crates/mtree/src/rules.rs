//! Rule extraction: flattening a model tree into an ordered rule list.
//!
//! WEKA pairs M5' with *M5Rules*, which presents the same piecewise-linear
//! model as ordered IF-THEN rules — often the form performance analysts
//! prefer to read ("IF L2M > t AND L1IM > u THEN CPI = 2.2"). Here the rule
//! list is derived directly from a fitted tree: one rule per leaf, ordered
//! by coverage, each carrying the conjunctive conditions of its root path
//! and the leaf's linear model.

use serde::{Deserialize, Serialize};

use crate::node::{LeafId, Node};
use crate::{LinearModel, ModelTree};

/// One atomic condition `attr <= threshold` or `attr > threshold`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Condition {
    /// Attribute index tested.
    pub attr: usize,
    /// Threshold.
    pub threshold: f64,
    /// `true` for `attr > threshold`, `false` for `attr <= threshold`.
    pub greater: bool,
}

impl Condition {
    /// Evaluates the condition on a row.
    pub fn matches(&self, row: &[f64]) -> bool {
        if self.greater {
            row[self.attr] > self.threshold
        } else {
            row[self.attr] <= self.threshold
        }
    }
}

/// One rule: a conjunction of conditions and the model that applies when
/// they all hold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// The leaf this rule came from.
    pub leaf: LeafId,
    /// Conjunctive conditions (root-to-leaf order).
    pub conditions: Vec<Condition>,
    /// The model predicting the target when the rule fires.
    pub model: LinearModel,
    /// Training instances covered by the rule.
    pub coverage: usize,
    /// Mean training target under the rule.
    pub mean: f64,
}

impl Rule {
    /// `true` when every condition holds for `row`.
    pub fn matches(&self, row: &[f64]) -> bool {
        self.conditions.iter().all(|c| c.matches(row))
    }
}

/// An ordered list of rules extracted from a [`ModelTree`].
///
/// Because the rules partition the input space (they come from a tree),
/// exactly one rule fires for any row, and prediction agrees with the
/// (unsmoothed) tree.
///
/// # Example
///
/// ```
/// use mtperf_mtree::{Dataset, M5Params, ModelTree, RuleSet};
///
/// let rows: Vec<[f64; 1]> = (0..100).map(|i| [i as f64]).collect();
/// let ys: Vec<f64> = rows.iter()
///     .map(|r| if r[0] <= 50.0 { 1.0 } else { 5.0 })
///     .collect();
/// let d = Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap();
/// let tree = ModelTree::fit(&d, &M5Params::default().with_min_instances(10)).unwrap();
/// let rules = RuleSet::from_tree(&tree);
/// assert_eq!(rules.len(), tree.n_leaves());
/// assert_eq!(rules.predict(&[10.0]), tree.predict_raw(&[10.0]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    rules: Vec<Rule>,
    attr_names: Vec<String>,
}

impl RuleSet {
    /// Extracts the rules of `tree`, ordered by descending coverage (the
    /// most common performance classes first, as an analyst would list
    /// them).
    pub fn from_tree(tree: &ModelTree) -> RuleSet {
        let mut rules = Vec::new();
        let mut path = Vec::new();
        collect(tree.root(), &mut path, &mut rules);
        rules.sort_by_key(|r| std::cmp::Reverse(r.coverage));
        RuleSet {
            rules,
            attr_names: tree.attr_names().to_vec(),
        }
    }

    /// Number of rules (= leaves of the source tree).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when there are no rules (never happens for a fitted tree).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rules, most-covering first.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Attribute names of the source tree, in column order.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// The first matching rule for `row`.
    ///
    /// # Panics
    ///
    /// Panics if no rule matches — impossible for rule sets produced by
    /// [`RuleSet::from_tree`], whose rules partition the space.
    pub fn matching_rule(&self, row: &[f64]) -> &Rule {
        self.rules
            .iter()
            .find(|r| r.matches(row))
            .expect("tree-derived rules partition the input space")
    }

    /// Predicts via the first matching rule (agrees with the unsmoothed
    /// tree).
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.matching_rule(row).model.predict(row)
    }

    /// Renders the ordered rule list.
    pub fn render(&self, target_name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, rule) in self.rules.iter().enumerate() {
            let _ = write!(out, "Rule {} ({} instances", i + 1, rule.coverage);
            let _ = writeln!(out, ", mean {target_name} {:.2}):", rule.mean);
            if rule.conditions.is_empty() {
                let _ = writeln!(out, "  IF true");
            } else {
                for (j, c) in rule.conditions.iter().enumerate() {
                    let kw = if j == 0 { "IF  " } else { "AND " };
                    let _ = writeln!(
                        out,
                        "  {kw}{} {} {:.6}",
                        self.attr_names[c.attr],
                        if c.greater { ">" } else { "<=" },
                        c.threshold
                    );
                }
            }
            let _ = writeln!(
                out,
                "  THEN {}\n",
                rule.model.render(target_name, &self.attr_names)
            );
        }
        out
    }
}

fn collect(node: &Node, path: &mut Vec<Condition>, out: &mut Vec<Rule>) {
    match node {
        Node::Leaf { id, model, n, mean } => {
            out.push(Rule {
                leaf: *id,
                conditions: path.clone(),
                model: model.clone(),
                coverage: *n,
                mean: *mean,
            });
        }
        Node::Split {
            attr,
            threshold,
            left,
            right,
            ..
        } => {
            path.push(Condition {
                attr: *attr,
                threshold: *threshold,
                greater: false,
            });
            collect(left, path, out);
            path.pop();
            path.push(Condition {
                attr: *attr,
                threshold: *threshold,
                greater: true,
            });
            collect(right, path, out);
            path.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, M5Params};

    fn tree() -> ModelTree {
        let rows: Vec<[f64; 2]> = (0..200)
            .map(|i| [(i % 20) as f64, (i % 7) as f64])
            .collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| {
                if r[0] <= 10.0 {
                    1.0 + 0.3 * r[1]
                } else {
                    6.0 - 0.2 * r[1]
                }
            })
            .collect();
        let d = Dataset::from_rows(vec!["a".into(), "b".into()], &rows, &ys).unwrap();
        ModelTree::fit(
            &d,
            &M5Params::default()
                .with_min_instances(10)
                .with_smoothing(false),
        )
        .unwrap()
    }

    #[test]
    fn one_rule_per_leaf() {
        let t = tree();
        let rs = RuleSet::from_tree(&t);
        assert_eq!(rs.len(), t.n_leaves());
        assert!(!rs.is_empty());
    }

    #[test]
    fn rules_are_ordered_by_coverage() {
        let rs = RuleSet::from_tree(&tree());
        for w in rs.rules().windows(2) {
            assert!(w[0].coverage >= w[1].coverage);
        }
    }

    #[test]
    fn coverage_sums_to_training_size() {
        let t = tree();
        let rs = RuleSet::from_tree(&t);
        let total: usize = rs.rules().iter().map(|r| r.coverage).sum();
        assert_eq!(total, t.n_train());
    }

    #[test]
    fn exactly_one_rule_matches_each_row() {
        let t = tree();
        let rs = RuleSet::from_tree(&t);
        for i in 0..40 {
            let row = [(i % 20) as f64, (i % 7) as f64];
            let matches = rs.rules().iter().filter(|r| r.matches(&row)).count();
            assert_eq!(matches, 1, "row {row:?} matched {matches} rules");
        }
    }

    #[test]
    fn prediction_agrees_with_tree() {
        let t = tree();
        let rs = RuleSet::from_tree(&t);
        for i in 0..40 {
            let row = [(i % 23) as f64 * 0.9, (i % 5) as f64];
            assert_eq!(rs.predict(&row), t.predict_raw(&row));
        }
    }

    #[test]
    fn render_lists_conditions_and_models() {
        let rs = RuleSet::from_tree(&tree());
        let s = rs.render("CPI");
        assert!(s.contains("Rule 1"), "{s}");
        assert!(s.contains("IF  "), "{s}");
        assert!(s.contains("THEN CPI = "), "{s}");
    }

    #[test]
    fn single_leaf_tree_yields_unconditional_rule() {
        let d = Dataset::from_rows(vec!["x".into()], &[[1.0], [2.0]], &[3.0, 3.0]).unwrap();
        let t = ModelTree::fit(&d, &M5Params::default()).unwrap();
        let rs = RuleSet::from_tree(&t);
        assert_eq!(rs.len(), 1);
        assert!(rs.rules()[0].conditions.is_empty());
        assert!(rs.render("y").contains("IF true"));
        assert_eq!(rs.predict(&[99.0]), 3.0);
    }

    #[test]
    fn condition_matching() {
        let c = Condition {
            attr: 0,
            threshold: 1.5,
            greater: true,
        };
        assert!(c.matches(&[2.0]));
        assert!(!c.matches(&[1.5]));
        let le = Condition {
            attr: 0,
            threshold: 1.5,
            greater: false,
        };
        assert!(le.matches(&[1.5]));
    }

    #[test]
    fn serde_roundtrip() {
        let rs = RuleSet::from_tree(&tree());
        let json = serde_json::to_string(&rs).unwrap();
        let back: RuleSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rs);
    }
}
