//! Phase tracking over section streams.
//!
//! The paper assumes workloads embody multiple phases (citing Sherwood's
//! phase tracking) and lets the tree's classes stand in for phases. This
//! module makes that operational: feed sections in execution order to a
//! [`PhaseTracker`] and get back the phase timeline — stable runs of one
//! class, with short blips smoothed by a hysteresis window.

use serde::{Deserialize, Serialize};

use crate::node::LeafId;
use crate::ModelTree;

/// One detected phase: a maximal run of sections in the same class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase {
    /// The performance class of the phase.
    pub class: LeafId,
    /// Index of the first section in the phase.
    pub start: usize,
    /// Number of sections in the phase.
    pub len: usize,
}

/// Streaming phase detector with hysteresis.
///
/// A class change is only committed once `hysteresis` consecutive sections
/// agree on the new class; isolated blips (a single section straddling a
/// transition) stay inside the surrounding phase, matching how phase
/// trackers debounce.
///
/// # Example
///
/// ```
/// use mtperf_mtree::{Dataset, M5Params, ModelTree, PhaseTracker};
///
/// let rows: Vec<[f64; 1]> = (0..100).map(|i| [i as f64]).collect();
/// let ys: Vec<f64> = rows.iter().map(|r| if r[0] <= 50.0 { 1.0 } else { 5.0 }).collect();
/// let d = Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap();
/// let tree = ModelTree::fit(&d, &M5Params::default().with_min_instances(10)).unwrap();
///
/// let mut tracker = PhaseTracker::new(&tree, 2);
/// for i in 0..100 {
///     tracker.observe(&[i as f64]);
/// }
/// let phases = tracker.finish();
/// assert_eq!(phases.len(), 2); // low phase, then high phase
/// ```
#[derive(Debug)]
pub struct PhaseTracker<'t> {
    tree: &'t ModelTree,
    hysteresis: usize,
    current: Option<LeafId>,
    current_start: usize,
    position: usize,
    pending: Option<(LeafId, usize)>,
    phases: Vec<Phase>,
}

impl<'t> PhaseTracker<'t> {
    /// Creates a tracker over `tree` requiring `hysteresis` consecutive
    /// agreeing sections to commit a phase change.
    ///
    /// # Panics
    ///
    /// Panics if `hysteresis` is 0.
    pub fn new(tree: &'t ModelTree, hysteresis: usize) -> Self {
        assert!(hysteresis >= 1, "hysteresis must be >= 1");
        PhaseTracker {
            tree,
            hysteresis,
            current: None,
            current_start: 0,
            position: 0,
            pending: None,
            phases: Vec::new(),
        }
    }

    /// Number of sections observed so far.
    pub fn position(&self) -> usize {
        self.position
    }

    /// The class of the phase currently in progress.
    pub fn current_class(&self) -> Option<LeafId> {
        self.current
    }

    /// Feeds the next section (its attribute row) and returns its raw class.
    pub fn observe(&mut self, row: &[f64]) -> LeafId {
        let class = self.tree.leaf_id_for(row);
        match self.current {
            None => {
                self.current = Some(class);
                self.current_start = self.position;
            }
            Some(cur) if class == cur => {
                self.pending = None;
            }
            Some(cur) => {
                let run = match self.pending {
                    Some((p, n)) if p == class => n + 1,
                    _ => 1,
                };
                if run >= self.hysteresis {
                    // Commit: the phase ended where the new run began.
                    let boundary = self.position + 1 - run;
                    self.phases.push(Phase {
                        class: cur,
                        start: self.current_start,
                        len: boundary - self.current_start,
                    });
                    self.current = Some(class);
                    self.current_start = boundary;
                    self.pending = None;
                } else {
                    self.pending = Some((class, run));
                }
            }
        }
        self.position += 1;
        class
    }

    /// Closes the stream and returns the phase timeline.
    pub fn finish(mut self) -> Vec<Phase> {
        if let Some(cur) = self.current {
            self.phases.push(Phase {
                class: cur,
                start: self.current_start,
                len: self.position - self.current_start,
            });
        }
        self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, M5Params};

    fn step_tree() -> ModelTree {
        let rows: Vec<[f64; 1]> = (0..100).map(|i| [i as f64]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] <= 50.0 { 1.0 } else { 5.0 })
            .collect();
        let d = Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap();
        ModelTree::fit(
            &d,
            &M5Params::default()
                .with_min_instances(10)
                .with_smoothing(false),
        )
        .unwrap()
    }

    #[test]
    fn two_clean_phases() {
        let tree = step_tree();
        let mut t = PhaseTracker::new(&tree, 2);
        for i in 0..100 {
            t.observe(&[i as f64]);
        }
        let phases = t.finish();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].start, 0);
        assert_eq!(phases[0].len + phases[1].len, 100);
        assert_ne!(phases[0].class, phases[1].class);
    }

    #[test]
    fn blips_are_absorbed_by_hysteresis() {
        let tree = step_tree();
        let mut t = PhaseTracker::new(&tree, 3);
        // Steady low phase with two isolated high blips.
        let xs: Vec<f64> = (0..40)
            .map(|i| if i == 10 || i == 25 { 90.0 } else { 5.0 })
            .collect();
        for x in &xs {
            t.observe(&[*x]);
        }
        let phases = t.finish();
        assert_eq!(phases.len(), 1, "{phases:?}");
        assert_eq!(phases[0].len, 40);
    }

    #[test]
    fn hysteresis_one_commits_immediately() {
        let tree = step_tree();
        let mut t = PhaseTracker::new(&tree, 1);
        for &x in &[5.0, 5.0, 90.0, 5.0, 5.0] {
            t.observe(&[x]);
        }
        let phases = t.finish();
        assert_eq!(phases.len(), 3, "{phases:?}");
        assert_eq!(phases[1].len, 1);
    }

    #[test]
    fn phases_tile_the_stream() {
        let tree = step_tree();
        let mut t = PhaseTracker::new(&tree, 2);
        let xs: Vec<f64> = (0..60).map(|i| ((i / 7) % 2) as f64 * 80.0 + 5.0).collect();
        for x in &xs {
            t.observe(&[*x]);
        }
        let phases = t.finish();
        let mut pos = 0;
        for p in &phases {
            assert_eq!(p.start, pos);
            assert!(p.len > 0);
            pos += p.len;
        }
        assert_eq!(pos, 60);
    }

    #[test]
    fn empty_stream_yields_no_phases() {
        let tree = step_tree();
        let t = PhaseTracker::new(&tree, 2);
        assert!(t.finish().is_empty());
    }

    #[test]
    fn observe_returns_raw_class() {
        let tree = step_tree();
        let mut t = PhaseTracker::new(&tree, 5);
        let low = t.observe(&[5.0]);
        let high = t.observe(&[90.0]);
        assert_ne!(low, high);
        // Current phase is still the low one (hysteresis not met).
        assert_eq!(t.current_class(), Some(low));
        assert_eq!(t.position(), 2);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn zero_hysteresis_rejected() {
        let tree = step_tree();
        let _ = PhaseTracker::new(&tree, 0);
    }
}
