//! WEKA-style text rendering of a fitted tree (the format of the paper's
//! Figures 1 and 2).

use std::fmt::Write as _;

use crate::node::Node;
use crate::ModelTree;

impl ModelTree {
    /// Renders the decision structure plus the leaf-model listing, WEKA
    /// style:
    ///
    /// ```text
    /// L2M <= 0.0021 :
    /// |   Dtlb <= 0.0043 : LM1 (2345 instances, 19.5%)
    /// |   Dtlb > 0.0043 : LM2 (812 instances, 6.8%)
    /// L2M > 0.0021 : LM3 (...)
    ///
    /// LM1: CPI = 0.52 + 6.69 * L1IM + ...
    /// ```
    pub fn render(&self, target_name: &str) -> String {
        let mut out = String::new();
        self.render_node(self.root(), 0, &mut out);
        out.push('\n');
        for leaf in self.leaves() {
            if let Node::Leaf { id, model, .. } = leaf {
                let _ = writeln!(
                    out,
                    "{id}: {}",
                    model.render(target_name, self.attr_names())
                );
            }
        }
        out
    }

    fn render_node(&self, node: &Node, depth: usize, out: &mut String) {
        let indent = "|   ".repeat(depth);
        match node {
            Node::Leaf { .. } => {
                // A root that is a single leaf.
                let _ = writeln!(out, "{indent}{}", self.leaf_label(node));
            }
            Node::Split {
                attr,
                threshold,
                left,
                right,
                ..
            } => {
                let name = &self.attr_names()[*attr];
                self.render_branch(
                    left,
                    &format!("{indent}{name} <= {threshold:.6} :"),
                    depth,
                    out,
                );
                self.render_branch(
                    right,
                    &format!("{indent}{name} > {threshold:.6} :"),
                    depth,
                    out,
                );
            }
        }
    }

    fn render_branch(&self, child: &Node, label: &str, depth: usize, out: &mut String) {
        if child.is_leaf() {
            let _ = writeln!(out, "{label} {}", self.leaf_label(child));
        } else {
            let _ = writeln!(out, "{label}");
            self.render_node(child, depth + 1, out);
        }
    }

    fn leaf_label(&self, node: &Node) -> String {
        match node {
            Node::Leaf { id, n, .. } => {
                let pct = 100.0 * *n as f64 / self.n_train() as f64;
                format!("{id} ({n} instances, {pct:.1}%)")
            }
            Node::Split { .. } => unreachable!("leaf_label takes leaves"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Dataset, M5Params, ModelTree};

    fn tree() -> ModelTree {
        let rows: Vec<[f64; 1]> = (0..100).map(|i| [i as f64]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] <= 50.0 { r[0] } else { 200.0 - r[0] })
            .collect();
        let d = Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap();
        ModelTree::fit(&d, &M5Params::default().with_min_instances(10)).unwrap()
    }

    #[test]
    fn render_contains_structure_and_models() {
        let t = tree();
        let s = t.render("y");
        assert!(s.contains("x <= "), "{s}");
        assert!(s.contains("x > "), "{s}");
        assert!(s.contains("LM1"), "{s}");
        assert!(s.contains("instances"), "{s}");
        assert!(s.contains("y = "), "{s}");
        // Every leaf's model is listed.
        for i in 1..=t.n_leaves() {
            assert!(s.contains(&format!("LM{i}:")), "missing LM{i} in:\n{s}");
        }
    }

    #[test]
    fn percentages_sum_to_100() {
        let t = tree();
        let s = t.render("y");
        let total: f64 = s
            .lines()
            .filter_map(|l| {
                let open = l.find(", ")?;
                let close = l.find("%)")?;
                l[open + 2..close].parse::<f64>().ok()
            })
            .sum();
        assert!((total - 100.0).abs() < 1.0, "sum = {total}\n{s}");
    }

    #[test]
    fn single_leaf_tree_renders() {
        let d = Dataset::from_rows(vec!["x".into()], &[[1.0], [2.0]], &[5.0, 5.0]).unwrap();
        let t = ModelTree::fit(&d, &M5Params::default()).unwrap();
        let s = t.render("y");
        assert!(s.contains("LM1"), "{s}");
    }
}
