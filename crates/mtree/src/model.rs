//! Linear models for tree nodes.

use serde::{Deserialize, Serialize};

use mtperf_linalg::{lstsq, Matrix};

use crate::{Dataset, MtreeError};

/// A sparse linear model `y = intercept + Σ coef_j · x_j` over a subset of
/// the dataset's attributes.
///
/// These are the models that appear at the leaves of the paper's tree, e.g.
/// its LM8 (Equation 4):
/// `CPI = 0.52 + 139.91·ItlbM + 2.22·DtlbL0LdM + 28.21·DtlbLdReM +
/// 6.69·L1IM + 1.08·InstLd`.
///
/// # Example
///
/// ```
/// use mtperf_mtree::{Dataset, LinearModel};
///
/// let d = Dataset::from_rows(
///     vec!["x".into()],
///     &[[0.0], [1.0], [2.0]],
///     &[1.0, 3.0, 5.0],
/// ).unwrap();
/// let m = LinearModel::fit(&d, &[0, 1, 2], &[0]).unwrap();
/// assert!((m.predict(&[4.0]) - 9.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    intercept: f64,
    /// `(attribute index, coefficient)` pairs, sorted by attribute index.
    terms: Vec<(usize, f64)>,
}

impl LinearModel {
    /// A constant model (the degenerate case — e.g. the paper's LM18,
    /// `CPI = 2.2`).
    pub fn constant(value: f64) -> Self {
        LinearModel {
            intercept: value,
            terms: Vec::new(),
        }
    }

    /// Fits an ordinary-least-squares model of the targets of the instances
    /// in `idx` over the attributes in `attrs`.
    ///
    /// Attributes that are constant across `idx` are silently dropped —
    /// their coefficient is unidentifiable (and the ridge fallback would
    /// assign them an arbitrary near-zero weight).
    ///
    /// # Errors
    ///
    /// Returns [`MtreeError::EmptyDataset`] if `idx` is empty and
    /// propagates unrecoverable solver failures.
    pub fn fit(data: &Dataset, idx: &[usize], attrs: &[usize]) -> Result<Self, MtreeError> {
        if idx.is_empty() {
            return Err(MtreeError::EmptyDataset);
        }
        // Keep only attributes with variation on this subset.
        let mut live: Vec<usize> = Vec::with_capacity(attrs.len());
        for &j in attrs {
            let col = data.column(j);
            let first = col[idx[0]];
            if idx.iter().any(|&i| col[i] != first) {
                live.push(j);
            }
        }
        live.sort_unstable();
        live.dedup();

        let y: Vec<f64> = idx.iter().map(|&i| data.target(i)).collect();
        if live.is_empty() {
            let mean = y.iter().sum::<f64>() / y.len() as f64;
            return Ok(LinearModel::constant(mean));
        }
        let mut x = Matrix::zeros(idx.len(), live.len() + 1);
        for (r, &i) in idx.iter().enumerate() {
            x[(r, 0)] = 1.0;
            for (c, &j) in live.iter().enumerate() {
                x[(r, c + 1)] = data.value(i, j);
            }
        }
        let beta = lstsq(&x, &y)?;
        Ok(LinearModel {
            intercept: beta[0],
            terms: live
                .iter()
                .copied()
                .zip(beta[1..].iter().copied())
                .collect(),
        })
    }

    /// Fits a model over `attrs`, then greedily removes terms while the
    /// inflated error estimate improves — M5's simplification step, which is
    /// what produces the compact leaf equations of the paper.
    ///
    /// # Errors
    ///
    /// Same as [`LinearModel::fit`].
    pub fn fit_with_elimination(
        data: &Dataset,
        idx: &[usize],
        attrs: &[usize],
    ) -> Result<Self, MtreeError> {
        let mut attrs: Vec<usize> = attrs.to_vec();
        attrs.sort_unstable();
        attrs.dedup();
        let mut best = LinearModel::fit(data, idx, &attrs)?;
        let mut best_err = best.inflated_error(data, idx);
        loop {
            // Restrict candidates to the attributes the current model kept.
            let current: Vec<usize> = best.terms.iter().map(|&(j, _)| j).collect();
            if current.is_empty() {
                return Ok(best);
            }
            let mut improved = false;
            for drop in &current {
                let reduced: Vec<usize> = current.iter().copied().filter(|j| j != drop).collect();
                let candidate = LinearModel::fit(data, idx, &reduced)?;
                let err = candidate.inflated_error(data, idx);
                if err < best_err {
                    best = candidate;
                    best_err = err;
                    improved = true;
                    break;
                }
            }
            if !improved {
                return Ok(best);
            }
        }
    }

    /// The intercept term.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The `(attribute index, coefficient)` terms, sorted by attribute.
    pub fn terms(&self) -> &[(usize, f64)] {
        &self.terms
    }

    /// The coefficient of attribute `j`, or `None` if the model dropped it.
    pub fn coefficient(&self, j: usize) -> Option<f64> {
        self.terms
            .binary_search_by_key(&j, |&(a, _)| a)
            .ok()
            .map(|pos| self.terms[pos].1)
    }

    /// Number of fitted parameters (terms + intercept).
    pub fn n_params(&self) -> usize {
        self.terms.len() + 1
    }

    /// Predicts the target for a full attribute row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the largest attribute index used.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.intercept + self.terms.iter().map(|&(j, c)| c * row[j]).sum::<f64>()
    }

    /// Mean absolute residual of this model on the instances in `idx`.
    pub fn mean_abs_error(&self, data: &Dataset, idx: &[usize]) -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        let sum: f64 = idx
            .iter()
            .map(|&i| (self.predict(&data.row(i)) - data.target(i)).abs())
            .sum();
        sum / idx.len() as f64
    }

    /// M5's pessimistic error estimate: the training error inflated by
    /// `(n + v) / (n - v)` where `v` is the parameter count. Subsets smaller
    /// than the parameter count get an essentially infinite estimate, which
    /// drives both term elimination and pruning away from over-parameterized
    /// models.
    pub fn inflated_error(&self, data: &Dataset, idx: &[usize]) -> f64 {
        let n = idx.len() as f64;
        let v = self.n_params() as f64;
        let raw = self.mean_abs_error(data, idx);
        if n <= v {
            return f64::MAX / 4.0;
        }
        raw * (n + v) / (n - v)
    }

    /// Renders the model as an equation over the given attribute names, in
    /// the style of the paper's LM listings.
    ///
    /// # Panics
    ///
    /// Panics if `names` is shorter than the largest attribute index used.
    pub fn render(&self, target_name: &str, names: &[String]) -> String {
        let mut s = format!("{target_name} = {:.4}", self.intercept);
        for &(j, c) in &self.terms {
            if c >= 0.0 {
                s.push_str(&format!(" + {:.4} * {}", c, names[j]));
            } else {
                s.push_str(&format!(" - {:.4} * {}", -c, names[j]));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> Dataset {
        // y = 1 + 2a - b, with a third irrelevant noise-free attribute c=5.
        let rows: Vec<[f64; 3]> = (0..20)
            .map(|i| {
                let a = i as f64;
                let b = (i * 7 % 5) as f64;
                [a, b, 5.0]
            })
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| 1.0 + 2.0 * r[0] - r[1]).collect();
        Dataset::from_rows(vec!["a".into(), "b".into(), "c".into()], &rows, &ys).unwrap()
    }

    #[test]
    fn fit_recovers_coefficients() {
        let d = line_data();
        let idx: Vec<usize> = (0..d.n_rows()).collect();
        let m = LinearModel::fit(&d, &idx, &[0, 1]).unwrap();
        assert!((m.intercept() - 1.0).abs() < 1e-8);
        assert!((m.coefficient(0).unwrap() - 2.0).abs() < 1e-8);
        assert!((m.coefficient(1).unwrap() + 1.0).abs() < 1e-8);
        assert_eq!(m.coefficient(2), None);
    }

    #[test]
    fn constant_attribute_is_dropped() {
        let d = line_data();
        let idx: Vec<usize> = (0..d.n_rows()).collect();
        // Attribute c is constant 5.0 -> must be dropped, not fitted.
        let m = LinearModel::fit(&d, &idx, &[0, 2]).unwrap();
        assert_eq!(m.coefficient(2), None);
        assert!(m.coefficient(0).is_some());
    }

    #[test]
    fn all_constant_attrs_yield_mean_model() {
        let d =
            Dataset::from_rows(vec!["x".into()], &[[3.0], [3.0], [3.0]], &[1.0, 2.0, 3.0]).unwrap();
        let m = LinearModel::fit(&d, &[0, 1, 2], &[0]).unwrap();
        assert_eq!(m.terms().len(), 0);
        assert!((m.intercept() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_subset_is_error() {
        let d = line_data();
        assert!(matches!(
            LinearModel::fit(&d, &[], &[0]),
            Err(MtreeError::EmptyDataset)
        ));
    }

    #[test]
    fn elimination_drops_noise_terms() {
        // y depends only on a; b is random noise. With few instances, the
        // inflation factor punishes the extra parameter.
        let rows: Vec<[f64; 2]> = (0..12)
            .map(|i| [i as f64, ((i * 2654435761u64 as usize) % 97) as f64])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| 3.0 * r[0]).collect();
        let d = Dataset::from_rows(vec!["a".into(), "b".into()], &rows, &ys).unwrap();
        let idx: Vec<usize> = (0..d.n_rows()).collect();
        let m = LinearModel::fit_with_elimination(&d, &idx, &[0, 1]).unwrap();
        assert!(m.coefficient(0).is_some(), "true term kept");
        assert_eq!(m.coefficient(1), None, "noise term dropped: {m:?}");
    }

    #[test]
    fn elimination_can_reduce_to_constant() {
        // Pure noise target: best model is the mean.
        let rows: Vec<[f64; 1]> = (0..8).map(|i| [i as f64]).collect();
        let ys = [5.0, 5.1, 4.9, 5.0, 5.05, 4.95, 5.0, 5.0];
        let d = Dataset::from_rows(vec!["a".into()], &rows, &ys).unwrap();
        let idx: Vec<usize> = (0..8).collect();
        let m = LinearModel::fit_with_elimination(&d, &idx, &[0]).unwrap();
        // Either constant or nearly-zero slope; the inflated error of the
        // constant model must not be worse.
        let constant = LinearModel::constant(5.0);
        assert!(m.inflated_error(&d, &idx) <= constant.inflated_error(&d, &idx) + 1e-9);
    }

    #[test]
    fn inflated_error_punishes_small_subsets() {
        let d = line_data();
        let idx: Vec<usize> = (0..3).collect();
        let m = LinearModel::fit(&d, &idx, &[0, 1]).unwrap();
        // n = 3, v could be 3 -> essentially infinite estimate.
        if m.n_params() >= 3 {
            assert!(m.inflated_error(&d, &idx) > 1e100);
        }
    }

    #[test]
    fn predict_and_errors() {
        let m = LinearModel::constant(2.5);
        assert_eq!(m.predict(&[1.0, 2.0]), 2.5);
        let d = line_data();
        let idx: Vec<usize> = (0..d.n_rows()).collect();
        let fitted = LinearModel::fit(&d, &idx, &[0, 1]).unwrap();
        assert!(fitted.mean_abs_error(&d, &idx) < 1e-8);
        assert_eq!(m.mean_abs_error(&d, &[]), 0.0);
    }

    #[test]
    fn render_formats_signs() {
        let d = line_data();
        let idx: Vec<usize> = (0..d.n_rows()).collect();
        let m = LinearModel::fit(&d, &idx, &[0, 1]).unwrap();
        let names: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let s = m.render("CPI", &names);
        assert!(s.starts_with("CPI = 1.0000"), "{s}");
        assert!(s.contains("+ 2.0000 * a"), "{s}");
        assert!(s.contains("- 1.0000 * b"), "{s}");
    }

    #[test]
    fn serde_roundtrip() {
        let m = LinearModel::constant(1.5);
        let json = serde_json::to_string(&m).unwrap();
        let back: LinearModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
