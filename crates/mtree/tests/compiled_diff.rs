//! Differential tests: the compiled batch engine against the interpreted
//! per-row walk.
//!
//! Property-generated datasets train a tree; every prediction of
//! `CompiledTree::predict_batch` must be **bit-identical** (`to_bits()`) to
//! `ModelTree::predict` for every row — across smoothing on/off, pruning
//! on/off, and every `Parallelism` setting. Any divergence, even in the last
//! ulp, is a bug in the compiled flattening.

use mtperf_linalg::Parallelism;
use mtperf_mtree::{Dataset, M5Params, ModelTree, RuleSet};
use proptest::prelude::*;

/// Strategy: a dataset over three attributes whose target is a noisy
/// two-regime piecewise-linear function — enough structure for real splits,
/// enough noise for non-trivial leaf models.
fn dataset(n: usize) -> impl Strategy<Value = Dataset> {
    (
        prop::collection::vec((-10.0..10.0f64, -5.0..5.0f64, 0.0..1.0f64), n),
        prop::collection::vec(-0.2..0.2f64, n),
    )
        .prop_map(|(xs, noise)| {
            let rows: Vec<[f64; 3]> = xs.iter().map(|&(a, b, c)| [a, b, c]).collect();
            let ys: Vec<f64> = xs
                .iter()
                .zip(&noise)
                .map(|(&(a, b, c), &e)| {
                    let base = if a <= 0.0 {
                        1.0 + 0.5 * b - 2.0 * c
                    } else {
                        6.0 - 0.3 * b + c
                    };
                    base + e
                })
                .collect();
            Dataset::from_rows(vec!["a".into(), "b".into(), "c".into()], &rows, &ys).unwrap()
        })
}

/// All parallelism settings the batch path must agree under.
const PAR_SETTINGS: [Parallelism; 4] = [
    Parallelism::Auto,
    Parallelism::Off,
    Parallelism::Fixed(2),
    Parallelism::Fixed(7),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Compiled batch predictions are bit-identical to the interpreted
    /// per-row walk for every row, smoothing on and off, at every
    /// parallelism setting.
    #[test]
    fn batch_is_bit_identical_to_interpreted(
        d in dataset(90),
        smoothing in prop_oneof![Just(false), Just(true)],
        min_inst in 5usize..12,
    ) {
        let params = M5Params::default()
            .with_min_instances(min_inst)
            .with_smoothing(smoothing);
        let tree = ModelTree::fit(&d, &params).unwrap();
        let compiled = tree.compile();
        let m = d.to_matrix();
        let expected: Vec<u64> = (0..d.n_rows())
            .map(|i| tree.predict(&d.row(i)).to_bits())
            .collect();
        for par in PAR_SETTINGS {
            let batch = compiled.try_predict_batch_with(&m, par).unwrap();
            prop_assert_eq!(batch.len(), d.n_rows());
            for (i, p) in batch.iter().enumerate() {
                prop_assert_eq!(
                    p.to_bits(), expected[i],
                    "row {} diverged under {:?} (smoothing {})",
                    i, par, smoothing
                );
            }
        }
    }

    /// The compiled single-row path matches the interpreted one too (the
    /// batch loop and the scalar entry point share the routing kernel).
    #[test]
    fn scalar_path_is_bit_identical(d in dataset(70), smoothing in prop_oneof![Just(false), Just(true)]) {
        let params = M5Params::default()
            .with_min_instances(6)
            .with_smoothing(smoothing);
        let tree = ModelTree::fit(&d, &params).unwrap();
        let compiled = tree.compile();
        for i in 0..d.n_rows() {
            let row = d.row(i);
            prop_assert_eq!(
                compiled.predict(&row).to_bits(),
                tree.predict(&row).to_bits()
            );
        }
    }

    /// Unpruned trees stress deeper structures; the contract must hold
    /// there as well.
    #[test]
    fn unpruned_trees_stay_bit_identical(d in dataset(80), smoothing in prop_oneof![Just(false), Just(true)]) {
        let params = M5Params::default()
            .with_min_instances(4)
            .with_prune(false)
            .with_smoothing(smoothing);
        let tree = ModelTree::fit(&d, &params).unwrap();
        let compiled = tree.compile();
        let m = d.to_matrix();
        let batch = compiled.predict_batch_with(&m, Parallelism::Fixed(3));
        for (i, b) in batch.iter().enumerate() {
            prop_assert_eq!(b.to_bits(), tree.predict(&d.row(i)).to_bits());
        }
    }

    /// Compiled rules agree bit-for-bit with the interpreted rule set (and
    /// with the unsmoothed tree, whose space the rules partition).
    #[test]
    fn compiled_rules_are_bit_identical(d in dataset(80)) {
        let params = M5Params::default().with_min_instances(6).with_smoothing(false);
        let tree = ModelTree::fit(&d, &params).unwrap();
        let rules = RuleSet::from_tree(&tree);
        let compiled = rules.compile();
        let m = d.to_matrix();
        for par in PAR_SETTINGS {
            let batch = compiled.predict_batch_with(&m, par);
            for (i, b) in batch.iter().enumerate() {
                let row = d.row(i);
                prop_assert_eq!(b.to_bits(), rules.predict(&row).to_bits());
                prop_assert_eq!(b.to_bits(), tree.predict_raw(&row).to_bits());
            }
        }
    }

    /// Batch prediction on out-of-distribution rows (beyond the training
    /// hull) still matches the interpreted walk — routing and smoothing
    /// must not assume in-range inputs.
    #[test]
    fn extrapolation_rows_stay_bit_identical(
        d in dataset(60),
        probes in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64, -100.0..100.0f64), 32),
    ) {
        let params = M5Params::default().with_min_instances(6).with_smoothing(true);
        let tree = ModelTree::fit(&d, &params).unwrap();
        let compiled = tree.compile();
        let rows: Vec<f64> = probes.iter().flat_map(|&(a, b, c)| [a, b, c]).collect();
        let m = mtperf_linalg::Matrix::from_vec(probes.len(), 3, rows).unwrap();
        let batch = compiled.predict_batch_with(&m, Parallelism::Fixed(2));
        for (i, &(a, b, c)) in probes.iter().enumerate() {
            prop_assert_eq!(batch[i].to_bits(), tree.predict(&[a, b, c]).to_bits());
        }
    }
}
