//! Property-based tests for the M5' implementation.

use mtperf_mtree::{best_split, Dataset, LinearModel, M5Params, ModelTree};
use proptest::prelude::*;

/// Strategy: a dataset of n rows over two attributes with targets generated
/// by a piecewise function plus bounded noise.
fn dataset(n: usize) -> impl Strategy<Value = Dataset> {
    (
        prop::collection::vec((-10.0..10.0f64, -10.0..10.0f64), n),
        prop::collection::vec(-0.1..0.1f64, n),
    )
        .prop_map(|(xs, noise)| {
            let rows: Vec<[f64; 2]> = xs.iter().map(|&(a, b)| [a, b]).collect();
            let ys: Vec<f64> = xs
                .iter()
                .zip(&noise)
                .map(|(&(a, b), &e)| {
                    let base = if a <= 0.0 {
                        1.0 + 0.5 * b
                    } else {
                        5.0 - 0.3 * b
                    };
                    base + e
                })
                .collect();
            Dataset::from_rows(vec!["a".into(), "b".into()], &rows, &ys).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SDR is non-negative and at most the total standard deviation.
    #[test]
    fn sdr_is_bounded(d in dataset(40), min_inst in 1usize..6) {
        let idx: Vec<usize> = (0..d.n_rows()).collect();
        if let Some(s) = best_split(&d, &idx, min_inst) {
            let sd = mtperf_linalg::stats::std_dev(d.targets());
            prop_assert!(s.sdr > 0.0);
            prop_assert!(s.sdr <= sd + 1e-9, "sdr {} vs sd {}", s.sdr, sd);
            prop_assert!(s.attr < d.n_attrs());
            prop_assert!(s.threshold.is_finite());
        }
    }

    /// The split's threshold actually separates the instances into two
    /// admissible groups.
    #[test]
    fn split_partitions_admissibly(d in dataset(40), min_inst in 1usize..6) {
        let idx: Vec<usize> = (0..d.n_rows()).collect();
        if let Some(s) = best_split(&d, &idx, min_inst) {
            let col = d.column(s.attr);
            let left = idx.iter().filter(|&&i| col[i] <= s.threshold).count();
            let right = idx.len() - left;
            prop_assert!(left >= min_inst && right >= min_inst);
        }
    }

    /// Unsmoothed trees trained without pruning predict the exact training
    /// target mean when asked for the mean (sanity: prediction is finite
    /// and within a sane envelope of the target range).
    #[test]
    fn predictions_are_finite_and_bounded(d in dataset(60)) {
        let params = M5Params::default().with_min_instances(5).with_smoothing(false);
        let tree = ModelTree::fit(&d, &params).unwrap();
        let (lo, hi) = mtperf_linalg::stats::min_max(d.targets()).unwrap();
        let span = (hi - lo).max(1.0);
        for i in 0..d.n_rows() {
            let p = tree.predict(&d.row(i));
            prop_assert!(p.is_finite());
            // Leaf linear models can extrapolate mildly but must stay near
            // the training hull on training points.
            prop_assert!(p > lo - span && p < hi + span, "p = {p}, range [{lo}, {hi}]");
        }
    }

    /// Smoothing is a convex combination of the node models along the
    /// root path, so the smoothed prediction must lie within the hull of
    /// *all* node-model predictions of the tree (a superset of the path).
    #[test]
    fn smoothing_is_a_convex_blend(d in dataset(60)) {
        let smooth = ModelTree::fit(
            &d,
            &M5Params::default().with_min_instances(5).with_smoothing(true),
        )
        .unwrap();
        fn collect_preds(node: &mtperf_mtree::Node, row: &[f64], out: &mut Vec<f64>) {
            out.push(node.model().predict(row));
            if let mtperf_mtree::Node::Split { left, right, .. } = node {
                collect_preds(left, row, out);
                collect_preds(right, row, out);
            }
        }
        for i in (0..d.n_rows()).step_by(7) {
            let row = d.row(i);
            let ps = smooth.predict(&row);
            prop_assert!(ps.is_finite());
            let mut preds = Vec::new();
            collect_preds(smooth.root(), &row, &mut preds);
            let lo = preds.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = preds.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(
                ps >= lo - 1e-9 && ps <= hi + 1e-9,
                "smoothed {ps} outside hull [{lo}, {hi}]"
            );
        }
    }

    /// More training instances per leaf never increases the leaf count.
    #[test]
    fn min_instances_monotone_in_leaf_count(d in dataset(80)) {
        let small = ModelTree::fit(
            &d,
            &M5Params::default().with_min_instances(4).with_prune(false),
        )
        .unwrap();
        let large = ModelTree::fit(
            &d,
            &M5Params::default().with_min_instances(20).with_prune(false),
        )
        .unwrap();
        prop_assert!(large.n_leaves() <= small.n_leaves());
    }

    /// Pruning never increases the leaf count.
    #[test]
    fn pruning_shrinks_or_keeps(d in dataset(80)) {
        let pruned = ModelTree::fit(
            &d,
            &M5Params::default().with_min_instances(5),
        )
        .unwrap();
        let unpruned = ModelTree::fit(
            &d,
            &M5Params::default().with_min_instances(5).with_prune(false),
        )
        .unwrap();
        prop_assert!(pruned.n_leaves() <= unpruned.n_leaves());
    }

    /// A linear model's OLS fit has mean absolute error no worse than the
    /// constant-mean model on the same data.
    #[test]
    fn ols_beats_mean_in_training_error(d in dataset(30)) {
        let idx: Vec<usize> = (0..d.n_rows()).collect();
        let ols = LinearModel::fit(&d, &idx, &[0, 1]).unwrap();
        let mean = mtperf_linalg::stats::mean(d.targets());
        let constant = LinearModel::constant(mean);
        // MAE isn't what OLS minimizes, so allow slack proportional to the
        // target spread; the squared-error optimum can't be grossly worse.
        let spread = mtperf_linalg::stats::std_dev(d.targets());
        prop_assert!(
            ols.mean_abs_error(&d, &idx)
                <= constant.mean_abs_error(&d, &idx) + 0.5 * spread + 1e-9
        );
    }

    /// Classification routes every instance to a declared leaf, and the
    /// occupancy over all leaves accounts for every instance exactly once.
    #[test]
    fn classification_partition(d in dataset(60)) {
        let tree = ModelTree::fit(
            &d,
            &M5Params::default().with_min_instances(5).with_smoothing(false),
        )
        .unwrap();
        let rows: Vec<Vec<f64>> = (0..d.n_rows()).map(|i| d.row(i)).collect();
        let occ = mtperf_mtree::analysis::leaf_occupancy(&tree, &rows);
        prop_assert_eq!(occ.values().sum::<usize>(), d.n_rows());
        for id in occ.keys() {
            prop_assert!(id.0 >= 1 && id.0 <= tree.n_leaves());
        }
    }
}
