//! Property-based tests for the analysis layer on degenerate inputs.
//!
//! The what-if/contribution family is the user-facing surface of the
//! paper's methodology, and it is fed rows from *outside* the training
//! set — CSV imports, hypothetical machine states, caller-constructed
//! vectors. This suite fuzzes that surface with the nasty shapes the unit
//! tests cannot enumerate: constant targets (zero-term leaf models),
//! constant columns, tiny datasets, short/long rows, out-of-range and
//! duplicate change lists. The invariant under test is uniform: every
//! malformed input is a typed [`MtreeError`], every well-formed input a
//! finite answer — never a panic.

use mtperf_mtree::{analysis, Dataset, M5Params, ModelTree, MtreeError};
use proptest::prelude::*;

/// Strategy: a dataset over three attributes where one column may be
/// constant and the target may be constant, piecewise, or linear — the
/// regimes that produce zero-term leaves, eliminated attributes, and
/// single-leaf trees.
fn degenerate_dataset() -> impl Strategy<Value = Dataset> {
    (
        prop::collection::vec((-10.0..10.0f64, -10.0..10.0f64, -10.0..10.0f64), 10..50),
        0u32..3,      // target regime: constant / piecewise / linear
        0u32..2,      // freeze column 1 to a constant?
        -5.0..5.0f64, // the constant value
    )
        .prop_map(|(xs, regime, freeze, constant)| {
            let rows: Vec<[f64; 3]> = xs
                .iter()
                .map(|&(a, b, c)| [a, if freeze == 1 { constant } else { b }, c])
                .collect();
            let ys: Vec<f64> = rows
                .iter()
                .map(|r| match regime {
                    0 => 2.5,
                    1 => {
                        if r[0] <= 0.0 {
                            1.0 + 0.4 * r[2]
                        } else {
                            6.0 - 0.2 * r[2]
                        }
                    }
                    _ => 0.5 * r[0] + 0.25 * r[1] - 0.1 * r[2],
                })
                .collect();
            Dataset::from_rows(vec!["a".into(), "b".into(), "c".into()], &rows, &ys).unwrap()
        })
}

fn fit(d: &Dataset, min_inst: usize, smooth: bool) -> ModelTree {
    ModelTree::fit(
        d,
        &M5Params::default()
            .with_min_instances(min_inst)
            .with_smoothing(smooth),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Well-formed rows get finite answers from the whole analysis family,
    /// whatever degenerate shape the tree grew into.
    #[test]
    fn well_formed_rows_never_panic_or_return_non_finite(
        d in degenerate_dataset(),
        min_inst in 2usize..12,
        smooth in 0u32..2,
        probe in prop::collection::vec(-20.0..20.0f64, 3),
    ) {
        let tree = fit(&d, min_inst, smooth == 1);
        let class = tree.try_classify(&probe).unwrap();
        prop_assert!(class.prediction.is_finite());

        let contribs = analysis::contributions(&tree, &probe).unwrap();
        for c in &contribs {
            prop_assert!(c.amount.is_finite());
            prop_assert!(c.fraction.is_finite());
        }
        let ops = analysis::rank_opportunities(&tree, &probe).unwrap();
        prop_assert!(ops.len() <= contribs.len());

        for attr in 0..3 {
            prop_assert!(analysis::what_if(&tree, &probe, attr, 0.0).unwrap().is_finite());
            prop_assert!(analysis::elimination_gain(&tree, &probe, attr).unwrap().is_finite());
        }
        let combined = analysis::what_if_many(
            &tree,
            &probe,
            &[(0, 0.0), (2, 1.0)],
        )
        .unwrap();
        prop_assert!(combined.is_finite());
        prop_assert!(analysis::interaction_cost(&tree, &probe, 0, 2).unwrap().is_finite());
    }

    /// Malformed inputs are typed errors — the exact variants the CLI maps
    /// to exit 65 — not index panics.
    #[test]
    fn malformed_inputs_are_typed_errors(
        d in degenerate_dataset(),
        min_inst in 2usize..12,
        bad_attr in 3usize..20,
        probe in prop::collection::vec(-20.0..20.0f64, 3),
    ) {
        let tree = fit(&d, min_inst, true);

        // Short row: one attribute missing.
        let short = &probe[..2];
        prop_assert!(matches!(
            tree.try_classify(short).unwrap_err(),
            MtreeError::RowLengthMismatch { .. }
        ));
        prop_assert!(matches!(
            analysis::contributions(&tree, short).unwrap_err(),
            MtreeError::RowLengthMismatch { .. }
        ));
        prop_assert!(matches!(
            analysis::what_if(&tree, short, 0, 0.0).unwrap_err(),
            MtreeError::RowLengthMismatch { .. }
        ));

        // Out-of-range attribute index.
        prop_assert!(matches!(
            analysis::what_if(&tree, &probe, bad_attr, 0.0).unwrap_err(),
            MtreeError::AttributeOutOfRange { attr, .. } if attr == bad_attr
        ));
        prop_assert!(matches!(
            analysis::elimination_gain(&tree, &probe, bad_attr).unwrap_err(),
            MtreeError::AttributeOutOfRange { .. }
        ));

        // Duplicate attributes in one change set (including via
        // interaction_cost's a == b precondition).
        prop_assert!(matches!(
            analysis::what_if_many(&tree, &probe, &[(1, 0.5), (1, 0.7)]).unwrap_err(),
            MtreeError::DuplicateAttribute { attr: 1 }
        ));
        prop_assert!(matches!(
            analysis::interaction_cost(&tree, &probe, 2, 2).unwrap_err(),
            MtreeError::DuplicateAttribute { attr: 2 }
        ));

        // Longer-than-needed rows stay accepted (forward compatibility
        // with augmented feature sets).
        let mut long = probe.clone();
        long.push(0.0);
        prop_assert!(tree.try_classify(&long).is_ok());
        prop_assert!(analysis::what_if(&tree, &long, 3, 1.0).is_ok());
    }

    /// A constant-target tree classifies every row to a zero-term model:
    /// no contributions, no opportunities, and what-if moves nothing.
    #[test]
    fn constant_targets_yield_empty_contributions(
        n in 10usize..40,
        probe in prop::collection::vec(-10.0..10.0f64, 3),
        y in -3.0..3.0f64,
    ) {
        let rows: Vec<[f64; 3]> = (0..n)
            .map(|i| [i as f64, (i % 5) as f64, -(i as f64)])
            .collect();
        let ys = vec![y; n];
        let d = Dataset::from_rows(
            vec!["a".into(), "b".into(), "c".into()],
            &rows,
            &ys,
        )
        .unwrap();
        let tree = fit(&d, 4, true);
        prop_assert!(analysis::contributions(&tree, &probe).unwrap().is_empty());
        prop_assert!(analysis::rank_opportunities(&tree, &probe).unwrap().is_empty());
        let moved = analysis::what_if(&tree, &probe, 0, 100.0).unwrap();
        prop_assert!((moved - y).abs() < 1e-9);
    }
}
