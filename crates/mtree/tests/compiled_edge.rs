//! Edge-of-batch contracts for compiled inference.
//!
//! Zero- and single-row batches must return without touching the worker
//! pool or emitting block instrumentation (`predict.leaf_buckets_*`,
//! `predict_batch` spans), while keeping the full error ladder: an empty
//! batch succeeds even under a fired token, a fired token beats a single
//! row's work, and results stay bit-identical to the interpreted walk.
//!
//! Everything lives in ONE test function on purpose: the obs sink is
//! process-global, and a sibling test predicting concurrently would leak
//! its counters into the session under assertion.

use std::time::Duration;

use mtperf_linalg::parallel::{CancelToken, Parallelism};
use mtperf_linalg::Matrix;
use mtperf_mtree::{Dataset, M5Params, ModelTree, MtreeError};

fn piecewise(n: i64) -> Dataset {
    let rows: Vec<[f64; 3]> = (0..n)
        .map(|i| [(i % 37) as f64, (i % 11) as f64, (i % 5) as f64])
        .collect();
    let ys: Vec<f64> = rows
        .iter()
        .map(|r| {
            if r[0] <= 18.0 {
                1.0 + 0.4 * r[1] - 0.1 * r[2]
            } else {
                9.0 - 0.2 * r[0] + 0.3 * r[2]
            }
        })
        .collect();
    Dataset::from_rows(vec!["a".into(), "b".into(), "c".into()], &rows, &ys).unwrap()
}

fn obs_session(f: impl FnOnce()) -> mtperf_obs::Report {
    mtperf_obs::init(mtperf_obs::ObsConfig {
        trace: true,
        ..Default::default()
    })
    .unwrap();
    f();
    mtperf_obs::finish().expect("session was enabled")
}

#[test]
fn trivial_batches_skip_pool_and_instrumentation() {
    let d = piecewise(400);
    for smoothing in [false, true] {
        let tree = ModelTree::fit(
            &d,
            &M5Params::default()
                .with_min_instances(12)
                .with_smoothing(smoothing),
        )
        .unwrap();
        let c = tree.compile();
        let m = d.to_matrix();
        let empty = Matrix::zeros(0, 3);
        let row0 = d.row(0);
        let one = Matrix::from_rows(&[&row0]).unwrap();

        // Trivial batches: no predict spans, no leaf-bucket counters, at
        // any parallelism setting.
        let report = obs_session(|| {
            assert!(c.predict_batch_with(&empty, Parallelism::Auto).is_empty());
            for par in [Parallelism::Off, Parallelism::Auto, Parallelism::Fixed(4)] {
                let got = c.predict_batch_with(&one, par);
                assert_eq!(got.len(), 1);
                assert_eq!(
                    got[0].to_bits(),
                    tree.predict(&row0).to_bits(),
                    "single row, smoothing {smoothing}, par {par:?}"
                );
            }
        });
        assert!(
            report
                .counters
                .iter()
                .all(|(name, _)| !name.starts_with("predict.leaf_buckets")),
            "trivial batches emitted bucket counters: {:?}",
            report.counters
        );
        assert!(
            report.spans.iter().all(|s| !s.path.contains("predict")),
            "trivial batches opened predict spans: {:?}",
            report.spans
        );
        assert!(
            report
                .counters
                .iter()
                .all(|(name, _)| !name.starts_with("pool.")),
            "trivial batches touched the pool: {:?}",
            report.counters
        );

        // A real batch emits exactly the instrumentation the trivial ones
        // skipped (sanity that the assertions above can fail at all).
        let report = obs_session(|| {
            let serial = c.predict_batch_with(&m, Parallelism::Off);
            for (i, p) in serial.iter().enumerate() {
                assert_eq!(p.to_bits(), tree.predict(&d.row(i)).to_bits(), "row {i}");
            }
        });
        assert!(report
            .counters
            .iter()
            .any(|(name, _)| name == "predict.leaf_buckets_hit"));
        assert!(report
            .spans
            .iter()
            .any(|s| s.path.contains("predict_batch")));

        // Error ladder on the trivial paths: empty succeeds under a fired
        // token; a fired token (explicit or expired deadline) beats a
        // single row's work.
        let fired = CancelToken::new();
        fired.cancel();
        assert!(c
            .try_predict_batch_cancel(&empty, Parallelism::Auto, &fired)
            .unwrap()
            .is_empty());
        match c.try_predict_batch_cancel(&one, Parallelism::Auto, &fired) {
            Err(MtreeError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        let expired = CancelToken::with_deadline(Duration::ZERO);
        match c.try_predict_batch_cancel(&one, Parallelism::Off, &expired) {
            Err(MtreeError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }
}
