//! Fault-injection properties for the persistence envelopes.
//!
//! Reuses the deterministic corruption operators of
//! `mtperf_counters::faultinject` (row drops, field truncation,
//! non-finite flips, saturation, duplication) against *saved model
//! envelopes* instead of counter CSVs. The operators never touch line 1 —
//! which for a v2 envelope is exactly the integrity header — so every
//! fault lands in the checksummed payload, the spot a torn or bit-rotted
//! file would actually differ.
//!
//! Properties:
//!
//! * any corruption that changes the envelope text makes `from_json`/
//!   `load` return a typed [`PersistError`] — never a panic, never a
//!   silently-wrong model;
//! * the v2 payload is itself a loadable v1 document (backward
//!   compatibility is structural, not best-effort);
//! * corrupting a bare (checksum-less) v1 document still never panics.

use mtperf_counters::faultinject::{FaultInjector, FaultOp};
use mtperf_mtree::{Dataset, M5Params, ModelTree, RuleSet};
use proptest::prelude::*;

/// Strategy: a two-attribute dataset with a split-friendly piecewise target.
fn dataset(n: usize) -> impl Strategy<Value = Dataset> {
    (
        prop::collection::vec((-8.0..8.0f64, -4.0..4.0f64), n),
        prop::collection::vec(-0.15..0.15f64, n),
    )
        .prop_map(|(xs, noise)| {
            let rows: Vec<[f64; 2]> = xs.iter().map(|&(a, b)| [a, b]).collect();
            let ys: Vec<f64> = xs
                .iter()
                .zip(&noise)
                .map(|(&(a, b), &e)| {
                    let base = if a <= 0.0 {
                        1.5 + 0.6 * b
                    } else {
                        6.0 - 0.3 * b
                    };
                    base + e
                })
                .collect();
            Dataset::from_rows(vec!["a".into(), "b".into()], &rows, &ys).unwrap()
        })
}

fn fault_op() -> impl Strategy<Value = FaultOp> {
    prop_oneof![
        (1usize..6).prop_map(FaultOp::DropRows),
        (1usize..6).prop_map(FaultOp::TruncateFields),
        (1usize..6).prop_map(FaultOp::FlipNonFinite),
        (1usize..6).prop_map(FaultOp::SaturateCounters),
        (1usize..6).prop_map(FaultOp::DuplicateSections),
    ]
}

fn fit(d: &Dataset) -> ModelTree {
    ModelTree::fit(d, &M5Params::default().with_min_instances(6)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Corrupting a sealed tree envelope anywhere in its payload yields a
    /// typed error — reaching the assertion at all proves no panic.
    #[test]
    fn corrupted_tree_envelope_is_a_typed_error(
        d in dataset(60),
        op in fault_op(),
        seed in 0u64..1024,
    ) {
        let tree = fit(&d);
        let sealed = tree.to_json();
        let corrupted = FaultInjector::new(seed).apply(op, &sealed);
        let result = ModelTree::from_json(&corrupted.text);
        if corrupted.text != sealed {
            prop_assert!(
                result.is_err(),
                "corruption {op:?} (seed {seed}) loaded as a valid model"
            );
        } else {
            // The operator happened to be an identity (e.g. a truncation
            // that kept every field): the envelope must still load.
            prop_assert!(result.is_ok());
        }
    }

    /// Same property through the file path: save, corrupt on disk, load.
    #[test]
    fn corrupted_tree_file_is_a_typed_error(
        d in dataset(60),
        op in fault_op(),
        seed in 0u64..1024,
    ) {
        let tree = fit(&d);
        let dir = std::env::temp_dir()
            .join(format!("mtperf-persist-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("model-{seed}.json"));
        tree.save(&path).unwrap();
        let sealed = std::fs::read_to_string(&path).unwrap();
        let corrupted = FaultInjector::new(seed).apply(op, &sealed);
        std::fs::write(&path, &corrupted.text).unwrap();
        let result = ModelTree::load(&path);
        if corrupted.text != sealed {
            prop_assert!(result.is_err(), "{op:?} seed {seed}");
        } else {
            prop_assert!(result.is_ok());
        }
        std::fs::remove_file(&path).ok();
    }

    /// Rule-set envelopes carry the same integrity protection.
    #[test]
    fn corrupted_rule_envelope_is_a_typed_error(
        d in dataset(60),
        op in fault_op(),
        seed in 0u64..1024,
    ) {
        let rules = RuleSet::from_tree(&fit(&d));
        let sealed = rules.to_json();
        let corrupted = FaultInjector::new(seed).apply(op, &sealed);
        let result = RuleSet::from_json(&corrupted.text);
        if corrupted.text != sealed {
            prop_assert!(result.is_err(), "{op:?} seed {seed}");
        } else {
            prop_assert!(result.is_ok());
        }
    }

    /// The checksummed payload of a v2 envelope is itself a complete v1
    /// document: stripping the integrity header must load bit-identically,
    /// which is what keeps pre-envelope files loadable forever.
    #[test]
    fn v2_payload_is_a_loadable_v1_document(d in dataset(60)) {
        let tree = fit(&d);
        let sealed = tree.to_json();
        let (header, body) = sealed.split_once('\n').unwrap();
        prop_assert!(header.contains("\"version\":2"), "{header}");
        prop_assert!(header.contains("fnv1a64:"), "{header}");
        let loaded = ModelTree::from_json(body).unwrap();
        prop_assert_eq!(&loaded, &tree);
    }

    /// Corrupting an unprotected v1 document (no checksum line to catch
    /// it) must still never panic: it either fails parsing or — for
    /// value-level damage valid JSON can absorb — loads as *some* model.
    #[test]
    fn corrupted_bare_v1_never_panics(
        d in dataset(60),
        op in fault_op(),
        seed in 0u64..1024,
    ) {
        let tree = fit(&d);
        let sealed = tree.to_json();
        let (_, body) = sealed.split_once('\n').unwrap();
        let corrupted = FaultInjector::new(seed).apply(op, body);
        // Returning at all (Ok or Err) is the property under test.
        let _ = ModelTree::from_json(&corrupted.text);
    }
}
