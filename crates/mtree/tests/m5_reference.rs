//! Hand-verified reference cases for the M5' machinery: golden values
//! computed by hand (shown in comments) pin the implementation to the
//! published algorithm.

use mtperf_mtree::{best_split, Dataset, LinearModel, M5Params, ModelTree};

/// SDR of a known split, computed by hand.
///
/// Data: x = [1,2,3,4], y = [0, 0, 10, 10].
/// sd(total): mean 5, deviations (−5,−5,5,5) → variance 25 → sd 5.
/// Split at x ≤ 2.5: both halves constant → sd 0.
/// SDR = 5 − (2/4)·0 − (2/4)·0 = 5.
#[test]
fn sdr_golden_value() {
    let d = Dataset::from_rows(
        vec!["x".into()],
        &[[1.0], [2.0], [3.0], [4.0]],
        &[0.0, 0.0, 10.0, 10.0],
    )
    .unwrap();
    let s = best_split(&d, &[0, 1, 2, 3], 1).unwrap();
    assert!((s.sdr - 5.0).abs() < 1e-12, "sdr = {}", s.sdr);
    assert!((s.threshold - 2.5).abs() < 1e-12);
}

/// SDR of an imperfect split, by hand.
///
/// Data: x = [1,2,3,4], y = [0, 2, 8, 10].
/// total: mean 5, deviations (−5,−3,3,5) → variance (25+9+9+25)/4 = 17 → sd 4.1231.
/// Best split x ≤ 2.5: left y = [0,2] sd 1; right y = [8,10] sd 1.
/// SDR = 4.1231 − 0.5·1 − 0.5·1 = 3.1231.
#[test]
fn sdr_imperfect_split_golden_value() {
    let d = Dataset::from_rows(
        vec!["x".into()],
        &[[1.0], [2.0], [3.0], [4.0]],
        &[0.0, 2.0, 8.0, 10.0],
    )
    .unwrap();
    let s = best_split(&d, &[0, 1, 2, 3], 1).unwrap();
    let expected = 17.0_f64.sqrt() - 1.0;
    assert!((s.sdr - expected).abs() < 1e-9, "sdr = {}", s.sdr);
}

/// The inflation factor (n + v) / (n − v), by hand.
///
/// A constant model (v = 1) on 5 instances with residuals summing to 5
/// (MAE = 1) gets inflated error 1 · (5+1)/(5−1) = 1.5.
#[test]
fn inflation_factor_golden_value() {
    let d = Dataset::from_rows(
        vec!["x".into()],
        &[[1.0], [2.0], [3.0], [4.0], [5.0]],
        &[1.0, 3.0, 2.0, 1.0, 3.0], // mean 2, |residuals| = 1,1,0,1,1 → MAE 0.8
    )
    .unwrap();
    let idx = [0, 1, 2, 3, 4];
    let m = LinearModel::constant(2.0);
    assert!((m.mean_abs_error(&d, &idx) - 0.8).abs() < 1e-12);
    assert!((m.inflated_error(&d, &idx) - 0.8 * 6.0 / 4.0).abs() < 1e-12);
}

/// M5 smoothing, by hand, on a depth-1 tree.
///
/// Construct data where the tree splits once and each side is constant:
/// left n = 4 (y = 0), right n = 4 (y = 8). The root model is fitted over
/// the split attribute; for a point on the left:
///
///   p' = (n·p + k·q) / (n + k)  with n = 4, k = 15,
///
/// where p is the leaf prediction and q the root model's prediction.
#[test]
fn smoothing_golden_formula() {
    let rows: Vec<[f64; 1]> = (0..8).map(|i| [i as f64]).collect();
    let ys = [0.0, 0.0, 0.0, 0.0, 8.0, 8.0, 8.0, 8.0];
    let d = Dataset::from_rows(vec!["x".into()], &rows, &ys).unwrap();
    let params = M5Params::default()
        .with_min_instances(4)
        .with_prune(false)
        .with_smoothing(true);
    let tree = ModelTree::fit(&d, &params).unwrap();
    // One split, two leaves expected.
    assert_eq!(tree.n_leaves(), 2, "{}", tree.render("y"));

    let row = [1.0];
    let leaf_pred = tree.leaf_for(&row).model().predict(&row);
    let root_pred = tree.root().model().predict(&row);
    let n = tree.leaf_for(&row).n() as f64;
    let k = params.smoothing_k();
    let expected = (n * leaf_pred + k * root_pred) / (n + k);
    let got = tree.predict(&row);
    assert!(
        (got - expected).abs() < 1e-12,
        "got {got}, expected {expected} (leaf {leaf_pred}, root {root_pred})"
    );
}

/// OLS on two points is exact, by hand: through (0, 1) and (2, 5) the line
/// is y = 1 + 2x.
#[test]
fn ols_two_point_golden_value() {
    let d = Dataset::from_rows(vec!["x".into()], &[[0.0], [2.0]], &[1.0, 5.0]).unwrap();
    let m = LinearModel::fit(&d, &[0, 1], &[0]).unwrap();
    assert!((m.intercept() - 1.0).abs() < 1e-9);
    assert!((m.coefficient(0).unwrap() - 2.0).abs() < 1e-9);
    assert!((m.predict(&[7.0]) - 15.0).abs() < 1e-9);
}

/// WEKA-compatible behavior: the split threshold is the midpoint between
/// observed values, never an observed value itself.
#[test]
fn threshold_is_never_an_observed_value() {
    let d = Dataset::from_rows(
        vec!["x".into()],
        &[[1.0], [3.0], [5.0], [7.0], [9.0], [11.0]],
        &[0.0, 0.0, 0.0, 6.0, 6.0, 6.0],
    )
    .unwrap();
    let s = best_split(&d, &[0, 1, 2, 3, 4, 5], 1).unwrap();
    assert!((s.threshold - 6.0).abs() < 1e-12);
    for v in [1.0, 3.0, 5.0, 7.0, 9.0, 11.0] {
        assert_ne!(s.threshold, v);
    }
}
