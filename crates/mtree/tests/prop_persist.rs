//! Persistence round-trip properties: a model saved to JSON and loaded back
//! must predict bit-identically to the in-memory one — interpreted and
//! compiled — for every smoothing configuration, and rule-extraction state
//! must survive its own envelope.

use mtperf_linalg::Parallelism;
use mtperf_mtree::{Dataset, M5Params, ModelTree, RuleSet};
use proptest::prelude::*;

/// Strategy: a two-attribute dataset with a split-friendly piecewise target.
fn dataset(n: usize) -> impl Strategy<Value = Dataset> {
    (
        prop::collection::vec((-8.0..8.0f64, -4.0..4.0f64), n),
        prop::collection::vec(-0.15..0.15f64, n),
    )
        .prop_map(|(xs, noise)| {
            let rows: Vec<[f64; 2]> = xs.iter().map(|&(a, b)| [a, b]).collect();
            let ys: Vec<f64> = xs
                .iter()
                .zip(&noise)
                .map(|(&(a, b), &e)| {
                    let base = if a <= 0.0 {
                        2.0 + 0.7 * b
                    } else {
                        7.0 - 0.4 * b
                    };
                    base + e
                })
                .collect();
            Dataset::from_rows(vec!["a".into(), "b".into()], &rows, &ys).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// save → load → compile predicts bit-identically to the in-memory
    /// tree: smoothing flag, smoothing constant, and every model
    /// coefficient must survive the JSON round trip exactly.
    #[test]
    fn tree_roundtrip_compiles_bit_identically(
        d in dataset(70),
        smoothing in prop_oneof![Just(false), Just(true)],
        k in 1.0..40.0f64,
    ) {
        let params = M5Params::default()
            .with_min_instances(6)
            .with_smoothing(smoothing)
            .with_smoothing_k(k);
        let tree = ModelTree::fit(&d, &params).unwrap();
        let loaded = ModelTree::from_json(&tree.to_json()).unwrap();
        prop_assert_eq!(&loaded, &tree);
        prop_assert_eq!(loaded.params().smoothing(), smoothing);
        prop_assert_eq!(loaded.params().smoothing_k().to_bits(), k.to_bits());
        let compiled = loaded.compile();
        let batch = compiled.predict_batch_with(&d.to_matrix(), Parallelism::Fixed(2));
        for (i, b) in batch.iter().enumerate() {
            let row = d.row(i);
            prop_assert_eq!(loaded.predict(&row).to_bits(), tree.predict(&row).to_bits());
            prop_assert_eq!(b.to_bits(), tree.predict(&row).to_bits());
        }
    }

    /// Rule-extraction state (order, conditions, models, coverage) survives
    /// its envelope: a loaded rule set equals the original and its compiled
    /// form predicts bit-identically.
    #[test]
    fn rule_set_roundtrip_compiles_bit_identically(d in dataset(70)) {
        let params = M5Params::default().with_min_instances(6).with_smoothing(false);
        let tree = ModelTree::fit(&d, &params).unwrap();
        let rules = RuleSet::from_tree(&tree);
        let loaded = RuleSet::from_json(&rules.to_json()).unwrap();
        prop_assert_eq!(&loaded, &rules);
        let compiled = loaded.compile();
        let batch = compiled.predict_batch_with(&d.to_matrix(), Parallelism::Off);
        for (i, b) in batch.iter().enumerate() {
            let row = d.row(i);
            prop_assert_eq!(b.to_bits(), rules.predict(&row).to_bits());
        }
    }

    /// The two envelopes are mutually exclusive: tree JSON does not load as
    /// rules and rule JSON does not load as a tree.
    #[test]
    fn envelopes_do_not_cross_load(d in dataset(50)) {
        let tree = ModelTree::fit(&d, &M5Params::default().with_min_instances(6)).unwrap();
        let rules = RuleSet::from_tree(&tree);
        prop_assert!(RuleSet::from_json(&tree.to_json()).is_err());
        prop_assert!(ModelTree::from_json(&rules.to_json()).is_err());
    }
}
