//! The end-of-run report: aggregated span statistics, the counter/gauge
//! registry, and its human- and machine-readable renderings.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::str::FromStr;

use crate::json;

/// Output format of the end-of-run metrics registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Aligned human-readable table.
    Table,
    /// One JSON document.
    Json,
}

impl FromStr for MetricsFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "table" => Ok(MetricsFormat::Table),
            "json" => Ok(MetricsFormat::Json),
            other => Err(format!(
                "invalid metrics format {other:?}: expected \"table\" or \"json\""
            )),
        }
    }
}

/// Aggregated statistics of one span path (indices stripped, so all CV
/// folds of a run merge into one row).
#[derive(Debug, Clone)]
pub struct SpanStat {
    /// Aggregate path, e.g. `evaluate/cv/fold`.
    pub path: String,
    /// Number of spans closed under this path.
    pub calls: u64,
    /// Total wall time across those spans, in microseconds (overlapping
    /// parallel spans sum, so this is *work* time, not elapsed time).
    pub total_us: u64,
    /// Span-local counters summed across the calls.
    pub counters: Vec<(String, u64)>,
}

/// Everything [`crate::finish`] hands back for rendering.
#[derive(Debug, Clone)]
pub struct Report {
    /// Wall time from enablement to [`crate::finish`], microseconds.
    pub wall_us: u64,
    /// Aggregated span rows, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Global counter registry, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Global gauge registry, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Where the JSONL event stream went, if anywhere.
    pub trace_path: Option<PathBuf>,
    /// Whether the run asked for the human-readable span summary.
    pub summarize: bool,
    /// Which metrics rendering the run asked for, if any.
    pub metrics: Option<MetricsFormat>,
    /// Total events recorded.
    pub events: u64,
    /// First sink I/O failure, if the trace stream broke mid-run.
    pub io_error: Option<String>,
}

impl Report {
    /// Renders the human-readable span summary (the `--trace` stderr
    /// output): one row per aggregate path with call counts, total work
    /// time, and span-local counters.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace summary: {} events in {:.1} ms wall",
            self.events,
            self.wall_us as f64 / 1e3
        );
        let _ = writeln!(
            out,
            "{:<44} {:>7} {:>12}  counters",
            "span", "calls", "work ms"
        );
        let _ = writeln!(out, "{}", "-".repeat(78));
        for s in &self.spans {
            let mut counters = String::new();
            for (i, (name, value)) in s.counters.iter().enumerate() {
                if i > 0 {
                    counters.push(' ');
                }
                let _ = write!(counters, "{name}={value}");
            }
            let _ = writeln!(
                out,
                "{:<44} {:>7} {:>12.2}  {}",
                s.path,
                s.calls,
                s.total_us as f64 / 1e3,
                counters
            );
        }
        if let Some(e) = &self.io_error {
            let _ = writeln!(out, "trace sink error (stream truncated): {e}");
        }
        if let Some(p) = &self.trace_path {
            let _ = writeln!(out, "trace events -> {}", p.display());
        }
        out
    }

    /// Renders the counter/gauge registry as an aligned table.
    pub fn metrics_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<44} {:>16}", "metric", "value");
        let _ = writeln!(out, "{}", "-".repeat(61));
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name:<44} {value:>16}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "{name:<44} {value:>16.4}");
        }
        let _ = writeln!(out, "{:<44} {:>16.1}", "wall_ms", self.wall_us as f64 / 1e3);
        out
    }

    /// Renders the full report — registry plus aggregated spans — as one
    /// JSON document.
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{\"wall_us\":");
        let _ = write!(out, "{}", self.wall_us);
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, name);
            let _ = write!(out, "{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, name);
            json::push_f64(&mut out, *value);
        }
        out.push_str("},\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json::push_key(&mut out, "path");
            json::push_str_literal(&mut out, &s.path);
            let _ = write!(out, ",\"calls\":{},\"total_us\":{}", s.calls, s.total_us);
            if !s.counters.is_empty() {
                out.push_str(",\"counters\":{");
                for (j, (name, value)) in s.counters.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    json::push_key(&mut out, name);
                    let _ = write!(out, "{value}");
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Report {
        Report {
            wall_us: 1500,
            spans: vec![SpanStat {
                path: "cv/fold".into(),
                calls: 10,
                total_us: 1200,
                counters: vec![("test_rows".into(), 600)],
            }],
            counters: vec![("mtree.split_scans".into(), 42)],
            gauges: vec![("predict.rows_per_sec".into(), 1e6)],
            trace_path: None,
            summarize: true,
            metrics: Some(MetricsFormat::Table),
            events: 11,
            io_error: None,
        }
    }

    #[test]
    fn summary_lists_spans_and_counters() {
        let s = fixture().summary();
        assert!(s.contains("cv/fold"), "{s}");
        assert!(s.contains("test_rows=600"), "{s}");
        assert!(s.contains("11 events"), "{s}");
    }

    #[test]
    fn table_lists_registry() {
        let t = fixture().metrics_table();
        assert!(t.contains("mtree.split_scans"), "{t}");
        assert!(t.contains("42"), "{t}");
        assert!(t.contains("predict.rows_per_sec"), "{t}");
    }

    #[test]
    fn json_is_parseable_shape() {
        let j = fixture().metrics_json();
        assert!(j.starts_with("{\"wall_us\":1500"), "{j}");
        assert!(j.contains("\"mtree.split_scans\":42"), "{j}");
        assert!(j.contains("\"path\":\"cv/fold\""), "{j}");
        assert!(j.ends_with("]}"), "{j}");
    }

    #[test]
    fn metrics_format_parses() {
        assert_eq!(
            "table".parse::<MetricsFormat>().unwrap(),
            MetricsFormat::Table
        );
        assert_eq!(
            "json".parse::<MetricsFormat>().unwrap(),
            MetricsFormat::Json
        );
        assert!("yaml".parse::<MetricsFormat>().is_err());
    }
}
