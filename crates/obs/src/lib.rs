//! Zero-dependency observability layer for the `mtperf` workspace.
//!
//! The pipeline — ingest counter sections, grow an M5' tree, cross-validate,
//! batch-predict — is a multi-stage parallel system; when a run is slow or a
//! fold's metrics look off, `println!` archaeology is the only recourse
//! without a timing/metrics substrate. This crate provides one, vendored and
//! dependency-free (the workspace builds without a crates registry):
//!
//! * **hierarchical spans** ([`span`], [`span_idx`]) — monotonic wall-time
//!   guards with deterministic FNV-1a identifiers derived from the
//!   discriminated path (`evaluate/cv/fold[3]`), carrying span-local
//!   counters and annotations that are emitted once at span close;
//! * **named counters and gauges** ([`add`], [`gauge`]) — a global registry
//!   aggregated into the end-of-run metrics report;
//! * **pluggable sinks** — a machine-readable JSONL event stream
//!   ([`ObsConfig::trace_out`]), a human-readable span summary, and an
//!   end-of-run metrics table or JSON document ([`Report`]).
//!
//! # Disabled-by-default contract
//!
//! Until [`init`] enables it (or the `MTPERF_TRACE` / `MTPERF_TRACE_OUT` /
//! `MTPERF_METRICS` environment variables do), every instrumentation point
//! compiles down to one relaxed atomic load and an early return: no
//! allocation, no locking, no clock read. Instrumented code is therefore
//! bit-identical in output and within noise in speed when tracing is off —
//! the property the differential and golden suites pin.
//!
//! # Thread propagation
//!
//! Spans nest through a thread-local stack. Parallel sections propagate the
//! current span context into worker threads via [`current_context`] /
//! [`in_context`] (the workspace's `linalg::parallel` engine does this
//! automatically), so a worker's spans nest under the span of the item that
//! spawned them — deterministically, because span identity comes from the
//! discriminated path, not from allocation order.
//!
//! # Example
//!
//! ```
//! // An all-off config disables recording explicitly (and keeps it off even
//! // when the harness exports MTPERF_TRACE); spans are then no-ops.
//! mtperf_obs::init(mtperf_obs::ObsConfig::default()).unwrap();
//! let mut s = mtperf_obs::span("example");
//! s.add("items", 3);
//! drop(s);
//! assert!(mtperf_obs::finish().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fsio;
mod json;
mod report;
mod sink;
mod span;

pub use report::{MetricsFormat, Report, SpanStat};
pub use sink::{add, finish, gauge, init, is_enabled, ObsConfig};
pub use span::{current_context, in_context, span, span_idx, Span, SpanContext};
