//! Hierarchical span guards and cross-thread context propagation.

use mtperf_detsim::clock;
use std::cell::RefCell;
use std::sync::Arc;

use crate::sink;

/// FNV-1a over the parent identifier and the discriminated span name, so a
/// span's identity depends only on its position in the logical call tree —
/// not on allocation order, scheduling, or thread count.
fn span_id(parent: u64, disc: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in parent.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    for &b in disc.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

/// One entry of the thread-local span stack.
#[derive(Clone)]
struct Frame {
    id: u64,
    path: Arc<str>,
    agg_path: Arc<str>,
}

thread_local! {
    /// The open spans of this thread, outermost first. Worker threads seed
    /// it from their spawner via [`in_context`].
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// A snapshot of the innermost open span, cloneable across threads.
///
/// Parallel engines capture it with [`current_context`] before spawning and
/// install it in each worker with [`in_context`], so worker-side spans nest
/// under the span that spawned them.
#[derive(Debug, Clone)]
pub struct SpanContext {
    id: u64,
    path: Arc<str>,
    agg_path: Arc<str>,
}

/// The innermost open span of the calling thread, or `None` when tracing is
/// disabled or no span is open. Costs one atomic load when disabled.
pub fn current_context() -> Option<SpanContext> {
    if !sink::is_enabled() {
        return None;
    }
    STACK.with(|s| {
        s.borrow().last().map(|f| SpanContext {
            id: f.id,
            path: Arc::clone(&f.path),
            agg_path: Arc::clone(&f.agg_path),
        })
    })
}

/// Pops the context frame even if `f` unwinds, so a panicking worker item
/// cannot corrupt the thread's span stack.
struct FrameGuard;

impl Drop for FrameGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Runs `f` with `ctx` installed as the calling thread's innermost span, so
/// spans created inside `f` nest under it. With `ctx == None` this is a
/// plain call.
pub fn in_context<R, F: FnOnce() -> R>(ctx: Option<&SpanContext>, f: F) -> R {
    let Some(ctx) = ctx else {
        return f();
    };
    STACK.with(|s| {
        s.borrow_mut().push(Frame {
            id: ctx.id,
            path: Arc::clone(&ctx.path),
            agg_path: Arc::clone(&ctx.agg_path),
        });
    });
    let _guard = FrameGuard;
    f()
}

/// The live state of an open span; `None` inside a disabled-tracing guard.
pub(crate) struct SpanInner {
    pub(crate) id: u64,
    pub(crate) parent: u64,
    pub(crate) name: &'static str,
    pub(crate) path: Arc<str>,
    pub(crate) agg_path: Arc<str>,
    pub(crate) start: std::time::Duration,
    pub(crate) counters: Vec<(&'static str, u64)>,
    pub(crate) nums: Vec<(&'static str, f64)>,
    pub(crate) texts: Vec<(&'static str, String)>,
}

/// An open span: a scope guard that measures monotonic wall time and emits
/// one event — duration, span-local counters, annotations — when dropped.
///
/// When tracing is disabled the guard is inert: creation is one atomic
/// load, every method is an early return, and drop does nothing.
#[must_use = "a span measures the scope it lives in; dropping it immediately measures nothing"]
pub struct Span(Option<Box<SpanInner>>);

fn open(name: &'static str, index: Option<usize>) -> Span {
    if !sink::is_enabled() {
        return Span(None);
    }
    let disc = match index {
        Some(i) => format!("{name}[{i}]"),
        None => name.to_string(),
    };
    let parent = STACK.with(|s| s.borrow().last().cloned());
    let parent_id = parent.as_ref().map_or(0, |p| p.id);
    let (id, path, agg_path) = match parent {
        Some(p) => (
            span_id(p.id, &disc),
            Arc::from(format!("{}/{}", p.path, disc)),
            Arc::from(format!("{}/{}", p.agg_path, name)),
        ),
        None => (span_id(0, &disc), Arc::from(disc), Arc::from(name)),
    };
    STACK.with(|s| {
        s.borrow_mut().push(Frame {
            id,
            path: Arc::clone(&path),
            agg_path: Arc::clone(&agg_path),
        });
    });
    Span(Some(Box::new(SpanInner {
        id,
        parent: parent_id,
        name,
        path,
        agg_path,
        start: clock::now(),
        counters: Vec::new(),
        nums: Vec::new(),
        texts: Vec::new(),
    })))
}

/// Opens a span named `name`, nested under the thread's innermost open span.
pub fn span(name: &'static str) -> Span {
    open(name, None)
}

/// Opens a span for the `index`-th instance of a repeated site (a CV fold, a
/// prediction block): the emitted path is `name[index]`, and the span
/// identifier is deterministic in `(parent, name, index)`.
pub fn span_idx(name: &'static str, index: usize) -> Span {
    open(name, Some(index))
}

impl Span {
    /// Adds `delta` to the span-local counter `name`. Span-local counters
    /// accumulate without locking and are emitted once at span close, which
    /// keeps per-item accounting off the hot path.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        let Some(inner) = self.0.as_mut() else { return };
        match inner.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += delta,
            None => inner.counters.push((name, delta)),
        }
    }

    /// Attaches a numeric annotation (last write wins).
    pub fn annotate_num(&mut self, key: &'static str, value: f64) {
        let Some(inner) = self.0.as_mut() else { return };
        match inner.nums.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => inner.nums.push((key, value)),
        }
    }

    /// Attaches a text annotation (last write wins).
    pub fn annotate(&mut self, key: &'static str, value: &str) {
        let Some(inner) = self.0.as_mut() else { return };
        match inner.texts.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value.to_string(),
            None => inner.texts.push((key, value.to_string())),
        }
    }

    /// Whether this guard is live (tracing was enabled when it opened).
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else { return };
        // Pop this span's frame; search from the top so a mis-nested drop
        // (guard outliving an inner guard) degrades gracefully.
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|f| f.id == inner.id) {
                stack.remove(pos);
            }
        });
        sink::record_span(*inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_depend_only_on_path() {
        let a = span_id(0, "cv");
        let b = span_id(a, "fold[3]");
        assert_eq!(span_id(0, "cv"), a);
        assert_eq!(span_id(a, "fold[3]"), b);
        assert_ne!(span_id(a, "fold[4]"), b);
        assert_ne!(span_id(span_id(0, "x"), "fold[3]"), b);
    }

    #[test]
    fn disabled_spans_are_inert() {
        // Explicitly disable recording so the test holds even when the
        // harness exports MTPERF_TRACE (CI runs the tier-1 suite traced).
        crate::sink::init(crate::ObsConfig::default()).expect("off config never does I/O");
        let mut s = span("unit");
        assert!(!s.is_recording());
        s.add("c", 1);
        s.annotate_num("n", 1.0);
        s.annotate("t", "x");
        assert!(current_context().is_none());
    }

    #[test]
    fn in_context_without_context_is_a_plain_call() {
        assert_eq!(in_context(None, || 7), 7);
    }
}
