//! Global recorder state: configuration, the JSONL sink, and the in-memory
//! aggregates behind the end-of-run [`Report`].

use mtperf_detsim::clock;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::json;
use crate::report::{MetricsFormat, Report, SpanStat};
use crate::span::SpanInner;

/// How observability runs for this process.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Collect spans and counters and render a human-readable summary at
    /// [`finish`].
    pub trace: bool,
    /// Stream every span/counter event as one JSON object per line to this
    /// path.
    pub trace_out: Option<PathBuf>,
    /// Render the end-of-run counter/gauge registry in this format.
    pub metrics: Option<MetricsFormat>,
}

impl ObsConfig {
    /// `true` when no output was requested at all.
    pub fn is_off(&self) -> bool {
        !self.trace && self.trace_out.is_none() && self.metrics.is_none()
    }

    /// Reads the configuration from `MTPERF_TRACE` (`1`/`true`),
    /// `MTPERF_TRACE_OUT` (a path) and `MTPERF_METRICS` (`table`/`json`) —
    /// the hook CI uses to run unmodified test suites with tracing on.
    pub fn from_env() -> ObsConfig {
        let truthy = |v: String| v == "1" || v.eq_ignore_ascii_case("true");
        ObsConfig {
            trace: std::env::var("MTPERF_TRACE").map(truthy).unwrap_or(false),
            trace_out: std::env::var("MTPERF_TRACE_OUT").ok().map(PathBuf::from),
            metrics: std::env::var("MTPERF_METRICS")
                .ok()
                .and_then(|v| v.parse().ok()),
        }
    }
}

/// Process-wide enablement: 0 = not yet decided (consult the environment on
/// first use), 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

const UNDECIDED: u8 = 0;
const DISABLED: u8 = 1;
const ENABLED: u8 = 2;

/// Everything the recorder accumulates while enabled.
struct Recorder {
    /// Clock-seam timestamp (duration since the global clock's epoch) at
    /// recorder init; span start/wall times are measured against it.
    epoch: Duration,
    config: ObsConfig,
    jsonl: Option<BufWriter<File>>,
    /// Staging path the JSONL stream writes to; renamed over
    /// [`ObsConfig::trace_out`] at [`finish`], so a completed run's trace
    /// file is never truncated mid-line by a concurrent reader or a crash
    /// during a later run. A crash mid-run leaves the partial stream under
    /// this staging name.
    jsonl_tmp: Option<PathBuf>,
    /// Per-aggregate-path span statistics (indices stripped, folds merged).
    spans: BTreeMap<String, SpanAgg>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    seq: u64,
    io_error: Option<String>,
}

#[derive(Default)]
struct SpanAgg {
    calls: u64,
    total_us: u64,
    counters: BTreeMap<String, u64>,
}

static RECORDER: Mutex<Option<Recorder>> = Mutex::new(None);

/// Locks the recorder, tolerating a poisoned lock (a panicking worker must
/// not take observability down with it).
fn lock() -> std::sync::MutexGuard<'static, Option<Recorder>> {
    RECORDER.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether instrumentation points should record. One relaxed atomic load on
/// the steady path; the first call per process consults the environment.
#[inline]
pub fn is_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ENABLED => true,
        DISABLED => false,
        _ => init_from_env(),
    }
}

/// First-use slow path: decide from the environment. Returns the decision.
fn init_from_env() -> bool {
    let cfg = ObsConfig::from_env();
    if cfg.is_off() {
        // Another thread may have run `init` concurrently; never downgrade.
        let _ = STATE.compare_exchange(UNDECIDED, DISABLED, Ordering::Relaxed, Ordering::Relaxed);
    } else {
        // Environment-driven setup: an unopenable trace path is reported on
        // stderr rather than failing the traced program.
        if let Err(e) = init(cfg) {
            eprintln!("mtperf-obs: trace disabled: {e}");
        }
    }
    STATE.load(Ordering::Relaxed) == ENABLED
}

/// Enables observability for the process with `config` (replacing any
/// previous configuration). With an all-off `config` this disables
/// recording explicitly, which also stops the environment from re-enabling
/// it.
///
/// # Errors
///
/// Returns the I/O error when [`ObsConfig::trace_out`] cannot be created.
pub fn init(config: ObsConfig) -> io::Result<()> {
    let mut guard = lock();
    if config.is_off() {
        STATE.store(DISABLED, Ordering::Relaxed);
        *guard = None;
        return Ok(());
    }
    let (mut jsonl, jsonl_tmp) = match &config.trace_out {
        Some(path) => {
            let tmp = crate::fsio::staging_path(path)?;
            let file = crate::fsio::with_retry("trace_out", || File::create(&tmp))?;
            (Some(BufWriter::new(file)), Some(tmp))
        }
        None => (None, None),
    };
    if let Some(w) = jsonl.as_mut() {
        let _ = writeln!(w, "{{\"ev\":\"run_start\",\"schema\":\"mtperf-trace-v1\"}}");
    }
    *guard = Some(Recorder {
        epoch: clock::now(),
        config,
        jsonl,
        jsonl_tmp,
        spans: BTreeMap::new(),
        counters: BTreeMap::new(),
        gauges: BTreeMap::new(),
        seq: 0,
        io_error: None,
    });
    STATE.store(ENABLED, Ordering::Relaxed);
    Ok(())
}

/// Adds `delta` to the global counter `name`. Prefer span-local counters
/// ([`crate::Span::add`]) in per-item loops; this takes the registry lock.
pub fn add(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    if let Some(rec) = lock().as_mut() {
        *rec.counters.entry(name.to_string()).or_insert(0) += delta;
    }
}

/// Sets the gauge `name` to `value` (last write wins).
pub fn gauge(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    if let Some(rec) = lock().as_mut() {
        rec.gauges.insert(name.to_string(), value);
    }
}

/// Records one closed span: appends its JSONL event and folds it into the
/// per-path aggregates. Called from [`crate::Span`]'s `Drop`.
pub(crate) fn record_span(span: SpanInner) {
    let dur_us = clock::now().saturating_sub(span.start).as_micros() as u64;
    let mut guard = lock();
    let Some(rec) = guard.as_mut() else { return };
    let start_us = span.start.saturating_sub(rec.epoch).as_micros() as u64;
    rec.seq += 1;
    let seq = rec.seq;

    if rec.jsonl.is_some() {
        let mut line = String::with_capacity(160);
        line.push_str("{\"ev\":\"span\",\"id\":\"");
        let _ = std::fmt::Write::write_fmt(&mut line, format_args!("{:016x}", span.id));
        line.push_str("\",\"parent\":\"");
        let _ = std::fmt::Write::write_fmt(&mut line, format_args!("{:016x}", span.parent));
        line.push_str("\",");
        json::push_key(&mut line, "name");
        json::push_str_literal(&mut line, span.name);
        line.push(',');
        json::push_key(&mut line, "path");
        json::push_str_literal(&mut line, &span.path);
        let _ = std::fmt::Write::write_fmt(
            &mut line,
            format_args!(",\"seq\":{seq},\"start_us\":{start_us},\"dur_us\":{dur_us}"),
        );
        if !span.counters.is_empty() {
            line.push_str(",\"counters\":{");
            for (i, (name, value)) in span.counters.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                json::push_key(&mut line, name);
                let _ = std::fmt::Write::write_fmt(&mut line, format_args!("{value}"));
            }
            line.push('}');
        }
        if !span.nums.is_empty() || !span.texts.is_empty() {
            line.push_str(",\"attrs\":{");
            let mut first = true;
            for (key, value) in &span.nums {
                if !first {
                    line.push(',');
                }
                first = false;
                json::push_key(&mut line, key);
                json::push_f64(&mut line, *value);
            }
            for (key, value) in &span.texts {
                if !first {
                    line.push(',');
                }
                first = false;
                json::push_key(&mut line, key);
                json::push_str_literal(&mut line, value);
            }
            line.push('}');
        }
        line.push('}');
        write_line(rec, &line);
    }

    let agg = rec.spans.entry(span.agg_path.to_string()).or_default();
    agg.calls += 1;
    agg.total_us += dur_us;
    for (name, value) in &span.counters {
        *agg.counters.entry((*name).to_string()).or_insert(0) += value;
    }
}

/// Appends one line to the JSONL sink, capturing (not propagating) I/O
/// failures: tracing must never fail the traced run.
fn write_line(rec: &mut Recorder, line: &str) {
    let Some(w) = rec.jsonl.as_mut() else { return };
    if let Err(e) = writeln!(w, "{line}") {
        if rec.io_error.is_none() {
            rec.io_error = Some(e.to_string());
        }
        rec.jsonl = None;
    }
}

/// Disables recording, flushes the JSONL sink, and returns the end-of-run
/// [`Report`]. Returns `None` when observability was never enabled.
pub fn finish() -> Option<Report> {
    let mut rec = {
        let mut guard = lock();
        STATE.store(DISABLED, Ordering::Relaxed);
        guard.take()?
    };
    let wall_us = clock::now().saturating_sub(rec.epoch).as_micros() as u64;

    // Final registry events, then the run_end marker.
    if rec.jsonl.is_some() {
        let counters: Vec<(String, u64)> =
            rec.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
        for (name, value) in counters {
            let mut line = String::from("{\"ev\":\"counter\",");
            json::push_key(&mut line, "name");
            json::push_str_literal(&mut line, &name);
            let _ = std::fmt::Write::write_fmt(&mut line, format_args!(",\"value\":{value}}}"));
            write_line(&mut rec, &line);
        }
        let gauges: Vec<(String, f64)> = rec.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect();
        for (name, value) in gauges {
            let mut line = String::from("{\"ev\":\"gauge\",");
            json::push_key(&mut line, "name");
            json::push_str_literal(&mut line, &name);
            line.push_str(",\"value\":");
            json::push_f64(&mut line, value);
            line.push('}');
            write_line(&mut rec, &line);
        }
        let line = format!(
            "{{\"ev\":\"run_end\",\"wall_us\":{wall_us},\"events\":{}}}",
            rec.seq
        );
        write_line(&mut rec, &line);
        if let Some(w) = rec.jsonl.as_mut() {
            let flushed = w.flush().and_then(|()| w.get_ref().sync_all());
            if let Err(e) = flushed {
                if rec.io_error.is_none() {
                    rec.io_error = Some(e.to_string());
                }
            }
        }
    }

    // Publish the staged stream at the requested path. Done even after a
    // mid-stream write error: whatever made it to disk is still the best
    // available diagnostic of the failed run.
    if let (Some(tmp), Some(path)) = (&rec.jsonl_tmp, &rec.config.trace_out) {
        drop(rec.jsonl.take());
        if let Err(e) = std::fs::rename(tmp, path) {
            if rec.io_error.is_none() {
                rec.io_error = Some(format!("publishing trace stream: {e}"));
            }
        }
    }

    Some(Report {
        wall_us,
        spans: rec
            .spans
            .into_iter()
            .map(|(path, agg)| SpanStat {
                path,
                calls: agg.calls,
                total_us: agg.total_us,
                counters: agg.counters.into_iter().collect(),
            })
            .collect(),
        counters: rec.counters.into_iter().collect(),
        gauges: rec.gauges.into_iter().collect(),
        trace_path: rec.config.trace_out.clone(),
        summarize: rec.config.trace,
        metrics: rec.config.metrics,
        events: rec.seq,
        io_error: rec.io_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_config_parses_defaults() {
        // Plain test environment: everything off unless CI exported the
        // MTPERF_* hooks, in which case this test is vacuous.
        if std::env::var_os("MTPERF_TRACE").is_none()
            && std::env::var_os("MTPERF_TRACE_OUT").is_none()
            && std::env::var_os("MTPERF_METRICS").is_none()
        {
            assert!(ObsConfig::from_env().is_off());
        }
    }

    #[test]
    fn off_config_reports_off() {
        assert!(ObsConfig::default().is_off());
        assert!(!ObsConfig {
            trace: true,
            ..ObsConfig::default()
        }
        .is_off());
    }
}
