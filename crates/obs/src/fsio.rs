//! Crash-safe file plumbing shared across the workspace: atomic writes,
//! bounded retry for transient I/O, and the FNV-1a content hash.
//!
//! This lives in `mtperf-obs` because it is the one crate every other crate
//! already depends on, and because retries are *observable events*: each one
//! increments the `io.retries` counter in the global registry, so an
//! end-of-run metrics dump shows how flaky the underlying filesystem or
//! socket was.
//!
//! # Atomic-save contract
//!
//! [`atomic_write`] never exposes a partially written file at the
//! destination path. It writes a temporary file *in the destination
//! directory* (so the final rename cannot cross filesystems), fsyncs the
//! file, renames it over the destination, then fsyncs the directory so the
//! rename itself survives power loss. A reader — or a process restarted
//! after `kill -9` — therefore sees either the complete old content or the
//! complete new content, never a torn mix or a truncation.

use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::Duration;

use mtperf_detsim::fs::{check, FsOp};
use mtperf_detsim::{clock, rng};

/// Whether `e` is a transient failure worth retrying: the EINTR/EAGAIN
/// class (a signal interrupted the syscall, or a non-blocking resource was
/// momentarily busy).
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Bounded backoff base schedule: at most four retries, with base delays of
/// 1, 2, 4, then 8 ms. Each attempt adds up to one base-delay of jitter
/// (see [`backoff_delay`]).
const BACKOFF_MS: [u64; 4] = [1, 2, 4, 8];

/// The delay before retry number `attempt` (0-based): the base schedule
/// plus uniform jitter in `[0, base)`, drawn from the global randomness
/// seam. In production the jitter source is entropy-seeded, decorrelating
/// concurrent retriers; under a simulator it is a seeded stream, so the
/// whole schedule replays from one seed.
fn backoff_delay(attempt: usize) -> Duration {
    let base_us = BACKOFF_MS[attempt] * 1000;
    let jitter_us = rng::global_next_u64() % base_us;
    Duration::from_micros(base_us + jitter_us)
}

/// Runs `op`, retrying transient failures ([`is_transient`]) up to four
/// times with the jittered 1/2/4/8 ms backoff schedule ([`backoff_delay`]).
/// Non-transient errors and the final transient error propagate unchanged.
///
/// Sleeps go through the global clock seam, so under a virtual clock the
/// full schedule completes without wall-clock delay. Every retry increments
/// the global `io.retries` counter (and a per-site `io.retries.<what>`
/// counter) in the metrics registry.
///
/// # Errors
///
/// Returns the last error from `op` once retries are exhausted, or the
/// first non-transient error immediately.
pub fn with_retry<R>(what: &str, mut op: impl FnMut() -> io::Result<R>) -> io::Result<R> {
    let mut attempt = 0usize;
    loop {
        match op() {
            Ok(r) => return Ok(r),
            Err(e) if attempt < BACKOFF_MS.len() && is_transient(&e) => {
                crate::add("io.retries", 1);
                crate::add(&format!("io.retries.{what}"), 1);
                clock::sleep(backoff_delay(attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// The sibling temp path `atomic_write` stages into: `.<name>.tmp.<pid>` in
/// the destination directory. Exposed so crash tests can assert no stale
/// staging files survive.
pub fn staging_path(path: &Path) -> io::Result<PathBuf> {
    let name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("not a writable file path: {}", path.display()),
        )
    })?;
    Ok(parent_dir(path).join(format!(
        ".{}.tmp.{}",
        name.to_string_lossy(),
        std::process::id()
    )))
}

/// The containing directory of `path` (`.` when the path is bare).
fn parent_dir(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

/// Flushes directory metadata so a completed rename survives power loss.
/// Best-effort on platforms where directories cannot be opened as files.
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// Writes `contents` to `path` atomically: temp file in the destination
/// directory, fsync, rename over `path`, fsync the directory. A crash at
/// any point leaves either the old file or the new file — never a torn one.
///
/// The whole sequence runs under [`with_retry`], so EINTR-class hiccups are
/// absorbed; each fresh attempt restarts from an empty temp file (the temp
/// file is created with truncation), so retries cannot duplicate content.
///
/// # Errors
///
/// Propagates the underlying I/O error after retries; the temp file is
/// removed on failure.
/// Every step consults the simulation fault hook ([`mtperf_detsim::fs`])
/// first — a no-op single atomic load in production — so torn-save and
/// retry-exhaustion paths are drivable from a seeded script.
pub fn atomic_write(path: impl AsRef<Path>, contents: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = staging_path(path)?;
    let dir = parent_dir(path);
    let result = with_retry("atomic_write", || {
        check(FsOp::Write, &tmp)?;
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        check(FsOp::Sync, &tmp)?;
        f.sync_all()?;
        drop(f);
        check(FsOp::Rename, path)?;
        fs::rename(&tmp, path)?;
        check(FsOp::Sync, &dir)?;
        sync_dir(&dir)
    });
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Reads a file through the simulation fault hook: [`fs::read`] with a
/// [`check`] first, under [`with_retry`]. The seam-aware read path for
/// model loads and artifact round-trips.
///
/// # Errors
///
/// Propagates the underlying (or injected) I/O error after retries.
pub fn read(path: impl AsRef<Path>) -> io::Result<Vec<u8>> {
    let path = path.as_ref();
    with_retry("read", || {
        check(FsOp::Read, path)?;
        fs::read(path)
    })
}

/// Removes a file through the simulation fault hook: [`check`] with
/// [`FsOp::Remove`] first, under [`with_retry`]. The seam-aware deletion
/// path for garbage-collecting unreferenced model artifacts.
///
/// # Errors
///
/// Propagates the underlying (or injected) I/O error after retries.
pub fn remove_file(path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    with_retry("remove_file", || {
        check(FsOp::Remove, path)?;
        fs::remove_file(path)
    })
}

/// 64-bit FNV-1a over `bytes` — the workspace's content-checksum function
/// (same family as the span-identity hash in [`crate::span`]).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn transient_classification() {
        assert!(is_transient(&io::Error::new(
            io::ErrorKind::Interrupted,
            "eintr"
        )));
        assert!(is_transient(&io::Error::new(
            io::ErrorKind::WouldBlock,
            "eagain"
        )));
        assert!(!is_transient(&io::Error::new(
            io::ErrorKind::NotFound,
            "gone"
        )));
    }

    #[test]
    fn retry_absorbs_transient_then_succeeds() {
        let calls = AtomicUsize::new(0);
        let got = with_retry("test", || {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
            } else {
                Ok(7)
            }
        })
        .unwrap();
        assert_eq!(got, 7);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retry_gives_up_after_schedule() {
        let calls = AtomicUsize::new(0);
        let err = with_retry("test", || -> io::Result<()> {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(io::Error::new(io::ErrorKind::WouldBlock, "busy"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        // Initial attempt plus the four scheduled retries.
        assert_eq!(calls.load(Ordering::SeqCst), 1 + 4);
    }

    #[test]
    fn non_transient_fails_fast() {
        let calls = AtomicUsize::new(0);
        let err = with_retry("test", || -> io::Result<()> {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(io::Error::new(io::ErrorKind::PermissionDenied, "no"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    /// Serializes tests that install process-global seams (clock/rng/fs
    /// overrides), so parallel test threads cannot clobber each other's
    /// installed hooks.
    static SEAM_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn seam_guard() -> std::sync::MutexGuard<'static, ()> {
        SEAM_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A virtual clock that records only the installing thread's sleeps,
    /// so parallel tests whose retries also hit the global seam cannot
    /// perturb the recorded schedule.
    #[derive(Debug)]
    struct RecordingClock {
        owner: std::thread::ThreadId,
        sleeps: std::sync::Mutex<Vec<Duration>>,
    }

    impl mtperf_detsim::Clock for RecordingClock {
        fn now(&self) -> Duration {
            self.sleeps.lock().unwrap().iter().sum()
        }

        fn sleep(&self, d: Duration) {
            if std::thread::current().id() == self.owner {
                self.sleeps.lock().unwrap().push(d);
            }
        }
    }

    #[test]
    fn retry_schedule_runs_under_virtual_time_with_bounded_jitter() {
        use std::sync::Arc;
        let _seams = seam_guard();
        let clock = Arc::new(RecordingClock {
            owner: std::thread::current().id(),
            sleeps: std::sync::Mutex::new(Vec::new()),
        });
        mtperf_detsim::clock::install(clock.clone());
        mtperf_detsim::rng::install(Arc::new(mtperf_detsim::SimRng::seed_from_u64(99)));
        let wall = std::time::Instant::now();
        let calls = AtomicUsize::new(0);
        let err = with_retry("vtime", || -> io::Result<()> {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(io::Error::new(io::ErrorKind::TimedOut, "busy"))
        })
        .unwrap_err();
        mtperf_detsim::clock::uninstall();
        mtperf_detsim::rng::uninstall();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(calls.load(Ordering::SeqCst), 1 + 4);
        // The full 4-step ladder ran without wall-clock sleeping.
        assert!(
            wall.elapsed() < Duration::from_millis(500),
            "took {:?} of real time",
            wall.elapsed()
        );
        let sleeps = clock.sleeps.lock().unwrap().clone();
        assert_eq!(sleeps.len(), 4);
        for (i, (&base_ms, &slept)) in BACKOFF_MS.iter().zip(&sleeps).enumerate() {
            let base = Duration::from_millis(base_ms);
            assert!(
                slept >= base && slept < base * 2,
                "retry {i}: slept {slept:?}, base {base:?} (jitter must be in [0, base))"
            );
        }
    }

    #[test]
    fn atomic_write_respects_injected_faults() {
        let _seams = seam_guard();
        let dir = std::env::temp_dir().join("mtperf-fsio-fault-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faulted.txt");
        atomic_write(&path, b"before").unwrap();

        let script = std::sync::Arc::new(mtperf_detsim::FaultScript::new());
        // Permanent failure on the rename (commit) step: the write must
        // fail, the destination must keep the old content, and the staging
        // file must be cleaned up — the torn-save contract.
        script.fail_always(
            Some(mtperf_detsim::FsOp::Rename),
            "faulted.txt",
            io::ErrorKind::PermissionDenied,
        );
        mtperf_detsim::fs::install(script.clone());
        let err = atomic_write(&path, b"after").unwrap_err();
        mtperf_detsim::fs::uninstall();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(fs::read(&path).unwrap(), b"before", "destination intact");
        assert!(!staging_path(&path).unwrap().exists(), "staging cleaned up");

        // Transient faults on the write step are absorbed by the retry
        // ladder and the write still lands.
        script.clear();
        script.fail_times(
            Some(mtperf_detsim::FsOp::Write),
            "faulted.txt",
            io::ErrorKind::Interrupted,
            2,
        );
        mtperf_detsim::fs::install(script.clone());
        atomic_write(&path, b"after").unwrap();
        mtperf_detsim::fs::uninstall();
        assert_eq!(fs::read(&path).unwrap(), b"after");
        assert_eq!(script.injected(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seam_read_round_trips_and_faults() {
        let _seams = seam_guard();
        let dir = std::env::temp_dir().join("mtperf-fsio-read-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.txt");
        atomic_write(&path, b"payload").unwrap();
        assert_eq!(read(&path).unwrap(), b"payload");
        let script = std::sync::Arc::new(mtperf_detsim::FaultScript::new());
        script.fail_always(
            Some(mtperf_detsim::FsOp::Read),
            "data.txt",
            io::ErrorKind::NotFound,
        );
        mtperf_detsim::fs::install(script);
        let err = read(&path).unwrap_err();
        mtperf_detsim::fs::uninstall();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join("mtperf-fsio-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.txt");
        atomic_write(&path, b"one").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"one");
        atomic_write(&path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        assert!(!staging_path(&path).unwrap().exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_rejects_directory_target() {
        let err = atomic_write(Path::new("/"), b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
        // Sensitivity: one flipped bit changes the hash.
        assert_ne!(fnv1a_64(b"foobar"), fnv1a_64(b"foobas"));
    }
}
