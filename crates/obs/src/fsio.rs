//! Crash-safe file plumbing shared across the workspace: atomic writes,
//! bounded retry for transient I/O, and the FNV-1a content hash.
//!
//! This lives in `mtperf-obs` because it is the one crate every other crate
//! already depends on, and because retries are *observable events*: each one
//! increments the `io.retries` counter in the global registry, so an
//! end-of-run metrics dump shows how flaky the underlying filesystem or
//! socket was.
//!
//! # Atomic-save contract
//!
//! [`atomic_write`] never exposes a partially written file at the
//! destination path. It writes a temporary file *in the destination
//! directory* (so the final rename cannot cross filesystems), fsyncs the
//! file, renames it over the destination, then fsyncs the directory so the
//! rename itself survives power loss. A reader — or a process restarted
//! after `kill -9` — therefore sees either the complete old content or the
//! complete new content, never a torn mix or a truncation.

use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Whether `e` is a transient failure worth retrying: the EINTR/EAGAIN
/// class (a signal interrupted the syscall, or a non-blocking resource was
/// momentarily busy).
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Deterministic bounded backoff schedule: at most four retries, sleeping
/// 1, 2, 4, then 8 ms. No jitter — retry behavior is reproducible.
const BACKOFF_MS: [u64; 4] = [1, 2, 4, 8];

/// Runs `op`, retrying transient failures ([`is_transient`]) up to four
/// times with the fixed 1/2/4/8 ms backoff schedule. Non-transient errors
/// and the final transient error propagate unchanged.
///
/// Every retry increments the global `io.retries` counter (and a per-site
/// `io.retries.<what>` counter) in the metrics registry.
///
/// # Errors
///
/// Returns the last error from `op` once retries are exhausted, or the
/// first non-transient error immediately.
pub fn with_retry<R>(what: &str, mut op: impl FnMut() -> io::Result<R>) -> io::Result<R> {
    let mut attempt = 0usize;
    loop {
        match op() {
            Ok(r) => return Ok(r),
            Err(e) if attempt < BACKOFF_MS.len() && is_transient(&e) => {
                crate::add("io.retries", 1);
                crate::add(&format!("io.retries.{what}"), 1);
                std::thread::sleep(Duration::from_millis(BACKOFF_MS[attempt]));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// The sibling temp path `atomic_write` stages into: `.<name>.tmp.<pid>` in
/// the destination directory. Exposed so crash tests can assert no stale
/// staging files survive.
pub fn staging_path(path: &Path) -> io::Result<PathBuf> {
    let name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("not a writable file path: {}", path.display()),
        )
    })?;
    Ok(parent_dir(path).join(format!(
        ".{}.tmp.{}",
        name.to_string_lossy(),
        std::process::id()
    )))
}

/// The containing directory of `path` (`.` when the path is bare).
fn parent_dir(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

/// Flushes directory metadata so a completed rename survives power loss.
/// Best-effort on platforms where directories cannot be opened as files.
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// Writes `contents` to `path` atomically: temp file in the destination
/// directory, fsync, rename over `path`, fsync the directory. A crash at
/// any point leaves either the old file or the new file — never a torn one.
///
/// The whole sequence runs under [`with_retry`], so EINTR-class hiccups are
/// absorbed; each fresh attempt restarts from an empty temp file (the temp
/// file is created with truncation), so retries cannot duplicate content.
///
/// # Errors
///
/// Propagates the underlying I/O error after retries; the temp file is
/// removed on failure.
pub fn atomic_write(path: impl AsRef<Path>, contents: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = staging_path(path)?;
    let dir = parent_dir(path);
    let result = with_retry("atomic_write", || {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        sync_dir(&dir)
    });
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// 64-bit FNV-1a over `bytes` — the workspace's content-checksum function
/// (same family as the span-identity hash in [`crate::span`]).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn transient_classification() {
        assert!(is_transient(&io::Error::new(
            io::ErrorKind::Interrupted,
            "eintr"
        )));
        assert!(is_transient(&io::Error::new(
            io::ErrorKind::WouldBlock,
            "eagain"
        )));
        assert!(!is_transient(&io::Error::new(
            io::ErrorKind::NotFound,
            "gone"
        )));
    }

    #[test]
    fn retry_absorbs_transient_then_succeeds() {
        let calls = AtomicUsize::new(0);
        let got = with_retry("test", || {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
            } else {
                Ok(7)
            }
        })
        .unwrap();
        assert_eq!(got, 7);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retry_gives_up_after_schedule() {
        let calls = AtomicUsize::new(0);
        let err = with_retry("test", || -> io::Result<()> {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(io::Error::new(io::ErrorKind::WouldBlock, "busy"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        // Initial attempt plus the four scheduled retries.
        assert_eq!(calls.load(Ordering::SeqCst), 1 + 4);
    }

    #[test]
    fn non_transient_fails_fast() {
        let calls = AtomicUsize::new(0);
        let err = with_retry("test", || -> io::Result<()> {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(io::Error::new(io::ErrorKind::PermissionDenied, "no"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join("mtperf-fsio-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.txt");
        atomic_write(&path, b"one").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"one");
        atomic_write(&path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        assert!(!staging_path(&path).unwrap().exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_rejects_directory_target() {
        let err = atomic_write(Path::new("/"), b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
        // Sensitivity: one flipped bit changes the hash.
        assert_ne!(fnv1a_64(b"foobar"), fnv1a_64(b"foobas"));
    }
}
