//! Minimal JSON emission helpers (the crate is dependency-free by design).

use std::fmt::Write as _;

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub(crate) fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number to `out`; non-finite values (which JSON
/// cannot represent) become `null`.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends a `"key":` prefix to `out`.
pub(crate) fn push_key(out: &mut String, key: &str) {
    push_str_literal(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn numbers_roundtrip_and_nonfinite_is_null() {
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        out.push(',');
        push_f64(&mut out, f64::NAN);
        out.push(',');
        push_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "1.5,null,null");
    }

    #[test]
    fn key_prefix() {
        let mut out = String::new();
        push_key(&mut out, "k");
        assert_eq!(out, "\"k\":");
    }
}
