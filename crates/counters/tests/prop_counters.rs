//! Property-based tests for the counter substrate.

use mtperf_counters::{
    read_csv, write_csv, CounterBank, Event, SampleSet, SectionSample, Sectioner, N_EVENTS,
};
use proptest::prelude::*;

/// Strategy: a random but well-formed section sample.
fn sample() -> impl Strategy<Value = SectionSample> {
    (
        "[a-z0-9.]{1,12}",
        0usize..10_000,
        0.1..10.0f64,
        prop::collection::vec(0.0..0.5f64, N_EVENTS),
    )
        .prop_map(|(name, idx, cpi, rates)| {
            let mut arr = [0.0; N_EVENTS];
            arr.copy_from_slice(&rates);
            SectionSample::new(name, idx, cpi, arr)
        })
}

proptest! {
    /// CSV round-trips arbitrary well-formed sample sets exactly.
    #[test]
    fn csv_roundtrip(samples in prop::collection::vec(sample(), 0..20)) {
        let set: SampleSet = samples.into_iter().collect();
        let mut buf = Vec::new();
        write_csv(&set, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back, set);
    }

    /// The sectioner conserves instructions: emitted sections (plus any
    /// retained tail) account for every retired instruction, and every
    /// sample's CPI equals cycles/instructions of its span.
    #[test]
    fn sectioner_conserves_instructions(
        batches in prop::collection::vec((1u64..50, 1u64..100), 1..60),
        section_len in 10u64..200,
    ) {
        let mut sec = Sectioner::new("w", section_len);
        let mut bank = CounterBank::new();
        let mut emitted = Vec::new();
        let mut total_instr = 0u64;
        for &(instr, cycles) in &batches {
            total_instr += instr;
            bank.add(Event::InstLd, instr);
            if let Some(s) = sec.retire(&mut bank, instr, cycles) {
                emitted.push(s);
            }
        }
        if let Some(s) = sec.finish(&mut bank) {
            emitted.push(s);
        }
        // Every emitted section covers at least section_len/2 instructions
        // (tail rule) and InstLd rate is exactly 1 (we added one per
        // instruction).
        for s in &emitted {
            prop_assert!((s.rate(Event::InstLd) - 1.0).abs() < 1e-12);
            prop_assert!(s.is_well_formed());
            prop_assert!(s.cpi > 0.0);
        }
        // Section indices are sequential from 0.
        for (i, s) in emitted.iter().enumerate() {
            prop_assert_eq!(s.section_index, i);
        }
        // The number of full sections is bounded by total instructions.
        prop_assert!(emitted.len() as u64 <= total_instr / (section_len / 2).max(1) + 1);
    }

    /// Counter bank rates scale linearly with counts.
    #[test]
    fn bank_rates_are_linear(count in 0u64..10_000, instructions in 1u64..100_000) {
        let mut bank = CounterBank::new();
        bank.add(Event::L2m, count);
        let rates = bank.rates(instructions);
        prop_assert!((rates[Event::L2m.index()] - count as f64 / instructions as f64).abs() < 1e-12);
        // All other events zero.
        for e in Event::iter() {
            if e != Event::L2m {
                prop_assert_eq!(rates[e.index()], 0.0);
            }
        }
    }

    /// Summaries respect min <= mean <= max per event.
    #[test]
    fn summary_order(samples in prop::collection::vec(sample(), 1..20)) {
        let set: SampleSet = samples.into_iter().collect();
        for (_, s) in set.summarize() {
            prop_assert!(s.min <= s.mean + 1e-12);
            prop_assert!(s.mean <= s.max + 1e-12);
            prop_assert!((0.0..=1.0).contains(&s.nonzero_fraction));
        }
    }

    /// to_learning_parts preserves every value.
    #[test]
    fn learning_parts_lossless(samples in prop::collection::vec(sample(), 1..15)) {
        let set: SampleSet = samples.into_iter().collect();
        let (names, rows, targets) = set.to_learning_parts();
        prop_assert_eq!(names.len(), N_EVENTS);
        prop_assert_eq!(rows.len(), set.len());
        prop_assert_eq!(targets.len(), set.len());
        for (i, s) in set.iter().enumerate() {
            prop_assert_eq!(&rows[i][..], s.as_row());
            prop_assert_eq!(targets[i], s.cpi);
        }
    }
}
