//! Property-based tests for fault-tolerant ingestion: serialize a clean
//! sample set, corrupt it with a seeded [`FaultInjector`], and check that
//! every [`IngestPolicy`] reacts exactly as documented — strict names the
//! first corrupted line, skip quarantines precisely the corrupted lines,
//! repair accounts for every touched line and never panics.

use std::collections::BTreeSet;

use mtperf_counters::faultinject::{FaultInjector, FaultOp};
use mtperf_counters::{
    read_csv, read_csv_with_policy, write_csv, CsvError, IngestPolicy, SampleSet, SectionSample,
    N_EVENTS,
};
use proptest::prelude::*;

/// Strategy: a clean sample set with *unique* `(workload, section)` keys.
///
/// Three workloads, sequential section indices. Group sizes stay below the
/// winsorization threshold, so repair mode never touches uncorrupted rows.
fn clean_set() -> impl Strategy<Value = SampleSet> {
    prop::collection::vec(
        (0.1..10.0f64, prop::collection::vec(0.0..0.5f64, N_EVENTS)),
        1..21,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (cpi, rates))| {
                let mut arr = [0.0; N_EVENTS];
                arr.copy_from_slice(&rates);
                SectionSample::new(format!("w{}", i % 3), i, cpi, arr)
            })
            .collect()
    })
}

fn to_csv(set: &SampleSet) -> String {
    let mut buf = Vec::new();
    write_csv(set, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

/// Operators whose damage strict mode must reject (malformed fields).
fn malforming_op(k: usize) -> impl Strategy<Value = FaultOp> {
    prop_oneof![
        Just(FaultOp::TruncateFields(k)),
        Just(FaultOp::FlipNonFinite(k)),
    ]
}

/// Operators that keep every row parseable (strict mode still accepts).
fn benign_op(k: usize) -> impl Strategy<Value = FaultOp> {
    prop_oneof![
        Just(FaultOp::DropRows(k)),
        Just(FaultOp::SaturateCounters(k)),
        Just(FaultOp::DuplicateSections(k)),
    ]
}

fn any_op(k: usize) -> impl Strategy<Value = FaultOp> {
    prop_oneof![malforming_op(k), benign_op(k)]
}

proptest! {
    /// All three policies agree bit-for-bit on clean data and report no
    /// quarantines or repairs.
    #[test]
    fn policies_agree_on_clean_data(set in clean_set()) {
        let csv = to_csv(&set);
        let strict = read_csv(csv.as_bytes()).unwrap();
        for policy in [IngestPolicy::Strict, IngestPolicy::Skip, IngestPolicy::Repair] {
            let (got, report) = read_csv_with_policy(csv.as_bytes(), policy).unwrap();
            prop_assert_eq!(&got, &strict);
            prop_assert!(report.is_clean(), "{}", report);
            prop_assert_eq!(report.rows_kept, set.len());
        }
    }

    /// Strict mode fails on the *first* corrupted line, by exact number.
    #[test]
    fn strict_names_first_corrupt_line(
        set in clean_set(),
        op in malforming_op(3),
        seed in 0u64..1_000,
    ) {
        let corrupted = FaultInjector::new(seed).apply(op, &to_csv(&set));
        prop_assert!(!corrupted.lines.is_empty());
        let err = read_csv(corrupted.text.as_bytes()).unwrap_err();
        match err {
            CsvError::BadRow { line, .. } => {
                prop_assert_eq!(line, corrupted.lines[0], "{:?}", op)
            }
            other => prop_assert!(false, "expected BadRow, got {other}"),
        }
    }

    /// Row drops, counter saturation and duplicated sections leave every
    /// line parseable, so strict mode still accepts the file.
    #[test]
    fn strict_accepts_benign_corruption(
        set in clean_set(),
        op in benign_op(3),
        seed in 0u64..1_000,
    ) {
        let corrupted = FaultInjector::new(seed).apply(op, &to_csv(&set));
        prop_assert!(read_csv(corrupted.text.as_bytes()).is_ok(), "{:?}", op);
    }

    /// Skip mode quarantines exactly the corrupted lines — no more, no less
    /// — and keeps every clean row bit-identical.
    #[test]
    fn skip_quarantines_exactly_corrupted_lines(
        set in clean_set(),
        op in prop_oneof![
            Just(FaultOp::TruncateFields(3)),
            Just(FaultOp::FlipNonFinite(3)),
            Just(FaultOp::SaturateCounters(3)),
            Just(FaultOp::DuplicateSections(3)),
        ],
        seed in 0u64..1_000,
    ) {
        let corrupted = FaultInjector::new(seed).apply(op, &to_csv(&set));
        let (kept, report) =
            read_csv_with_policy(corrupted.text.as_bytes(), IngestPolicy::Skip).unwrap();

        let quarantined: BTreeSet<usize> = report.quarantined.iter().map(|q| q.line).collect();
        let expected: BTreeSet<usize> = corrupted.lines.iter().copied().collect();
        prop_assert_eq!(&quarantined, &expected, "{:?}", op);
        prop_assert_eq!(report.rows_kept + report.rows_quarantined(), report.rows_read);
        prop_assert!(report.repairs.is_empty());

        // Every surviving row is an original row, unmodified.
        for s in kept.iter() {
            prop_assert!(set.iter().any(|o| o == s));
        }
        // Duplication damage only removes the copies: the originals survive.
        if matches!(op, FaultOp::DuplicateSections(_)) {
            prop_assert_eq!(&kept, &set);
        }
    }

    /// Repair mode never panics, never loses accounting, and every
    /// corrupted line ends up either quarantined or repaired.
    #[test]
    fn repair_accounts_for_every_corrupted_line(
        set in clean_set(),
        op in any_op(3),
        seed in 0u64..1_000,
    ) {
        let corrupted = FaultInjector::new(seed).apply(op, &to_csv(&set));
        let (kept, report) =
            read_csv_with_policy(corrupted.text.as_bytes(), IngestPolicy::Repair).unwrap();

        prop_assert_eq!(report.rows_kept + report.rows_quarantined(), report.rows_read);
        prop_assert_eq!(report.rows_kept, kept.len());
        let touched: BTreeSet<usize> = report
            .quarantined
            .iter()
            .map(|q| q.line)
            .chain(report.repairs.iter().map(|r| r.line))
            .collect();
        for &line in &corrupted.lines {
            prop_assert!(touched.contains(&line), "{:?}: line {line} untouched", op);
        }
        // Whatever survives is fully finite and in range.
        for s in kept.iter() {
            prop_assert!(s.cpi.is_finite());
            prop_assert!(s.as_row().iter().all(|r| r.is_finite() && *r >= 0.0));
        }
    }

    /// Compositions of faults (applied back to back from one injector)
    /// never panic any policy; skip and repair always return a report whose
    /// arithmetic adds up.
    #[test]
    fn fault_composition_never_panics(
        set in clean_set(),
        ops in prop::collection::vec(any_op(2), 1..4),
        seed in 0u64..1_000,
    ) {
        let mut inj = FaultInjector::new(seed);
        let mut text = to_csv(&set);
        for &op in &ops {
            text = inj.apply(op, &text).text;
        }
        // Strict may accept or reject, but must not panic.
        let _ = read_csv(text.as_bytes());
        for policy in [IngestPolicy::Skip, IngestPolicy::Repair] {
            let (kept, report) = read_csv_with_policy(text.as_bytes(), policy).unwrap();
            prop_assert_eq!(report.rows_kept, kept.len());
            prop_assert_eq!(report.rows_kept + report.rows_quarantined(), report.rows_read);
        }
    }
}
