//! PMU counter bank and section-boundary bookkeeping.
//!
//! Real data collection in the paper programmed the Core 2 Duo PMU to count
//! the Table I events and sliced the run into spans of equal retired
//! instructions. [`CounterBank`] plays the PMU role for the simulator;
//! [`Sectioner`] implements the slicing and rate normalization.

use crate::events::{Event, N_EVENTS};
use crate::sample::SectionSample;

/// A bank of 20 software event counters, one per [`Event`].
///
/// The simulator calls [`CounterBank::add`] as micro-architectural events
/// occur; the [`Sectioner`] drains the bank at each section boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterBank {
    counts: [u64; N_EVENTS],
}

impl CounterBank {
    /// Creates a bank with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `event`'s counter by `n`.
    pub fn add(&mut self, event: Event, n: u64) {
        self.counts[event.index()] += n;
    }

    /// Current value of `event`'s counter.
    pub fn count(&self, event: Event) -> u64 {
        self.counts[event.index()]
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        self.counts = [0; N_EVENTS];
    }

    /// Sum of all counters (diagnostic).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Converts the raw counts into per-instruction rates.
    ///
    /// # Panics
    ///
    /// Panics if `instructions == 0`; a section always contains instructions.
    pub fn rates(&self, instructions: u64) -> [f64; N_EVENTS] {
        assert!(instructions > 0, "rates over an empty section");
        let inv = 1.0 / instructions as f64;
        let mut out = [0.0; N_EVENTS];
        for (o, c) in out.iter_mut().zip(&self.counts) {
            *o = *c as f64 * inv;
        }
        out
    }
}

/// Cuts a simulated execution into sections of equal retired-instruction
/// counts and emits one [`SectionSample`] per completed section.
///
/// Mirrors the paper's methodology: "Data collection was grouped into
/// sections of equal counts of executed instructions."
#[derive(Debug, Clone)]
pub struct Sectioner {
    workload: String,
    section_len: u64,
    instructions_in_section: u64,
    cycles_in_section: u64,
    next_index: usize,
}

impl Sectioner {
    /// Creates a sectioner emitting one sample every `section_len` retired
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics if `section_len == 0`.
    pub fn new(workload: impl Into<String>, section_len: u64) -> Self {
        let section_len_checked = section_len;
        assert!(section_len_checked > 0, "section length must be positive");
        Sectioner {
            workload: workload.into(),
            section_len,
            instructions_in_section: 0,
            cycles_in_section: 0,
            next_index: 0,
        }
    }

    /// The configured section length in instructions.
    pub fn section_len(&self) -> u64 {
        self.section_len
    }

    /// Index that the next emitted section will carry.
    pub fn next_index(&self) -> usize {
        self.next_index
    }

    /// Records the retirement of `instructions` costing `cycles` and, if the
    /// section boundary has been reached, drains `bank` into a sample.
    ///
    /// Instruction retirement is reported in batches by the simulator; a
    /// batch never straddles a boundary by more than its own size, and any
    /// overshoot is accounted to the *current* section (sections are equal
    /// to within one batch, as in real sampling).
    pub fn retire(
        &mut self,
        bank: &mut CounterBank,
        instructions: u64,
        cycles: u64,
    ) -> Option<SectionSample> {
        self.instructions_in_section += instructions;
        self.cycles_in_section += cycles;
        if self.instructions_in_section < self.section_len {
            return None;
        }
        let insts = self.instructions_in_section;
        let cpi = self.cycles_in_section as f64 / insts as f64;
        let rates = bank.rates(insts);
        let sample = SectionSample::new(self.workload.clone(), self.next_index, cpi, rates);
        bank.reset();
        self.instructions_in_section = 0;
        self.cycles_in_section = 0;
        self.next_index += 1;
        Some(sample)
    }

    /// Flushes a final partial section if it covers at least half of a full
    /// section; shorter tails are discarded as too noisy (the paper drops
    /// the trailing fragment as well by construction).
    pub fn finish(&mut self, bank: &mut CounterBank) -> Option<SectionSample> {
        if self.instructions_in_section * 2 < self.section_len {
            bank.reset();
            self.instructions_in_section = 0;
            self.cycles_in_section = 0;
            return None;
        }
        let insts = self.instructions_in_section;
        let cpi = self.cycles_in_section as f64 / insts as f64;
        let rates = bank.rates(insts);
        let sample = SectionSample::new(self.workload.clone(), self.next_index, cpi, rates);
        bank.reset();
        self.instructions_in_section = 0;
        self.cycles_in_section = 0;
        self.next_index += 1;
        Some(sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_add_count_reset() {
        let mut b = CounterBank::new();
        b.add(Event::L2m, 3);
        b.add(Event::L2m, 2);
        b.add(Event::InstLd, 7);
        assert_eq!(b.count(Event::L2m), 5);
        assert_eq!(b.count(Event::InstLd), 7);
        assert_eq!(b.total(), 12);
        b.reset();
        assert_eq!(b.total(), 0);
    }

    #[test]
    fn bank_rates_normalize_by_instructions() {
        let mut b = CounterBank::new();
        b.add(Event::BrMisPr, 10);
        let r = b.rates(1000);
        assert!((r[Event::BrMisPr.index()] - 0.01).abs() < 1e-12);
        assert_eq!(r[Event::L2m.index()], 0.0);
    }

    #[test]
    #[should_panic(expected = "empty section")]
    fn bank_rates_reject_zero_instructions() {
        CounterBank::new().rates(0);
    }

    #[test]
    fn sectioner_emits_every_section_len() {
        let mut s = Sectioner::new("w", 100);
        let mut b = CounterBank::new();
        let mut emitted = Vec::new();
        // 100 batches of 10 instructions = 1000 instructions = 10 sections.
        for _ in 0..100 {
            b.add(Event::InstLd, 10);
            if let Some(sample) = s.retire(&mut b, 10, 15) {
                emitted.push(sample);
            }
        }
        assert_eq!(emitted.len(), 10);
        let sample = &emitted[0];
        assert_eq!(sample.section_index, 0);
        assert_eq!(emitted[9].section_index, 9);
        assert!((sample.cpi - 1.5).abs() < 1e-12);
        // One load per instruction in every section.
        assert!((sample.rate(Event::InstLd) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sectioner_counts_reset_between_sections() {
        let mut s = Sectioner::new("w", 10);
        let mut b = CounterBank::new();
        b.add(Event::L2m, 5);
        let first = s.retire(&mut b, 10, 20).unwrap();
        assert!((first.rate(Event::L2m) - 0.5).abs() < 1e-12);
        // No events in second section.
        let second = s.retire(&mut b, 10, 10).unwrap();
        assert_eq!(second.rate(Event::L2m), 0.0);
        assert_eq!(second.section_index, 1);
        assert!((second.cpi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sectioner_overshoot_accounted_to_current_section() {
        let mut s = Sectioner::new("w", 10);
        let mut b = CounterBank::new();
        // One batch of 15 instructions crosses the 10-instruction boundary.
        let sample = s.retire(&mut b, 15, 30).unwrap();
        assert!((sample.cpi - 2.0).abs() < 1e-12);
        assert_eq!(s.next_index(), 1);
    }

    #[test]
    fn finish_keeps_long_tail_drops_short_tail() {
        let mut s = Sectioner::new("w", 100);
        let mut b = CounterBank::new();
        // 60 instructions: >= half a section, kept.
        assert!(s.retire(&mut b, 60, 90).is_none());
        let tail = s.finish(&mut b).unwrap();
        assert!((tail.cpi - 1.5).abs() < 1e-12);

        // 30 instructions: < half a section, dropped.
        assert!(s.retire(&mut b, 30, 90).is_none());
        assert!(s.finish(&mut b).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sectioner_rejects_zero_len() {
        let _ = Sectioner::new("w", 0);
    }
}
