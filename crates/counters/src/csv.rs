//! Minimal CSV import/export for section samples.
//!
//! The repro harness writes the simulated dataset and the figure series as
//! CSV so they can be inspected or re-plotted. The format is fixed:
//!
//! ```text
//! workload,section,CPI,InstLd,InstSt,...,LCP
//! 429.mcf-like,0,1.92,0.31,...,0.0
//! ```
//!
//! Only this schema is supported — this is a data channel for `mtperf`'s own
//! artifacts, not a general CSV library. Fields never contain commas.

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

use crate::events::{Event, N_EVENTS};
use crate::sample::SectionSample;
use crate::sampleset::SampleSet;

/// Error produced while reading or writing sample CSV.
#[derive(Debug)]
#[non_exhaustive]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The header row did not match the expected schema.
    BadHeader {
        /// The header line found in the input.
        found: String,
    },
    /// A data row had the wrong number of fields or an unparsable number.
    BadRow {
        /// 1-based line number of the offending row.
        line: usize,
        /// Explanation of the failure.
        reason: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv i/o error: {e}"),
            CsvError::BadHeader { found } => {
                write!(f, "csv header mismatch, found: {found:?}")
            }
            CsvError::BadRow { line, reason } => {
                write!(f, "bad csv row at line {line}: {reason}")
            }
        }
    }
}

impl Error for CsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// The fixed header row of the sample CSV schema.
pub(crate) fn header() -> String {
    let mut h = String::from("workload,section,CPI");
    for e in Event::iter() {
        h.push(',');
        h.push_str(e.metric_name());
    }
    h
}

/// Writes `set` to `w` in the fixed CSV schema.
///
/// A `mut` reference is a valid `W`, so callers can pass `&mut file`.
///
/// # Errors
///
/// Returns [`CsvError::Io`] on write failure.
pub fn write_csv<W: Write>(set: &SampleSet, mut w: W) -> Result<(), CsvError> {
    writeln!(w, "{}", header())?;
    for s in set.iter() {
        write!(w, "{},{},{}", s.workload, s.section_index, fmt_f64(s.cpi))?;
        for r in s.as_row() {
            write!(w, ",{}", fmt_f64(*r))?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Formats a float compactly but losslessly enough for round-trips.
fn fmt_f64(v: f64) -> String {
    // 17 significant digits round-trips f64 exactly; trim trailing zeros for
    // readability.
    let s = format!("{v:.17e}");
    match s.parse::<f64>() {
        Ok(p) if p == v => s,
        _ => format!("{v}"),
    }
}

/// Reads a sample set from `r` expecting the schema produced by
/// [`write_csv`]. A `mut` reference is a valid `R`.
///
/// # Errors
///
/// Returns [`CsvError::BadHeader`] when the header deviates from the schema
/// and [`CsvError::BadRow`] for malformed data rows.
pub fn read_csv<R: Read>(r: R) -> Result<SampleSet, CsvError> {
    let mut lines = BufReader::new(r).lines();
    let head = match lines.next() {
        Some(h) => h?,
        None => {
            return Err(CsvError::BadHeader {
                found: String::new(),
            })
        }
    };
    if head != header() {
        return Err(CsvError::BadHeader { found: head });
    }
    let mut set = SampleSet::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        let lineno = i + 2;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 3 + N_EVENTS {
            return Err(CsvError::BadRow {
                line: lineno,
                reason: format!("expected {} fields, found {}", 3 + N_EVENTS, fields.len()),
            });
        }
        let section_index: usize = fields[1].parse().map_err(|e| CsvError::BadRow {
            line: lineno,
            reason: format!("bad section index {:?}: {e}", fields[1]),
        })?;
        let cpi: f64 = fields[2].parse().map_err(|e| CsvError::BadRow {
            line: lineno,
            reason: format!("bad CPI {:?}: {e}", fields[2]),
        })?;
        // `str::parse::<f64>` accepts "NaN" and "inf"; such values would
        // only blow up later, deep inside training, so reject them here.
        if !cpi.is_finite() {
            return Err(CsvError::BadRow {
                line: lineno,
                reason: format!("non-finite CPI {:?}", fields[2]),
            });
        }
        let mut rates = [0.0f64; N_EVENTS];
        for (j, f) in fields[3..].iter().enumerate() {
            rates[j] = f.parse().map_err(|e| CsvError::BadRow {
                line: lineno,
                reason: format!("bad rate {f:?}: {e}"),
            })?;
            if !rates[j].is_finite() {
                return Err(CsvError::BadRow {
                    line: lineno,
                    reason: format!("non-finite rate {f:?}"),
                });
            }
        }
        set.push(SectionSample::new(fields[0], section_index, cpi, rates));
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> SampleSet {
        let mut rates = [0.0; N_EVENTS];
        rates[Event::L2m.index()] = 0.0123456789;
        rates[Event::Lcp.index()] = 1e-7;
        vec![
            SectionSample::new("429.mcf-like", 0, 1.987654321, rates),
            SectionSample::new("403.gcc-like", 5, 0.75, [0.0; N_EVENTS]),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn roundtrip_preserves_samples() {
        let original = set();
        let mut buf = Vec::new();
        write_csv(&original, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn header_contains_all_metrics() {
        let h = header();
        for e in Event::iter() {
            assert!(h.contains(e.metric_name()), "{h}");
        }
        assert!(h.starts_with("workload,section,CPI,InstLd"));
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_csv("nope,nope\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::BadHeader { .. }));
        let err = read_csv("".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::BadHeader { .. }));
    }

    #[test]
    fn rejects_short_row() {
        let input = format!("{}\nw,0,1.0,0.5\n", header());
        let err = read_csv(input.as_bytes()).unwrap_err();
        match err {
            CsvError::BadRow { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("fields"));
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn rejects_unparsable_number() {
        let zeros = vec!["0"; N_EVENTS].join(",");
        let input = format!("{}\nw,0,abc,{zeros}\n", header());
        let err = read_csv(input.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::BadRow { .. }));
        assert!(err.to_string().contains("CPI"));
    }

    #[test]
    fn rejects_non_finite_values() {
        let zeros = vec!["0"; N_EVENTS].join(",");
        for cpi in ["NaN", "inf", "-inf"] {
            let input = format!("{}\nw,0,{cpi},{zeros}\n", header());
            let err = read_csv(input.as_bytes()).unwrap_err();
            assert!(matches!(err, CsvError::BadRow { .. }), "{cpi}");
            assert!(err.to_string().contains("non-finite CPI"), "{err}");
        }
        let mut fields = vec!["0"; N_EVENTS];
        fields[3] = "NaN";
        let input = format!("{}\nw,0,1.5,{}\n", header(), fields.join(","));
        let err = read_csv(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("non-finite rate"), "{err}");
    }

    #[test]
    fn skips_blank_lines() {
        let zeros = vec!["0"; N_EVENTS].join(",");
        let input = format!("{}\n\nw,0,1.5,{zeros}\n\n", header());
        let got = read_csv(input.as_bytes()).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got.samples()[0].cpi, 1.5);
    }

    #[test]
    fn empty_set_roundtrip() {
        let mut buf = Vec::new();
        write_csv(&SampleSet::new(), &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert!(back.is_empty());
    }
}
