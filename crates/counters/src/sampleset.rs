//! Collections of section samples with summary statistics.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::events::{Event, N_EVENTS};
use crate::sample::SectionSample;

/// Per-event summary statistics over a [`SampleSet`] (used to regenerate the
/// Table I companion statistics and to sanity-check simulated suites).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventSummary {
    /// Mean per-instruction rate across all sections.
    pub mean: f64,
    /// Minimum rate observed.
    pub min: f64,
    /// Maximum rate observed.
    pub max: f64,
    /// Fraction of sections with a non-zero rate.
    pub nonzero_fraction: f64,
}

/// An owned collection of [`SectionSample`]s — the dataset the model tree is
/// trained on.
///
/// # Example
///
/// ```
/// use mtperf_counters::{Event, SampleSet, SectionSample};
///
/// let mut set = SampleSet::new();
/// set.push(SectionSample::new("a", 0, 1.0, [0.0; mtperf_counters::N_EVENTS]));
/// set.push(SectionSample::new("b", 0, 2.0, [0.0; mtperf_counters::N_EVENTS]));
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.workloads(), vec!["a".to_string(), "b".to_string()]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleSet {
    samples: Vec<SectionSample>,
}

impl SampleSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one sample.
    pub fn push(&mut self, sample: SectionSample) {
        self.samples.push(sample);
    }

    /// Number of sections in the set.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the set contains no sections.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Borrows the samples.
    pub fn samples(&self) -> &[SectionSample] {
        &self.samples
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, SectionSample> {
        self.samples.iter()
    }

    /// Sorted, deduplicated list of workload names present in the set.
    pub fn workloads(&self) -> Vec<String> {
        let mut names: Vec<String> = self.samples.iter().map(|s| s.workload.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Returns the subset of sections belonging to `workload`.
    pub fn for_workload(&self, workload: &str) -> SampleSet {
        SampleSet {
            samples: self
                .samples
                .iter()
                .filter(|s| s.workload == workload)
                .cloned()
                .collect(),
        }
    }

    /// The CPI column.
    pub fn cpis(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.cpi).collect()
    }

    /// The rate column for one event.
    pub fn rates_of(&self, event: Event) -> Vec<f64> {
        self.samples.iter().map(|s| s.rate(event)).collect()
    }

    /// Per-event summary statistics, keyed by metric name in Table I order.
    pub fn summarize(&self) -> BTreeMap<&'static str, EventSummary> {
        let mut out = BTreeMap::new();
        if self.samples.is_empty() {
            return out;
        }
        let n = self.samples.len() as f64;
        for e in Event::iter() {
            let mut sum = 0.0;
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut nonzero = 0usize;
            for s in &self.samples {
                let r = s.rate(e);
                sum += r;
                min = min.min(r);
                max = max.max(r);
                if r > 0.0 {
                    nonzero += 1;
                }
            }
            out.insert(
                e.metric_name(),
                EventSummary {
                    mean: sum / n,
                    min,
                    max,
                    nonzero_fraction: nonzero as f64 / n,
                },
            );
        }
        out
    }

    /// Decomposes the set into the pieces the learner consumes: attribute
    /// names (Table I metric names), one rate row per section, and the CPI
    /// target column.
    pub fn to_learning_parts(&self) -> (Vec<String>, Vec<[f64; N_EVENTS]>, Vec<f64>) {
        let names = Event::iter().map(|e| e.metric_name().to_owned()).collect();
        let rows = self.samples.iter().map(|s| s.rates).collect();
        let targets = self.cpis();
        (names, rows, targets)
    }

    /// Returns `true` if every sample satisfies
    /// [`SectionSample::is_well_formed`].
    pub fn is_well_formed(&self) -> bool {
        self.samples.iter().all(SectionSample::is_well_formed)
    }
}

impl FromIterator<SectionSample> for SampleSet {
    fn from_iter<I: IntoIterator<Item = SectionSample>>(iter: I) -> Self {
        SampleSet {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<SectionSample> for SampleSet {
    fn extend<I: IntoIterator<Item = SectionSample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

impl IntoIterator for SampleSet {
    type Item = SectionSample;
    type IntoIter = std::vec::IntoIter<SectionSample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.into_iter()
    }
}

impl<'a> IntoIterator for &'a SampleSet {
    type Item = &'a SectionSample;
    type IntoIter = std::slice::Iter<'a, SectionSample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(w: &str, idx: usize, cpi: f64, l2m: f64) -> SectionSample {
        let mut rates = [0.0; N_EVENTS];
        rates[Event::L2m.index()] = l2m;
        SectionSample::new(w, idx, cpi, rates)
    }

    fn set() -> SampleSet {
        vec![
            sample("mcf", 0, 2.0, 0.01),
            sample("mcf", 1, 2.2, 0.012),
            sample("gcc", 0, 0.8, 0.0),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn len_and_workloads() {
        let s = set();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.workloads(), vec!["gcc".to_string(), "mcf".to_string()]);
    }

    #[test]
    fn for_workload_filters() {
        let s = set();
        let mcf = s.for_workload("mcf");
        assert_eq!(mcf.len(), 2);
        assert!(mcf.iter().all(|x| x.workload == "mcf"));
        assert!(s.for_workload("nope").is_empty());
    }

    #[test]
    fn columns() {
        let s = set();
        assert_eq!(s.cpis(), vec![2.0, 2.2, 0.8]);
        assert_eq!(s.rates_of(Event::L2m), vec![0.01, 0.012, 0.0]);
    }

    #[test]
    fn summary_statistics() {
        let s = set();
        let summary = s.summarize();
        let l2 = &summary["L2M"];
        assert!((l2.mean - (0.01 + 0.012) / 3.0).abs() < 1e-12);
        assert_eq!(l2.min, 0.0);
        assert_eq!(l2.max, 0.012);
        assert!((l2.nonzero_fraction - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(summary.len(), N_EVENTS);
    }

    #[test]
    fn summary_of_empty_set_is_empty() {
        assert!(SampleSet::new().summarize().is_empty());
    }

    #[test]
    fn learning_parts_shapes() {
        let s = set();
        let (names, rows, targets) = s.to_learning_parts();
        assert_eq!(names.len(), N_EVENTS);
        assert_eq!(names[Event::L2m.index()], "L2M");
        assert_eq!(rows.len(), 3);
        assert_eq!(targets.len(), 3);
        assert_eq!(rows[0][Event::L2m.index()], 0.01);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: SampleSet = std::iter::once(sample("a", 0, 1.0, 0.0)).collect();
        s.extend(vec![sample("b", 0, 1.0, 0.0)]);
        assert_eq!(s.len(), 2);
        let names: Vec<&str> = (&s).into_iter().map(|x| x.workload.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn well_formed_check() {
        let mut s = set();
        assert!(s.is_well_formed());
        s.push(sample("bad", 0, f64::INFINITY, 0.0));
        assert!(!s.is_well_formed());
    }
}
