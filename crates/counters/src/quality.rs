//! Data-quality layer for counter ingestion: policies, quarantine, repair.
//!
//! Real hardware-counter streams are messy — multiplexed events drop
//! samples, counters saturate, runs get truncated mid-section. The strict
//! reader ([`crate::read_csv`]) rejects a whole file on the first bad value,
//! which is the right default for simulator-generated artifacts but useless
//! for field data. This module adds graduated alternatives:
//!
//! * [`IngestPolicy::Strict`] — the existing behavior: any malformed row
//!   fails the file with a typed [`CsvError`] naming the exact line.
//! * [`IngestPolicy::Skip`] — malformed rows (wrong field count, unparsable
//!   or non-finite numbers, out-of-range rates, duplicate
//!   `(workload, section)` keys) are *quarantined* with a per-row
//!   diagnostic; every surviving row is kept bit-identical to the strict
//!   parse.
//! * [`IngestPolicy::Repair`] — missing or invalid counter rates are
//!   *imputed* from per-workload medians and extreme outliers are
//!   *winsorized* (clamped to a robust 8-sigma band); every change is
//!   recorded in the report. The CPI target is never fabricated: rows whose
//!   CPI is unusable are quarantined even under `Repair`.
//!
//! Every ingest produces an [`IngestReport`] — rows read, kept,
//! quarantined, repaired, with per-row diagnostics — so a pipeline can log
//! precisely what happened to its input instead of silently altering
//! metrics.
//!
//! # Example
//!
//! ```
//! use mtperf_counters::{read_csv_with_policy, write_csv, IngestPolicy, SampleSet};
//!
//! // An empty set serializes to just the schema header.
//! let mut buf = Vec::new();
//! write_csv(&SampleSet::new(), &mut buf).unwrap();
//! let (set, report) = read_csv_with_policy(buf.as_slice(), IngestPolicy::Skip).unwrap();
//! assert!(set.is_empty());
//! assert!(report.is_clean());
//! ```

use std::collections::HashSet;
use std::fmt;
use std::io::{BufRead, BufReader, Read};
use std::str::FromStr;

use crate::csv::{header, CsvError};
use crate::events::{Event, N_EVENTS};
use crate::sample::SectionSample;
use crate::sampleset::SampleSet;

/// Largest per-instruction event rate the quality layer accepts. Real
/// per-instruction rates are O(1); anything beyond this reads as counter
/// saturation or unit confusion.
pub const MAX_RATE: f64 = 1e4;

/// Largest CPI the quality layer accepts — same rationale as [`MAX_RATE`].
pub const MAX_CPI: f64 = 1e4;

/// Robust z-score beyond which `Repair` winsorizes a rate (|v − median| >
/// `WINSOR_Z` · 1.4826 · MAD).
pub const WINSOR_Z: f64 = 8.0;

/// Minimum in-group sample count before `Repair` trusts a per-workload
/// median/MAD enough to winsorize against it.
const MIN_GROUP_FOR_WINSOR: usize = 8;

/// How a CSV ingest treats malformed rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestPolicy {
    /// Fail the whole file on the first malformed row (the historical
    /// [`crate::read_csv`] behavior).
    #[default]
    Strict,
    /// Quarantine malformed rows with diagnostics; keep the rest untouched.
    Skip,
    /// Impute invalid counter rates from per-workload medians and winsorize
    /// extreme outliers; quarantine only rows whose key or CPI target is
    /// unusable.
    Repair,
}

impl FromStr for IngestPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "strict" => Ok(IngestPolicy::Strict),
            "skip" => Ok(IngestPolicy::Skip),
            "repair" => Ok(IngestPolicy::Repair),
            other => Err(format!(
                "invalid ingest policy {other:?}: expected \"strict\", \"skip\", or \"repair\""
            )),
        }
    }
}

impl fmt::Display for IngestPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestPolicy::Strict => write!(f, "strict"),
            IngestPolicy::Skip => write!(f, "skip"),
            IngestPolicy::Repair => write!(f, "repair"),
        }
    }
}

/// Why a row was quarantined.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RowIssue {
    /// The row has the wrong number of comma-separated fields.
    FieldCount {
        /// Fields the schema expects.
        expected: usize,
        /// Fields the row actually has.
        found: usize,
    },
    /// The `workload` or `section` key field is unusable.
    BadKey {
        /// Explanation of the failure.
        detail: String,
    },
    /// A numeric field did not parse.
    Unparsable {
        /// Schema name of the field (`"CPI"` or a Table-I metric name).
        field: &'static str,
        /// The offending text.
        text: String,
    },
    /// A numeric field parsed to NaN or ±infinity.
    NonFinite {
        /// Schema name of the field.
        field: &'static str,
        /// The offending text.
        text: String,
    },
    /// A value is finite but outside its plausible range
    /// (negative, > [`MAX_RATE`], or CPI > [`MAX_CPI`]).
    OutOfRange {
        /// Schema name of the field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The `(workload, section)` key repeats an earlier kept row.
    DuplicateKey {
        /// Workload name of the repeated key.
        workload: String,
        /// Section index of the repeated key.
        section: usize,
    },
    /// Under `Repair`: the CPI target is unusable, and targets are never
    /// fabricated.
    UnrepairableTarget {
        /// Explanation of the failure.
        detail: String,
    },
}

impl fmt::Display for RowIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowIssue::FieldCount { expected, found } => {
                write!(f, "expected {expected} fields, found {found}")
            }
            RowIssue::BadKey { detail } => write!(f, "bad row key: {detail}"),
            RowIssue::Unparsable { field, text } => {
                write!(f, "unparsable {field} {text:?}")
            }
            RowIssue::NonFinite { field, text } => {
                write!(f, "non-finite {field} {text:?}")
            }
            RowIssue::OutOfRange { field, value } => {
                write!(f, "out-of-range {field} ({value:e})")
            }
            RowIssue::DuplicateKey { workload, section } => {
                write!(f, "duplicate key ({workload}, {section})")
            }
            RowIssue::UnrepairableTarget { detail } => {
                write!(f, "unrepairable CPI target: {detail}")
            }
        }
    }
}

/// One quarantined row: where it was and why it was rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedRow {
    /// 1-based line number in the input (the header is line 1).
    pub line: usize,
    /// The disqualifying problem.
    pub issue: RowIssue,
}

/// What a `Repair` ingest did to one field.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum RepairKind {
    /// The field was missing or invalid and was replaced by a median.
    Imputed {
        /// The value written in its place.
        replacement: f64,
    },
    /// The field was a finite extreme outlier and was clamped.
    Winsorized {
        /// The original value.
        from: f64,
        /// The clamped value.
        to: f64,
    },
}

/// One recorded repair.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairAction {
    /// 1-based line number of the repaired row.
    pub line: usize,
    /// Schema name of the repaired field.
    pub field: &'static str,
    /// What was done.
    pub kind: RepairKind,
}

impl fmt::Display for RepairAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            RepairKind::Imputed { replacement } => write!(
                f,
                "line {}: imputed {} = {replacement:e}",
                self.line, self.field
            ),
            RepairKind::Winsorized { from, to } => write!(
                f,
                "line {}: winsorized {} {from:e} -> {to:e}",
                self.line, self.field
            ),
        }
    }
}

/// Structured account of one CSV ingest: what was read, kept, quarantined,
/// and repaired.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// The policy the ingest ran under.
    pub policy: IngestPolicy,
    /// Data rows seen (blank lines and the header excluded).
    pub rows_read: usize,
    /// Rows that made it into the returned [`SampleSet`].
    pub rows_kept: usize,
    /// Rows rejected, in line order, each with its diagnostic.
    pub quarantined: Vec<QuarantinedRow>,
    /// Field repairs applied, in (line, field) order.
    pub repairs: Vec<RepairAction>,
}

impl IngestReport {
    /// Number of quarantined rows.
    pub fn rows_quarantined(&self) -> usize {
        self.quarantined.len()
    }

    /// Number of distinct rows that received at least one repair.
    pub fn rows_repaired(&self) -> usize {
        let mut lines: Vec<usize> = self.repairs.iter().map(|r| r.line).collect();
        lines.dedup(); // repairs are sorted by (line, field)
        lines.len()
    }

    /// `true` when nothing was quarantined or repaired.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.repairs.is_empty()
    }

    /// One-line summary suitable for CLI output.
    pub fn summary(&self) -> String {
        format!(
            "ingest ({}): {} rows read, {} kept, {} quarantined, {} repaired ({} field repairs)",
            self.policy,
            self.rows_read,
            self.rows_kept,
            self.rows_quarantined(),
            self.rows_repaired(),
            self.repairs.len(),
        )
    }
}

impl fmt::Display for IngestReport {
    /// The summary line plus up to eight per-row diagnostics.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const SHOWN: usize = 8;
        writeln!(f, "{}", self.summary())?;
        for q in self.quarantined.iter().take(SHOWN) {
            writeln!(f, "  quarantined line {}: {}", q.line, q.issue)?;
        }
        if self.quarantined.len() > SHOWN {
            writeln!(
                f,
                "  ... {} more quarantined",
                self.quarantined.len() - SHOWN
            )?;
        }
        for r in self.repairs.iter().take(SHOWN) {
            writeln!(f, "  {r}")?;
        }
        if self.repairs.len() > SHOWN {
            writeln!(f, "  ... {} more repairs", self.repairs.len() - SHOWN)?;
        }
        Ok(())
    }
}

/// Schema name of field index `i` (0 = workload, 1 = section, 2 = CPI,
/// then the Table-I metrics).
fn field_name(i: usize) -> &'static str {
    match i {
        0 => "workload",
        1 => "section",
        2 => "CPI",
        _ => Event::ALL[i - 3].metric_name(),
    }
}

/// A rate slot in a row being repaired: a valid value, or a hole to impute.
#[derive(Debug, Clone, PartialEq)]
enum Slot {
    Value(f64),
    Missing,
}

/// A row that survived pass 1 of `Repair` and may still need imputation.
struct Candidate {
    line: usize,
    workload: String,
    section: usize,
    cpi: f64,
    rates: Vec<Slot>, // always N_EVENTS long; truncated tails are Missing
}

/// Outcome of validating one numeric field.
enum FieldCheck {
    Ok(f64),
    Bad(RowIssue),
}

/// Parses and range-checks one numeric field.
fn check_field(text: &str, idx: usize, max: f64) -> FieldCheck {
    let field = field_name(idx);
    match text.parse::<f64>() {
        Err(_) => FieldCheck::Bad(RowIssue::Unparsable {
            field,
            text: text.to_string(),
        }),
        Ok(v) if !v.is_finite() => FieldCheck::Bad(RowIssue::NonFinite {
            field,
            text: text.to_string(),
        }),
        Ok(v) if !(0.0..=max).contains(&v) => {
            FieldCheck::Bad(RowIssue::OutOfRange { field, value: v })
        }
        Ok(v) => FieldCheck::Ok(v),
    }
}

/// Median of `values` (not necessarily sorted). Returns `None` when empty.
fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    })
}

/// Median absolute deviation around `center`.
fn mad(values: &[f64], center: f64) -> Option<f64> {
    let dev: Vec<f64> = values.iter().map(|v| (v - center).abs()).collect();
    median(&dev)
}

/// Reads a sample CSV under `policy`, returning the surviving samples plus a
/// structured [`IngestReport`].
///
/// Under [`IngestPolicy::Strict`] this is exactly [`crate::read_csv`] (same
/// errors, same accepted inputs) with a trivial report. `Skip` and `Repair`
/// never fail on data rows — only on I/O errors or a header that does not
/// match the schema, because a wrong header means the column meanings
/// themselves are untrustworthy.
///
/// # Errors
///
/// [`CsvError::Io`] on read failure; [`CsvError::BadHeader`] on schema
/// mismatch; under `Strict` also [`CsvError::BadRow`] for the first
/// malformed data row.
pub fn read_csv_with_policy<R: Read>(
    r: R,
    policy: IngestPolicy,
) -> Result<(SampleSet, IngestReport), CsvError> {
    let mut ingest_span = mtperf_obs::span("ingest");
    ingest_span.annotate("policy", &policy.to_string());
    if policy == IngestPolicy::Strict {
        let set = crate::csv::read_csv(r)?;
        let n = set.len();
        ingest_span.add("rows_read", n as u64);
        ingest_span.add("rows_kept", n as u64);
        return Ok((
            set,
            IngestReport {
                policy,
                rows_read: n,
                rows_kept: n,
                quarantined: Vec::new(),
                repairs: Vec::new(),
            },
        ));
    }

    let mut lines = BufReader::new(r).lines();
    let head = match lines.next() {
        Some(h) => h?,
        None => {
            return Err(CsvError::BadHeader {
                found: String::new(),
            })
        }
    };
    if head != header() {
        return Err(CsvError::BadHeader { found: head });
    }

    let expected = 3 + N_EVENTS;
    let mut rows_read = 0usize;
    let mut quarantined: Vec<QuarantinedRow> = Vec::new();
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut seen_keys: HashSet<(String, usize)> = HashSet::new();

    for (i, line) in lines.enumerate() {
        let line = line?;
        let lineno = i + 2;
        if line.is_empty() {
            continue;
        }
        rows_read += 1;
        let fields: Vec<&str> = line.split(',').collect();
        let found = fields.len();

        // Structural checks. `Repair` tolerates a truncated tail (missing
        // trailing rates are imputable); everything else is fatal to the row
        // under both policies.
        let truncation_ok = policy == IngestPolicy::Repair && found >= 3;
        if found != expected && !(truncation_ok && found < expected) {
            quarantined.push(QuarantinedRow {
                line: lineno,
                issue: RowIssue::FieldCount { expected, found },
            });
            continue;
        }

        // Key fields.
        if fields[0].is_empty() {
            quarantined.push(QuarantinedRow {
                line: lineno,
                issue: RowIssue::BadKey {
                    detail: "empty workload name".into(),
                },
            });
            continue;
        }
        let section: usize = match fields[1].parse() {
            Ok(s) => s,
            Err(e) => {
                quarantined.push(QuarantinedRow {
                    line: lineno,
                    issue: RowIssue::BadKey {
                        detail: format!("bad section index {:?}: {e}", fields[1]),
                    },
                });
                continue;
            }
        };

        // CPI target: never fabricated, under either policy.
        let cpi = match check_field(fields[2], 2, MAX_CPI) {
            FieldCheck::Ok(v) => v,
            FieldCheck::Bad(issue) => {
                let issue = if policy == IngestPolicy::Repair {
                    RowIssue::UnrepairableTarget {
                        detail: issue.to_string(),
                    }
                } else {
                    issue
                };
                quarantined.push(QuarantinedRow {
                    line: lineno,
                    issue,
                });
                continue;
            }
        };

        // Rate fields.
        let mut rates: Vec<Slot> = Vec::with_capacity(N_EVENTS);
        let mut skip_issue: Option<RowIssue> = None;
        for j in 0..N_EVENTS {
            match fields.get(3 + j) {
                None => rates.push(Slot::Missing), // truncated tail (Repair)
                Some(text) => match check_field(text, 3 + j, MAX_RATE) {
                    FieldCheck::Ok(v) => rates.push(Slot::Value(v)),
                    FieldCheck::Bad(issue) => {
                        if policy == IngestPolicy::Skip {
                            skip_issue = Some(issue);
                            break;
                        }
                        rates.push(Slot::Missing);
                    }
                },
            }
        }
        if let Some(issue) = skip_issue {
            quarantined.push(QuarantinedRow {
                line: lineno,
                issue,
            });
            continue;
        }

        // Duplicate keys: the first kept row claims the key.
        if !seen_keys.insert((fields[0].to_string(), section)) {
            quarantined.push(QuarantinedRow {
                line: lineno,
                issue: RowIssue::DuplicateKey {
                    workload: fields[0].to_string(),
                    section,
                },
            });
            continue;
        }

        candidates.push(Candidate {
            line: lineno,
            workload: fields[0].to_string(),
            section,
            cpi,
            rates,
        });
    }

    let repairs = if policy == IngestPolicy::Repair {
        repair_candidates(&mut candidates)
    } else {
        Vec::new()
    };

    let mut set = SampleSet::new();
    for c in &candidates {
        let mut arr = [0.0f64; N_EVENTS];
        for (j, slot) in c.rates.iter().enumerate() {
            match slot {
                Slot::Value(v) => arr[j] = *v,
                // Repaired rows have no Missing slots left; Skip rows never
                // had any.
                Slot::Missing => unreachable!("unfilled slot after repair"),
            }
        }
        set.push(SectionSample::new(
            c.workload.clone(),
            c.section,
            c.cpi,
            arr,
        ));
    }

    let report = IngestReport {
        policy,
        rows_read,
        rows_kept: set.len(),
        quarantined,
        repairs,
    };
    ingest_span.add("rows_read", report.rows_read as u64);
    ingest_span.add("rows_kept", report.rows_kept as u64);
    ingest_span.add("rows_quarantined", report.rows_quarantined() as u64);
    ingest_span.add("field_repairs", report.repairs.len() as u64);
    Ok((set, report))
}

/// Pass 2 of `Repair`: fill every [`Slot::Missing`] from per-workload (then
/// global) medians and winsorize extreme in-range outliers. Returns the
/// recorded repairs sorted by (line, field).
fn repair_candidates(candidates: &mut [Candidate]) -> Vec<RepairAction> {
    let mut repairs: Vec<RepairAction> = Vec::new();

    // Per-event column values, per workload and global, from present slots.
    // Workload grouping uses sorted names so every run visits groups in the
    // same order.
    let mut groups: std::collections::BTreeMap<&str, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, c) in candidates.iter().enumerate() {
        groups.entry(c.workload.as_str()).or_default().push(i);
    }
    // Borrow-friendly copy: (workload index list) pairs.
    let groups: Vec<Vec<usize>> = groups.into_values().collect();

    for j in 0..N_EVENTS {
        let field = Event::ALL[j].metric_name();
        let global: Vec<f64> = candidates
            .iter()
            .filter_map(|c| match c.rates[j] {
                Slot::Value(v) => Some(v),
                Slot::Missing => None,
            })
            .collect();
        let global_median = median(&global).unwrap_or(0.0);

        for idx in &groups {
            let present: Vec<f64> = idx
                .iter()
                .filter_map(|&i| match candidates[i].rates[j] {
                    Slot::Value(v) => Some(v),
                    Slot::Missing => None,
                })
                .collect();
            let group_median = median(&present);
            let fill = group_median.unwrap_or(global_median);

            // Winsorization band from the group's robust spread.
            let band = group_median.and_then(|med| {
                let m = mad(&present, med)?;
                (present.len() >= MIN_GROUP_FOR_WINSOR && m > 0.0)
                    .then(|| (med - WINSOR_Z * 1.4826 * m).max(0.0)..=(med + WINSOR_Z * 1.4826 * m))
            });

            for &i in idx {
                match candidates[i].rates[j] {
                    Slot::Missing => {
                        candidates[i].rates[j] = Slot::Value(fill);
                        repairs.push(RepairAction {
                            line: candidates[i].line,
                            field,
                            kind: RepairKind::Imputed { replacement: fill },
                        });
                    }
                    Slot::Value(v) => {
                        if let Some(band) = &band {
                            if !band.contains(&v) {
                                let to = v.clamp(*band.start(), *band.end());
                                candidates[i].rates[j] = Slot::Value(to);
                                repairs.push(RepairAction {
                                    line: candidates[i].line,
                                    field,
                                    kind: RepairKind::Winsorized { from: v, to },
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // (line, field-index) order: stable, file-ordered diagnostics.
    repairs.sort_by_key(|r| {
        (
            r.line,
            Event::iter()
                .position(|e| e.metric_name() == r.field)
                .unwrap_or(usize::MAX),
        )
    });
    repairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::write_csv;

    fn sample(w: &str, idx: usize, cpi: f64, fill: f64) -> SectionSample {
        SectionSample::new(w, idx, cpi, [fill; N_EVENTS])
    }

    fn csv_of(set: &SampleSet) -> String {
        let mut buf = Vec::new();
        write_csv(set, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    fn clean_set() -> SampleSet {
        (0..12)
            .map(|i| sample("w", i, 1.0 + i as f64 * 0.01, 0.1 + i as f64 * 0.001))
            .collect()
    }

    #[test]
    fn policy_parses_and_displays() {
        for p in [
            IngestPolicy::Strict,
            IngestPolicy::Skip,
            IngestPolicy::Repair,
        ] {
            assert_eq!(p.to_string().parse::<IngestPolicy>().unwrap(), p);
        }
        assert!("lenient".parse::<IngestPolicy>().is_err());
    }

    #[test]
    fn strict_policy_matches_read_csv() {
        let set = clean_set();
        let text = csv_of(&set);
        let (back, report) = read_csv_with_policy(text.as_bytes(), IngestPolicy::Strict).unwrap();
        assert_eq!(back, set);
        assert!(report.is_clean());
        assert_eq!(report.rows_read, set.len());
        assert_eq!(report.rows_kept, set.len());

        let bad = text.replace("1.0", "NaN");
        assert!(read_csv_with_policy(bad.as_bytes(), IngestPolicy::Strict).is_err());
    }

    #[test]
    fn clean_input_is_untouched_under_all_policies() {
        let set = clean_set();
        let text = csv_of(&set);
        for policy in [IngestPolicy::Skip, IngestPolicy::Repair] {
            let (back, report) = read_csv_with_policy(text.as_bytes(), policy).unwrap();
            assert_eq!(back, set, "{policy}");
            assert!(report.is_clean(), "{policy}: {report}");
        }
    }

    #[test]
    fn skip_quarantines_non_finite_row_with_diagnostic() {
        let mut set = clean_set();
        set.push(sample("w", 100, 2.0, 0.2));
        let mut text = csv_of(&set);
        // Corrupt the last row's final field.
        let lastpos = text.trim_end().rfind(',').unwrap();
        text.replace_range(lastpos + 1..text.trim_end().len(), "NaN");
        let (back, report) = read_csv_with_policy(text.as_bytes(), IngestPolicy::Skip).unwrap();
        assert_eq!(back.len(), set.len() - 1);
        assert_eq!(report.rows_quarantined(), 1);
        let q = &report.quarantined[0];
        assert_eq!(q.line, 2 + set.len() - 1);
        assert!(
            matches!(q.issue, RowIssue::NonFinite { field: "LCP", .. }),
            "{:?}",
            q.issue
        );
    }

    #[test]
    fn skip_quarantines_truncated_and_out_of_range_rows() {
        let set = clean_set();
        let mut text = csv_of(&set);
        text.push_str("w,100,1.5,0.5\n"); // truncated
        text.push_str(&format!(
            "w,101,1.5{}\n",
            ",1e30".repeat(N_EVENTS) // saturated counters
        ));
        let (back, report) = read_csv_with_policy(text.as_bytes(), IngestPolicy::Skip).unwrap();
        assert_eq!(back.len(), set.len());
        assert_eq!(report.rows_quarantined(), 2);
        assert!(matches!(
            report.quarantined[0].issue,
            RowIssue::FieldCount { found: 4, .. }
        ));
        assert!(matches!(
            report.quarantined[1].issue,
            RowIssue::OutOfRange { .. }
        ));
    }

    #[test]
    fn skip_quarantines_duplicate_keys_keeping_first() {
        let set = clean_set();
        let mut text = csv_of(&set);
        // Re-append row (w, 3) with a different CPI.
        text.push_str(&format!("w,3,9.0{}\n", ",0".repeat(N_EVENTS)));
        let (back, report) = read_csv_with_policy(text.as_bytes(), IngestPolicy::Skip).unwrap();
        assert_eq!(back.len(), set.len());
        // The first (w, 3) row was kept with its original CPI.
        let kept = back.iter().find(|s| s.section_index == 3).unwrap();
        assert!((kept.cpi - 1.03).abs() < 1e-12);
        assert!(matches!(
            &report.quarantined[0].issue,
            RowIssue::DuplicateKey { workload, section: 3 } if workload == "w"
        ));
    }

    #[test]
    fn repair_imputes_from_workload_median() {
        // Workload "a": rates all 0.2 except one NaN; workload "b": all 0.7.
        let mut set: SampleSet = (0..9).map(|i| sample("a", i, 1.0, 0.2)).collect();
        set.extend((0..9).map(|i| sample("b", i, 1.0, 0.7)));
        let mut text = csv_of(&set);
        // Break one rate in an "a" row: replace that row entirely.
        let lines: Vec<&str> = text.lines().collect();
        let mut row3: Vec<String> = lines[4].split(',').map(str::to_string).collect();
        row3[3] = "NaN".to_string();
        let rebuilt = row3.join(",");
        text = {
            let mut ls: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
            ls[4] = rebuilt;
            ls.join("\n") + "\n"
        };
        let (back, report) = read_csv_with_policy(text.as_bytes(), IngestPolicy::Repair).unwrap();
        assert_eq!(back.len(), set.len());
        assert_eq!(report.repairs.len(), 1);
        let r = &report.repairs[0];
        assert_eq!(r.line, 5);
        assert_eq!(r.field, Event::ALL[0].metric_name());
        // Imputed from workload "a"'s median (0.2), not "b"'s 0.7.
        match r.kind {
            RepairKind::Imputed { replacement } => assert!((replacement - 0.2).abs() < 1e-12),
            other => panic!("unexpected repair: {other:?}"),
        }
        assert_eq!(report.rows_repaired(), 1);
    }

    #[test]
    fn repair_imputes_truncated_tail() {
        let set = clean_set();
        let mut text = csv_of(&set);
        text.push_str("w,100,1.5,0.105\n"); // only the first rate present
        let (back, report) = read_csv_with_policy(text.as_bytes(), IngestPolicy::Repair).unwrap();
        assert_eq!(back.len(), set.len() + 1);
        assert_eq!(report.repairs.len(), N_EVENTS - 1);
        assert!(report.repairs.iter().all(|r| r.line == 2 + set.len()));
        let repaired = back.iter().find(|s| s.section_index == 100).unwrap();
        assert!(repaired.is_well_formed());
    }

    #[test]
    fn repair_winsorizes_extreme_outlier() {
        // 15 tight values and one wild (but in-range) spike.
        let mut set: SampleSet = (0..15)
            .map(|i| sample("w", i, 1.0, 0.2 + 0.001 * (i % 5) as f64))
            .collect();
        set.push(sample("w", 99, 1.0, 90.0));
        let text = csv_of(&set);
        let (back, report) = read_csv_with_policy(text.as_bytes(), IngestPolicy::Repair).unwrap();
        assert_eq!(back.len(), set.len());
        assert!(!report.repairs.is_empty());
        assert!(report.repairs.iter().all(
            |r| matches!(r.kind, RepairKind::Winsorized { from, to } if from == 90.0 && to < 1.0)
        ));
        let spike = back.iter().find(|s| s.section_index == 99).unwrap();
        assert!(spike.rates.iter().all(|&v| v < 1.0));
    }

    #[test]
    fn repair_quarantines_bad_cpi() {
        let set = clean_set();
        let mut text = csv_of(&set);
        text.push_str(&format!("w,100,NaN{}\n", ",0.1".repeat(N_EVENTS)));
        let (back, report) = read_csv_with_policy(text.as_bytes(), IngestPolicy::Repair).unwrap();
        assert_eq!(back.len(), set.len());
        assert!(matches!(
            report.quarantined[0].issue,
            RowIssue::UnrepairableTarget { .. }
        ));
    }

    #[test]
    fn bad_header_fails_under_every_policy() {
        for policy in [
            IngestPolicy::Strict,
            IngestPolicy::Skip,
            IngestPolicy::Repair,
        ] {
            let err = read_csv_with_policy("nope,nope\n".as_bytes(), policy).unwrap_err();
            assert!(matches!(err, CsvError::BadHeader { .. }), "{policy}");
        }
    }

    #[test]
    fn report_summary_and_display() {
        let set = clean_set();
        let mut text = csv_of(&set);
        text.push_str("w,100,1.5,0.5\n");
        let (_, report) = read_csv_with_policy(text.as_bytes(), IngestPolicy::Skip).unwrap();
        let summary = report.summary();
        assert!(summary.contains("13 rows read"), "{summary}");
        assert!(summary.contains("12 kept"), "{summary}");
        assert!(summary.contains("1 quarantined"), "{summary}");
        let full = report.to_string();
        assert!(full.contains("quarantined line 14"), "{full}");
    }

    #[test]
    fn empty_workload_and_bad_section_are_bad_keys() {
        let set = clean_set();
        let mut text = csv_of(&set);
        text.push_str(&format!(",100,1.5{}\n", ",0.1".repeat(N_EVENTS)));
        text.push_str(&format!("w,xyz,1.5{}\n", ",0.1".repeat(N_EVENTS)));
        let (_, report) = read_csv_with_policy(text.as_bytes(), IngestPolicy::Skip).unwrap();
        assert_eq!(report.rows_quarantined(), 2);
        assert!(matches!(
            report.quarantined[0].issue,
            RowIssue::BadKey { .. }
        ));
        assert!(matches!(
            report.quarantined[1].issue,
            RowIssue::BadKey { .. }
        ));
    }
}
