//! Hardware performance-event modeling for `mtperf`.
//!
//! This crate is the vocabulary layer between the micro-architecture
//! simulator (`mtperf-sim`) and the machine-learning layer (`mtperf-mtree`).
//! It defines:
//!
//! * [`Event`] — the 20 predictor events of Table I of the ISPASS 2007 paper
//!   (*Using Model Trees for Computer Architecture Performance Analysis of
//!   Software Applications*), each carrying its paper metric name, the Core 2
//!   Duo PMU event expression it was derived from, and a human description;
//! * [`CounterBank`] — a software model of the PMU counter bank that the
//!   simulator increments while executing a workload;
//! * [`Sectioner`] — the paper's data-collection discipline: execution is cut
//!   into *sections* of equal retired-instruction counts and each section is
//!   reduced to per-instruction event rates plus its CPI;
//! * [`SectionSample`] / [`SampleSet`] — the resulting dataset rows, with
//!   summary statistics and CSV import/export;
//! * [`quality`] — fault-tolerant ingestion: [`IngestPolicy`]
//!   (strict / skip / repair), quarantine with per-row diagnostics, median
//!   imputation and winsorization, all accounted for in an
//!   [`IngestReport`];
//! * [`faultinject`] — deterministic, seed-driven corruption operators for
//!   property-testing the ingest path.
//!
//! # Example
//!
//! ```
//! use mtperf_counters::{CounterBank, Event, Sectioner};
//!
//! let mut sec = Sectioner::new("demo", 1_000);
//! let mut bank = CounterBank::new();
//! let mut samples = Vec::new();
//! for _ in 0..1_000 {
//!     bank.add(Event::InstLd, 1); // every instruction is a load, say
//!     if let Some(sample) = sec.retire(&mut bank, 1, 2) {
//!         samples.push(sample);
//!     }
//! }
//! // 1000 instructions at 2 cycles each -> one full section, CPI = 2.
//! assert_eq!(samples.len(), 1);
//! assert!((samples[0].cpi - 2.0).abs() < 1e-12);
//! assert!((samples[0].rate(Event::InstLd) - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arff;
mod bank;
mod csv;
mod events;
pub mod faultinject;
pub mod quality;
mod sample;
mod sampleset;

pub use arff::write_arff;
pub use bank::{CounterBank, Sectioner};
pub use csv::{read_csv, write_csv, CsvError};
pub use events::{Event, EventParseError, N_EVENTS};
pub use quality::{read_csv_with_policy, IngestPolicy, IngestReport};
pub use sample::SectionSample;
pub use sampleset::{EventSummary, SampleSet};
