//! ARFF export — WEKA's native dataset format.
//!
//! The paper ran M5' inside WEKA; exporting the simulated sections as ARFF
//! makes our datasets directly loadable there, so anyone can cross-check
//! this implementation against WEKA's `M5P` on identical data.
//!
//! ```text
//! @relation mtperf-sections
//! @attribute workload string
//! @attribute InstLd numeric
//! ...
//! @attribute CPI numeric
//! @data
//! '429.mcf-like',0.31,...,1.92
//! ```

use std::io::{self, Write};

use crate::events::Event;
use crate::sampleset::SampleSet;

/// Writes `set` to `w` as an ARFF relation with the workload name as a
/// string attribute, the 20 event rates as numeric attributes, and CPI as
/// the final (class) attribute — WEKA's convention for regression targets.
///
/// A `mut` reference is a valid `W`.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_arff<W: Write>(set: &SampleSet, mut w: W) -> io::Result<()> {
    writeln!(w, "@relation mtperf-sections")?;
    writeln!(w)?;
    writeln!(w, "@attribute workload string")?;
    writeln!(w, "@attribute section numeric")?;
    for e in Event::iter() {
        writeln!(w, "@attribute {} numeric", e.metric_name())?;
    }
    writeln!(w, "@attribute CPI numeric")?;
    writeln!(w)?;
    writeln!(w, "@data")?;
    for s in set.iter() {
        // Workload names contain no quotes; single-quote them for safety.
        write!(w, "'{}',{}", s.workload, s.section_index)?;
        for r in s.as_row() {
            write!(w, ",{r}")?;
        }
        writeln!(w, ",{}", s.cpi)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::N_EVENTS;
    use crate::sample::SectionSample;

    fn set() -> SampleSet {
        let mut rates = [0.0; N_EVENTS];
        rates[Event::L2m.index()] = 0.0123;
        vec![
            SectionSample::new("429.mcf-like", 0, 1.9, rates),
            SectionSample::new("444.namd-like", 3, 0.5, [0.0; N_EVENTS]),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn header_declares_all_attributes() {
        let mut buf = Vec::new();
        write_arff(&set(), &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("@relation mtperf-sections"));
        assert_eq!(s.matches("@attribute").count(), 2 + N_EVENTS + 1);
        assert!(s.contains("@attribute CPI numeric"));
        assert!(s.contains("@attribute L2M numeric"));
    }

    #[test]
    fn data_rows_match_samples() {
        let mut buf = Vec::new();
        write_arff(&set(), &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let data_idx = s.find("@data").unwrap();
        let rows: Vec<&str> = s[data_idx..].lines().skip(1).collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].starts_with("'429.mcf-like',0,"));
        assert!(rows[0].ends_with(",1.9"));
        assert!(rows[0].contains("0.0123"));
        assert!(rows[1].starts_with("'444.namd-like',3,"));
    }

    #[test]
    fn field_count_is_constant() {
        let mut buf = Vec::new();
        write_arff(&set(), &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let data_idx = s.find("@data").unwrap();
        for row in s[data_idx..].lines().skip(1) {
            assert_eq!(row.split(',').count(), 2 + N_EVENTS + 1);
        }
    }

    #[test]
    fn empty_set_writes_header_only() {
        let mut buf = Vec::new();
        write_arff(&SampleSet::new(), &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.trim_end().ends_with("@data"));
    }
}
