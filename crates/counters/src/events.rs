//! The predictor-event vocabulary of Table I.
//!
//! The paper predicts CPI from 20 per-instruction event rates collected on an
//! Intel Core 2 Duo. [`Event`] enumerates them in the paper's order; the
//! associated metadata reproduces Table I verbatim (metric name, underlying
//! PMU event expression, description).

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Number of predictor events (the attribute count of the learning problem).
pub const N_EVENTS: usize = 20;

/// One of the 20 predictor events of Table I of the paper.
///
/// Each variant corresponds to a per-instruction rate: the raw PMU count for
/// the section divided by the section's retired-instruction count.
///
/// # Example
///
/// ```
/// use mtperf_counters::Event;
///
/// assert_eq!(Event::L2m.metric_name(), "L2M");
/// assert_eq!(Event::L2m.counter_expr(), "MEM_LOAD_RETIRED.L2_LINE_MISS");
/// assert_eq!("L2M".parse::<Event>().unwrap(), Event::L2m);
/// assert_eq!(Event::ALL.len(), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum Event {
    /// Loads per instruction (`INST_RETIRED.LOADS`).
    InstLd,
    /// Stores per instruction (`INST_RETIRED.STORES`).
    InstSt,
    /// Mispredicted branches per instruction (`BR_INST_RETIRED.MISPRED`).
    BrMisPr,
    /// Correctly predicted branches per instruction
    /// (`BR_INST_RETIRED.ANY - BR_INST_RETIRED.MISPRED`).
    BrPred,
    /// Non-branch, non-memory instructions per instruction
    /// (`INST_RETIRED.ANY - (LOADS + STORES + BR_INST_RETIRED.ANY)`).
    InstOther,
    /// L1 data-cache line misses per instruction
    /// (`MEM_LOAD_RETIRED.L1D_LINE_MISS`).
    L1dm,
    /// L1 instruction-cache misses per instruction (`L1I_MISSES`).
    L1im,
    /// L2 cache line misses per instruction
    /// (`MEM_LOAD_RETIRED.L2_LINE_MISS`).
    L2m,
    /// Lowest-level (L0) DTLB load misses per instruction
    /// (`DTLB_MISSES.L0_MISS_LD`).
    DtlbL0LdM,
    /// Last-level DTLB load misses per instruction (`DTLB_MISSES.MISS_LD`).
    DtlbLdM,
    /// Retired loads that missed the last-level DTLB, per instruction
    /// (`MEM_LOAD_RETIRED.DTLB_MISS`).
    DtlbLdReM,
    /// All last-level DTLB misses (loads and stores) per instruction
    /// (`DTLB_MISSES.ANY`).
    Dtlb,
    /// ITLB misses per instruction (`ITLB.MISS_RETIRED`).
    ItlbM,
    /// Load-block store-address events per instruction (`LOAD_BLOCK.STA`).
    LdBlSta,
    /// Load-block store-data events per instruction (`LOAD_BLOCK.STD`).
    LdBlStd,
    /// Load-block overlap-store events per instruction
    /// (`LOAD_BLOCK.OVERLAP_STORE`).
    LdBlOvSt,
    /// Misaligned memory references per instruction (`MISALIGN_MEM_REF`).
    MisalRef,
    /// L1 data split loads per instruction (`L1D_SPLIT.LOADS`).
    L1dSpLd,
    /// L1 data split stores per instruction (`L1D_SPLIT.STORES`).
    L1dSpSt,
    /// Length-changing-prefix stalls per instruction (`ILD_STALL`).
    Lcp,
}

impl Event {
    /// All 20 events in Table I order.
    pub const ALL: [Event; N_EVENTS] = [
        Event::InstLd,
        Event::InstSt,
        Event::BrMisPr,
        Event::BrPred,
        Event::InstOther,
        Event::L1dm,
        Event::L1im,
        Event::L2m,
        Event::DtlbL0LdM,
        Event::DtlbLdM,
        Event::DtlbLdReM,
        Event::Dtlb,
        Event::ItlbM,
        Event::LdBlSta,
        Event::LdBlStd,
        Event::LdBlOvSt,
        Event::MisalRef,
        Event::L1dSpLd,
        Event::L1dSpSt,
        Event::Lcp,
    ];

    /// The event's position in [`Event::ALL`]; also its column index in
    /// dataset rows.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Constructs an event from its column index.
    ///
    /// Returns `None` if `index >= N_EVENTS`.
    pub fn from_index(index: usize) -> Option<Event> {
        Event::ALL.get(index).copied()
    }

    /// The metric name used in Table I (e.g. `"L2M"`, `"BrMisPr"`).
    pub fn metric_name(self) -> &'static str {
        match self {
            Event::InstLd => "InstLd",
            Event::InstSt => "InstSt",
            Event::BrMisPr => "BrMisPr",
            Event::BrPred => "BrPred",
            Event::InstOther => "InstOther",
            Event::L1dm => "L1DM",
            Event::L1im => "L1IM",
            Event::L2m => "L2M",
            Event::DtlbL0LdM => "DtlbL0LdM",
            Event::DtlbLdM => "DtlbLdM",
            Event::DtlbLdReM => "DtlbLdReM",
            Event::Dtlb => "Dtlb",
            Event::ItlbM => "ItlbM",
            Event::LdBlSta => "LdBlSta",
            Event::LdBlStd => "LdBlStd",
            Event::LdBlOvSt => "LdBlOvSt",
            Event::MisalRef => "MisalRef",
            Event::L1dSpLd => "L1DSpLd",
            Event::L1dSpSt => "L1DSpSt",
            Event::Lcp => "LCP",
        }
    }

    /// The Core 2 Duo PMU event expression from Table I.
    pub fn counter_expr(self) -> &'static str {
        match self {
            Event::InstLd => "INST_RETIRED.LOADS",
            Event::InstSt => "INST_RETIRED.STORES",
            Event::BrMisPr => "BR_INST_RETIRED.MISPRED",
            Event::BrPred => "BR_INST_RETIRED.ANY - BR_INST_RETIRED.MISPRED",
            Event::InstOther => {
                "INST_RETIRED.ANY - (INST_RETIRED.LOADS + INST_RETIRED.STORES + BR_INST_RETIRED.ANY)"
            }
            Event::L1dm => "MEM_LOAD_RETIRED.L1D_LINE_MISS",
            Event::L1im => "L1I_MISSES",
            Event::L2m => "MEM_LOAD_RETIRED.L2_LINE_MISS",
            Event::DtlbL0LdM => "DTLB_MISSES.L0_MISS_LD",
            Event::DtlbLdM => "DTLB_MISSES.MISS_LD",
            Event::DtlbLdReM => "MEM_LOAD_RETIRED.DTLB_MISS",
            Event::Dtlb => "DTLB_MISSES.ANY",
            Event::ItlbM => "ITLB.MISS_RETIRED",
            Event::LdBlSta => "LOAD_BLOCK.STA",
            Event::LdBlStd => "LOAD_BLOCK.STD",
            Event::LdBlOvSt => "LOAD_BLOCK.OVERLAP_STORE",
            Event::MisalRef => "MISALIGN_MEM_REF",
            Event::L1dSpLd => "L1D_SPLIT.LOADS",
            Event::L1dSpSt => "L1D_SPLIT.STORES",
            Event::Lcp => "ILD_STALL",
        }
    }

    /// The Table I description of the metric.
    pub fn description(self) -> &'static str {
        match self {
            Event::InstLd => "Loads per instruction",
            Event::InstSt => "Stores per instruction",
            Event::BrMisPr => "Mispredicted branches per instruction",
            Event::BrPred => "Correctly predicted branches per instruction",
            Event::InstOther => "Non-branch and memory instructions per instruction",
            Event::L1dm => "L1 data misses per instruction",
            Event::L1im => "L1 instruction misses per instruction",
            Event::L2m => "L2 misses per instruction",
            Event::DtlbL0LdM => "Lowest level DTLB load misses per instruction",
            Event::DtlbLdM => "Last level DTLB load misses per instruction",
            Event::DtlbLdReM => "Last level DTLB retired load misses per instruction",
            Event::Dtlb => "Last level DTLB misses (including loads) per instruction",
            Event::ItlbM => "ITLB misses per instruction",
            Event::LdBlSta => "Load block store address events per instruction",
            Event::LdBlStd => "Load block store data events per instruction",
            Event::LdBlOvSt => "Load block overlap store per instruction",
            Event::MisalRef => "Misaligned memory references per instruction",
            Event::L1dSpLd => "L1 data split loads per instruction",
            Event::L1dSpSt => "L1 data split stores per instruction",
            Event::Lcp => "Length changing prefix stalls per instruction",
        }
    }

    /// Iterator over all events in Table I order.
    pub fn iter() -> impl Iterator<Item = Event> {
        Event::ALL.iter().copied()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.metric_name())
    }
}

/// Error returned when parsing an unknown metric name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventParseError {
    name: String,
}

impl EventParseError {
    /// The metric name that failed to parse.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for EventParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown performance metric name: {:?}", self.name)
    }
}

impl Error for EventParseError {}

impl FromStr for Event {
    type Err = EventParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Event::iter()
            .find(|e| e.metric_name() == s)
            .ok_or_else(|| EventParseError { name: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_20_distinct_events() {
        assert_eq!(Event::ALL.len(), N_EVENTS);
        let mut sorted = Event::ALL.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), N_EVENTS);
    }

    #[test]
    fn index_roundtrip() {
        for (i, e) in Event::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
            assert_eq!(Event::from_index(i), Some(*e));
        }
        assert_eq!(Event::from_index(N_EVENTS), None);
    }

    #[test]
    fn metric_names_are_unique_and_parse_back() {
        for e in Event::iter() {
            let parsed: Event = e.metric_name().parse().unwrap();
            assert_eq!(parsed, e);
        }
    }

    #[test]
    fn parse_rejects_unknown() {
        let err = "NotAMetric".parse::<Event>().unwrap_err();
        assert_eq!(err.name(), "NotAMetric");
        assert!(err.to_string().contains("NotAMetric"));
    }

    #[test]
    fn display_matches_table1() {
        assert_eq!(Event::L1dm.to_string(), "L1DM");
        assert_eq!(Event::Lcp.to_string(), "LCP");
        assert_eq!(Event::DtlbL0LdM.to_string(), "DtlbL0LdM");
    }

    #[test]
    fn table1_expressions_present() {
        assert_eq!(Event::Lcp.counter_expr(), "ILD_STALL");
        assert!(Event::InstOther.counter_expr().contains("INST_RETIRED.ANY"));
        assert!(Event::BrPred.counter_expr().contains("MISPRED"));
    }

    #[test]
    fn descriptions_nonempty() {
        for e in Event::iter() {
            assert!(!e.description().is_empty());
            assert!(e.description().contains("per instruction"));
        }
    }

    #[test]
    fn serde_roundtrip() {
        let json = serde_json::to_string(&Event::L2m).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Event::L2m);
    }
}
