//! Deterministic, seed-driven fault injection for counter CSV streams.
//!
//! Property tests (and robustness benchmarks) need realistic corruption:
//! multiplexed events dropping samples, counters saturating, runs truncated
//! mid-section, logs concatenated twice. This module applies those faults to
//! a serialized sample CSV *reproducibly* — the same seed always corrupts
//! the same lines in the same way — and reports exactly which output lines
//! it touched, so a test can assert that the ingest layer quarantines or
//! repairs precisely those rows and nothing else.
//!
//! Only data rows are ever targeted; the header line is left intact (header
//! corruption is a schema error, a different failure class the reader
//! already refuses wholesale).
//!
//! # Example
//!
//! ```
//! use mtperf_counters::faultinject::{FaultInjector, FaultOp};
//! use mtperf_counters::{write_csv, SampleSet, SectionSample};
//!
//! let set: SampleSet = (0..5)
//!     .map(|i| SectionSample::new("w", i, 1.0, [0.1; mtperf_counters::N_EVENTS]))
//!     .collect();
//! let mut buf = Vec::new();
//! write_csv(&set, &mut buf).unwrap();
//! let csv = String::from_utf8(buf).unwrap();
//!
//! let mut inj = FaultInjector::new(7);
//! let corrupted = inj.apply(FaultOp::FlipNonFinite(2), &csv);
//! assert_eq!(corrupted.lines.len(), 2);
//! // Same seed, same faults.
//! let again = FaultInjector::new(7).apply(FaultOp::FlipNonFinite(2), &csv);
//! assert_eq!(corrupted.text, again.text);
//! ```

use mtperf_detsim::SimRng;
use rand::Rng;

use crate::events::N_EVENTS;

/// A corruption operator, modeled on real counter-stream failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultOp {
    /// Remove up to `n` random data rows (multiplexing dropped the samples).
    DropRows(usize),
    /// Cut trailing fields off up to `n` random rows (run truncated
    /// mid-write). Each victim keeps between 1 and `3 + N_EVENTS - 1`
    /// fields, so the row is always malformed.
    TruncateFields(usize),
    /// Replace a random numeric field in up to `n` rows with `NaN`, `inf`,
    /// or `-inf` (corrupted readout).
    FlipNonFinite(usize),
    /// Set a random rate field in up to `n` rows to a huge finite value
    /// (counter saturation).
    SaturateCounters(usize),
    /// Duplicate up to `n` random rows in place (log concatenated twice /
    /// section re-emitted).
    DuplicateSections(usize),
}

/// The outcome of applying one [`FaultOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corruption {
    /// The corrupted CSV text.
    pub text: String,
    /// 1-based line numbers **in `text`** whose content was corrupted or
    /// inserted. Empty for [`FaultOp::DropRows`] (the damage there is the
    /// absence itself).
    pub lines: Vec<usize>,
    /// Number of data rows removed (non-zero only for
    /// [`FaultOp::DropRows`]).
    pub dropped: usize,
}

/// Deterministic fault source: a seeded RNG plus the corruption operators.
///
/// Applying operators consumes RNG state, so a sequence of `apply` calls on
/// one injector yields a reproducible *composition* of faults.
///
/// The randomness comes from the workspace-shared [`SimRng`]
/// (`mtperf-detsim`), so a simulation harness can hand an injector a fork
/// of its root seed ([`FaultInjector::with_rng`]) and every corrupted byte
/// is governed by the same replay key as the rest of the run. The draw
/// sequence is bit-identical to the `SmallRng` this module used before the
/// unification.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: SimRng,
}

impl FaultInjector {
    /// Creates an injector whose fault choices are fully determined by
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector::with_rng(SimRng::seed_from_u64(seed))
    }

    /// Creates an injector drawing from an externally-owned RNG — usually
    /// a [`SimRng::fork`] of a simulation's root seed, so fault choices
    /// replay with the run that scripted them.
    pub fn with_rng(rng: SimRng) -> Self {
        FaultInjector { rng }
    }

    /// Picks `k` distinct indices out of `0..n`, returned sorted.
    fn choose(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        // Partial Fisher–Yates over an index vector: O(n) space, exact.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.rng.gen_range(i..n);
            idx.swap(i, j);
        }
        let mut chosen: Vec<usize> = idx[..k].to_vec();
        chosen.sort_unstable();
        chosen
    }

    /// Applies `op` to `csv`, returning the corrupted text plus a precise
    /// record of which lines were touched.
    ///
    /// `csv` is split on `'\n'`; the first line is treated as the header and
    /// never modified. Counts larger than the number of data rows are
    /// clamped.
    pub fn apply(&mut self, op: FaultOp, csv: &str) -> Corruption {
        let mut lines: Vec<String> = csv.lines().map(str::to_string).collect();
        // Data-row positions in `lines` (skip header and blank lines).
        let data_pos: Vec<usize> = (1..lines.len()).filter(|&i| !lines[i].is_empty()).collect();
        let n = data_pos.len();

        let mut touched: Vec<usize> = Vec::new();
        let mut dropped = 0usize;
        match op {
            FaultOp::DropRows(k) => {
                let victims = self.choose(n, k);
                dropped = victims.len();
                // Remove from the back so earlier positions stay valid.
                for &v in victims.iter().rev() {
                    lines.remove(data_pos[v]);
                }
            }
            FaultOp::TruncateFields(k) => {
                for &v in &self.choose(n, k) {
                    let pos = data_pos[v];
                    let fields: Vec<&str> = lines[pos].split(',').collect();
                    let keep = self.rng.gen_range(1..3 + N_EVENTS);
                    lines[pos] = fields[..keep.min(fields.len())].join(",");
                    touched.push(pos + 1);
                }
            }
            FaultOp::FlipNonFinite(k) => {
                for &v in &self.choose(n, k) {
                    let pos = data_pos[v];
                    let mut fields: Vec<String> =
                        lines[pos].split(',').map(str::to_string).collect();
                    // Numeric fields are 2.. (CPI plus the rates).
                    let target = self.rng.gen_range(2..fields.len().max(3));
                    let token = ["NaN", "inf", "-inf"][self.rng.gen_range(0..3usize)];
                    if let Some(f) = fields.get_mut(target) {
                        *f = token.to_string();
                    }
                    lines[pos] = fields.join(",");
                    touched.push(pos + 1);
                }
            }
            FaultOp::SaturateCounters(k) => {
                for &v in &self.choose(n, k) {
                    let pos = data_pos[v];
                    let mut fields: Vec<String> =
                        lines[pos].split(',').map(str::to_string).collect();
                    // Rate fields only: 3.. — saturation hits counters, not
                    // the derived CPI.
                    let target = self.rng.gen_range(3..fields.len().max(4));
                    if let Some(f) = fields.get_mut(target) {
                        *f = "1e30".to_string();
                    }
                    lines[pos] = fields.join(",");
                    touched.push(pos + 1);
                }
            }
            FaultOp::DuplicateSections(k) => {
                let victims = self.choose(n, k);
                // Insert from the back so earlier positions stay valid, then
                // compute each duplicate's final position: every insertion
                // before it shifts it one line down.
                for (rank, &v) in victims.iter().enumerate().rev() {
                    let pos = data_pos[v];
                    let copy = lines[pos].clone();
                    lines.insert(pos + 1, copy);
                    // `rank` earlier victims each add one line above this
                    // insertion; +1 for the inserted line itself, +1 for
                    // 1-based numbering.
                    touched.push(pos + rank + 2);
                }
                touched.sort_unstable();
            }
        }

        let mut text = lines.join("\n");
        text.push('\n');
        Corruption {
            text,
            lines: touched,
            dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::{read_csv, write_csv};
    use crate::sample::SectionSample;
    use crate::sampleset::SampleSet;

    fn base_csv(rows: usize) -> (SampleSet, String) {
        let set: SampleSet = (0..rows)
            .map(|i| SectionSample::new("w", i, 1.0 + i as f64 * 0.01, [0.1; N_EVENTS]))
            .collect();
        let mut buf = Vec::new();
        write_csv(&set, &mut buf).unwrap();
        (set, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn same_seed_same_corruption() {
        let (_, csv) = base_csv(10);
        for op in [
            FaultOp::DropRows(3),
            FaultOp::TruncateFields(3),
            FaultOp::FlipNonFinite(3),
            FaultOp::SaturateCounters(3),
            FaultOp::DuplicateSections(3),
        ] {
            let a = FaultInjector::new(42).apply(op, &csv);
            let b = FaultInjector::new(42).apply(op, &csv);
            assert_eq!(a, b, "{op:?}");
        }
    }

    #[test]
    fn forked_rng_injectors_replay() {
        let (_, csv) = base_csv(10);
        let a = FaultInjector::with_rng(SimRng::seed_from_u64(42).fork("faults"))
            .apply(FaultOp::FlipNonFinite(3), &csv);
        let b = FaultInjector::with_rng(SimRng::seed_from_u64(42).fork("faults"))
            .apply(FaultOp::FlipNonFinite(3), &csv);
        assert_eq!(a, b, "same root seed + domain, same corruption");
        let c = FaultInjector::with_rng(SimRng::seed_from_u64(42).fork("other"))
            .apply(FaultOp::FlipNonFinite(3), &csv);
        assert_ne!(a.lines, c.lines, "different domains draw independently");
    }

    #[test]
    fn drop_rows_removes_exactly_that_many() {
        let (set, csv) = base_csv(10);
        let out = FaultInjector::new(1).apply(FaultOp::DropRows(4), &csv);
        assert_eq!(out.dropped, 4);
        assert!(out.lines.is_empty());
        let back = read_csv(out.text.as_bytes()).unwrap();
        assert_eq!(back.len(), set.len() - 4);
        // Every surviving row is an original row.
        for s in back.iter() {
            assert!(set.iter().any(|o| o == s));
        }
    }

    #[test]
    fn truncate_reports_lines_that_are_malformed() {
        let (_, csv) = base_csv(10);
        let out = FaultInjector::new(2).apply(FaultOp::TruncateFields(3), &csv);
        assert_eq!(out.lines.len(), 3);
        let lines: Vec<&str> = out.text.lines().collect();
        for &l in &out.lines {
            let n_fields = lines[l - 1].split(',').count();
            assert!(n_fields < 3 + N_EVENTS, "line {l} has {n_fields} fields");
        }
    }

    #[test]
    fn flip_lines_contain_non_finite_tokens() {
        let (_, csv) = base_csv(10);
        let out = FaultInjector::new(3).apply(FaultOp::FlipNonFinite(4), &csv);
        let lines: Vec<&str> = out.text.lines().collect();
        for &l in &out.lines {
            let row = lines[l - 1];
            assert!(
                row.contains("NaN") || row.contains("inf"),
                "line {l}: {row}"
            );
        }
    }

    #[test]
    fn saturate_lines_contain_huge_value() {
        let (_, csv) = base_csv(10);
        let out = FaultInjector::new(4).apply(FaultOp::SaturateCounters(2), &csv);
        let lines: Vec<&str> = out.text.lines().collect();
        for &l in &out.lines {
            assert!(lines[l - 1].contains("1e30"), "{}", lines[l - 1]);
        }
    }

    #[test]
    fn duplicate_reports_inserted_line_positions() {
        let (_, csv) = base_csv(8);
        let out = FaultInjector::new(5).apply(FaultOp::DuplicateSections(3), &csv);
        assert_eq!(out.lines.len(), 3);
        let lines: Vec<&str> = out.text.lines().collect();
        assert_eq!(lines.len(), 1 + 8 + 3);
        for &l in &out.lines {
            // An inserted duplicate equals the line above it.
            assert_eq!(lines[l - 1], lines[l - 2], "line {l}");
        }
    }

    #[test]
    fn counts_clamp_to_available_rows() {
        let (_, csv) = base_csv(3);
        let out = FaultInjector::new(6).apply(FaultOp::DropRows(100), &csv);
        assert_eq!(out.dropped, 3);
        let out = FaultInjector::new(6).apply(FaultOp::TruncateFields(100), &csv);
        assert_eq!(out.lines.len(), 3);
    }

    #[test]
    fn header_is_never_touched() {
        let (_, csv) = base_csv(5);
        let header = csv.lines().next().unwrap().to_string();
        for op in [
            FaultOp::DropRows(5),
            FaultOp::TruncateFields(5),
            FaultOp::FlipNonFinite(5),
            FaultOp::SaturateCounters(5),
            FaultOp::DuplicateSections(5),
        ] {
            let out = FaultInjector::new(9).apply(op, &csv);
            assert_eq!(out.text.lines().next().unwrap(), header, "{op:?}");
            assert!(out.lines.iter().all(|&l| l >= 2), "{op:?}");
        }
    }
}
