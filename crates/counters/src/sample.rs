//! A single section's measurement: per-instruction event rates plus CPI.

use serde::{Deserialize, Serialize};

use crate::events::{Event, N_EVENTS};

/// The measurement of one *section* — a span of execution covering a fixed
/// number of retired instructions (the paper's data-collection unit).
///
/// All event fields are **per-instruction rates** (raw count divided by the
/// section's instruction count); `cpi` is the section's cycles per
/// instruction, the learning target.
///
/// # Example
///
/// ```
/// use mtperf_counters::{Event, SectionSample};
///
/// let mut rates = [0.0; mtperf_counters::N_EVENTS];
/// rates[Event::L2m.index()] = 0.01;
/// let s = SectionSample::new("429.mcf-like", 7, 1.8, rates);
/// assert_eq!(s.rate(Event::L2m), 0.01);
/// assert_eq!(s.workload, "429.mcf-like");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SectionSample {
    /// Name of the workload this section came from.
    pub workload: String,
    /// Zero-based index of the section within its workload's execution.
    pub section_index: usize,
    /// Cycles per instruction over the section (the dependent variable).
    pub cpi: f64,
    /// Per-instruction rates for the 20 events, in [`Event::ALL`] order.
    pub rates: [f64; N_EVENTS],
}

impl SectionSample {
    /// Creates a sample from already-normalized rates.
    pub fn new(
        workload: impl Into<String>,
        section_index: usize,
        cpi: f64,
        rates: [f64; N_EVENTS],
    ) -> Self {
        SectionSample {
            workload: workload.into(),
            section_index,
            cpi,
            rates,
        }
    }

    /// The per-instruction rate of `event` in this section.
    pub fn rate(&self, event: Event) -> f64 {
        self.rates[event.index()]
    }

    /// The rates as a slice in [`Event::ALL`] order (dataset row layout).
    pub fn as_row(&self) -> &[f64] {
        &self.rates
    }

    /// Returns `true` if every rate and the CPI are finite and non-negative —
    /// the validity contract the simulator and CSV reader must uphold.
    pub fn is_well_formed(&self) -> bool {
        self.cpi.is_finite()
            && self.cpi >= 0.0
            && self.rates.iter().all(|r| r.is_finite() && *r >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SectionSample {
        let mut rates = [0.0; N_EVENTS];
        rates[Event::InstLd.index()] = 0.3;
        rates[Event::L2m.index()] = 0.005;
        SectionSample::new("w", 3, 1.25, rates)
    }

    #[test]
    fn rate_lookup() {
        let s = sample();
        assert_eq!(s.rate(Event::InstLd), 0.3);
        assert_eq!(s.rate(Event::L2m), 0.005);
        assert_eq!(s.rate(Event::Lcp), 0.0);
    }

    #[test]
    fn as_row_layout_matches_event_order() {
        let s = sample();
        assert_eq!(s.as_row()[Event::InstLd.index()], 0.3);
        assert_eq!(s.as_row().len(), N_EVENTS);
    }

    #[test]
    fn well_formedness() {
        let mut s = sample();
        assert!(s.is_well_formed());
        s.cpi = f64::NAN;
        assert!(!s.is_well_formed());
        s.cpi = 1.0;
        s.rates[0] = -0.1;
        assert!(!s.is_well_formed());
    }

    #[test]
    fn serde_roundtrip() {
        let s = sample();
        let json = serde_json::to_string(&s).unwrap();
        let back: SectionSample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
