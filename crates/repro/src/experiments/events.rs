//! E15 (extension) — event-set ablation: which of Table I's 20 counters
//! carry the model?
//!
//! The paper says its events "were chosen identified as candidates likely to
//! be most relevant" but never measures their marginal value. Here we drop
//! one event *family* at a time, retrain, and report the accuracy cost —
//! plus a minimal-set run using only the events the paper's Figure 2 splits
//! on.

use mtperf::prelude::*;

use crate::Context;

/// Event families of Table I.
const FAMILIES: &[(&str, &[&str])] = &[
    ("instruction mix", &["InstLd", "InstSt", "InstOther"]),
    ("branches", &["BrMisPr", "BrPred"]),
    ("caches", &["L1DM", "L1IM", "L2M"]),
    (
        "TLBs",
        &["DtlbL0LdM", "DtlbLdM", "DtlbLdReM", "Dtlb", "ItlbM"],
    ),
    ("load blocks", &["LdBlSta", "LdBlStd", "LdBlOvSt"]),
    ("alignment", &["MisalRef", "L1DSpLd", "L1DSpSt"]),
    ("LCP", &["LCP"]),
];

fn cv_rae(ctx: &Context, data: &Dataset) -> (f64, f64) {
    let params = ctx.params.clone();
    let learner = M5Learner::new(params);
    let m = cross_validate(&learner, data, 10, 7)
        .expect("cv succeeds")
        .pooled;
    (m.correlation, m.rae_percent)
}

/// Runs the experiment.
pub fn run(ctx: &Context) {
    println!("=== Event-set ablation: drop one family, retrain ===\n");
    let (c_all, rae_all) = cv_rae(ctx, &ctx.data);
    println!(
        "{:<22} {:>10} {:>8} {:>12}",
        "events used", "C", "RAE %", "RAE delta"
    );
    println!("{}", "-".repeat(56));
    println!(
        "{:<22} {:>10.4} {:>8.2} {:>12}",
        "all 20 (baseline)", c_all, rae_all, "-"
    );

    for (family, members) in FAMILIES {
        let keep: Vec<usize> = (0..ctx.data.n_attrs())
            .filter(|&j| !members.contains(&ctx.data.attr_name(j)))
            .collect();
        let reduced = ctx.data.select_attrs(&keep).expect("non-empty selection");
        let (c, rae) = cv_rae(ctx, &reduced);
        println!(
            "{:<22} {:>10.4} {:>8.2} {:>+11.2}%",
            format!("- {family}"),
            c,
            rae,
            rae - rae_all
        );
    }

    // Minimal set: only the splits the full tree actually uses.
    let mut used = Vec::new();
    ctx.tree.root().split_attrs(&mut used);
    used.sort_unstable();
    used.dedup();
    let minimal = ctx.data.select_attrs(&used).expect("non-empty selection");
    let (c, rae) = cv_rae(ctx, &minimal);
    let names: Vec<&str> = used.iter().map(|&j| ctx.data.attr_name(j)).collect();
    println!(
        "{:<22} {:>10.4} {:>8.2} {:>+11.2}%",
        format!("only {} split vars", used.len()),
        c,
        rae,
        rae - rae_all
    );
    println!("\nsplit variables of the full tree: {names:?}");
    println!(
        "(families whose removal barely moves RAE are explainable by the\n\
         correlated events that remain — the redundancy that makes counter\n\
         attribution hard, cf. the what-if experiment)"
    );
}
