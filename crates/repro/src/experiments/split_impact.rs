//! E5 — split-variable impact, both estimators of §V.A.2.
//!
//! The paper's example: for a split on LdBlSta, the high side averages CPI
//! 0.84 against mean(0.57, 0.51) on the low side — a net impact of ~0.30,
//! i.e. 35 % of the high side's CPI; alternatively, regress CPI on the
//! split variable and read the R².

use crate::Context;
use mtperf_mtree::analysis;

/// Runs the experiment.
pub fn run(ctx: &Context) {
    println!("=== Split-variable impact (paper §V.A.2) ===\n");
    let impacts = analysis::split_impacts(&ctx.tree, &ctx.data);
    println!(
        "{:<12} {:>12} {:>8} {:>9} {:>9} {:>8} {:>9} {:>6}",
        "variable", "threshold", "n", "mean(<=)", "mean(>)", "delta", "% of high", "R^2"
    );
    println!("{}", "-".repeat(80));
    let mut csv =
        String::from("variable,threshold,n,mean_low,mean_high,delta,fraction_of_high,r2\n");
    for imp in &impacts {
        let name = ctx.data.attr_name(imp.attr);
        println!(
            "{:<12} {:>12.6} {:>8} {:>9.3} {:>9.3} {:>8.3} {:>8.0}% {:>6.2}",
            name,
            imp.threshold,
            imp.n,
            imp.mean_low,
            imp.mean_high,
            imp.mean_difference,
            100.0 * imp.fraction_of_high,
            imp.r_squared,
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            name,
            imp.threshold,
            imp.n,
            imp.mean_low,
            imp.mean_high,
            imp.mean_difference,
            imp.fraction_of_high,
            imp.r_squared
        ));
    }
    Context::save_artifact("split_impact.csv", &csv);
    println!(
        "\n(the paper's worked LdBlSta example: delta = 0.30, 35% of the high side's CPI; \
         our tree's splits show the same pattern on its own variables)"
    );
}
