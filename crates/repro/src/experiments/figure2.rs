//! E3 — Figure 2: the performance-analysis tree over the suite's sections.
//!
//! Paper shape to verify by inspection: the root tests L2 cache misses
//! ("the single event that most strongly impacts performance"); DTLB events
//! are tested in the absence of significant L2 misses (the DTLB reaches a
//! quarter of the L2); branch events appear below those; niche leaves catch
//! LCP-affected and front-end-saturated sections.

use crate::Context;
use mtperf_mtree::analysis;

/// Runs the experiment.
pub fn run(ctx: &Context) {
    println!("=== Figure 2: performance-analysis tree ===\n");
    let rendered = ctx.tree.render("CPI");
    println!("{rendered}");
    Context::save_artifact("figure2_tree.txt", &rendered);

    // Structural commentary, automatically checked.
    let impacts = analysis::split_impacts(&ctx.tree, &ctx.data);
    if let Some(root) = impacts.first() {
        let name = ctx.data.attr_name(root.attr);
        println!(
            "root split: {name} <= {:.6}  (paper: L2M at the root) -> {}",
            root.threshold,
            if name == "L2M" { "MATCH" } else { "DIFFERS" }
        );
    }
    let mut attrs = Vec::new();
    ctx.tree.root().split_attrs(&mut attrs);
    let names: Vec<&str> = attrs.iter().map(|&a| ctx.data.attr_name(a)).collect();
    println!("split variables used: {names:?}");
    let has_dtlb = names.iter().any(|n| n.starts_with("Dtlb"));
    let has_branch = names.iter().any(|n| *n == "BrMisPr" || *n == "BrPred");
    println!(
        "DTLB tested: {has_dtlb} (paper: yes, on the low-L2M side); branch events tested: {has_branch} (paper: yes, below cache/TLB)"
    );
}
