//! E17 (extension) — the Core 2 vs NetBurst branch-sensitivity contrast.
//!
//! §V.A.1 of the paper: "It is instructive to compare the importance of
//! branch mispredicts in this architecture with their controlling role on
//! the Pentium NetBurst processor, as reported in \[13\], where the much
//! longer pipeline translated into a greater pipeline flush and resteering
//! cost." We can *run* that comparison: simulate the same suite on a
//! NetBurst-flavored machine, train a tree per machine, and compare how
//! prominently branch events feature.

use mtperf::prelude::*;
use mtperf_sim::workload::profiles;

use crate::Context;

/// Per-machine branch prominence summary.
struct BranchProfile {
    machine: &'static str,
    mean_cpi: f64,
    /// Shallowest depth (1 = root) at which a branch event is tested.
    branch_split_depth: Option<usize>,
    /// Fraction of all sections whose rule path tests a branch event — how
    /// widely branch behavior matters for classification on this machine.
    branch_ruled_fraction: f64,
}

fn analyze(
    machine: MachineConfig,
    name: &'static str,
    instructions: u64,
    seed: u64,
) -> BranchProfile {
    let sim = Simulator::new(machine).with_seed(seed);
    let mut samples = mtperf::counters::SampleSet::new();
    for w in profiles::suite(instructions) {
        samples.extend(sim.run(&w, crate::context::SECTION_LEN));
    }
    let data = mtperf::dataset_from_samples(&samples).expect("non-empty suite");
    let params = M5Params::default()
        .with_min_instances((data.n_rows() / 30).max(8))
        .with_smoothing(false);
    let tree = ModelTree::fit(&data, &params).expect("training succeeds");

    // Depth of the first branch-event split (pre-order walk over impacts is
    // root-first but not depth-annotated; recompute via classification
    // paths).
    let brmispr = data.attr_index("BrMisPr").expect("BrMisPr attribute");
    let brpred = data.attr_index("BrPred").expect("BrPred attribute");
    let mut depth: Option<usize> = None;
    for i in 0..data.n_rows() {
        let c = tree.classify(&data.row(i));
        for (level, d) in c.path.iter().enumerate() {
            if d.attr == brmispr || d.attr == brpred {
                let candidate = level + 1;
                if depth.is_none_or(|cur| candidate < cur) {
                    depth = Some(candidate);
                }
            }
        }
    }

    // How many sections' classification consults a branch event at all.
    let ruled = (0..data.n_rows())
        .filter(|&i| {
            tree.classify(&data.row(i))
                .path
                .iter()
                .any(|d| d.attr == brmispr || d.attr == brpred)
        })
        .count();

    BranchProfile {
        machine: name,
        mean_cpi: mtperf::linalg::stats::mean(data.targets()),
        branch_split_depth: depth,
        branch_ruled_fraction: ruled as f64 / data.n_rows() as f64,
    }
}

/// Runs the experiment.
pub fn run(ctx: &Context) {
    println!("=== Core 2 vs NetBurst: the paper's branch-sensitivity contrast ===\n");
    let instructions = match ctx.scale {
        crate::Scale::Full => 2_000_000,
        crate::Scale::Quick => 400_000,
    };
    let profiles = [
        analyze(
            MachineConfig::core2_duo(),
            "Core 2 Duo",
            instructions,
            ctx.seed,
        ),
        analyze(
            MachineConfig::netburst_like(),
            "NetBurst-like",
            instructions,
            ctx.seed,
        ),
    ];
    println!(
        "{:<16} {:>10} {:>22} {:>24}",
        "machine", "mean CPI", "branch split depth", "branch-ruled sections"
    );
    println!("{}", "-".repeat(76));
    for p in &profiles {
        println!(
            "{:<16} {:>10.2} {:>22} {:>23.1}%",
            p.machine,
            p.mean_cpi,
            p.branch_split_depth
                .map_or("not tested".to_string(), |d| format!("level {d}")),
            100.0 * p.branch_ruled_fraction
        );
    }
    println!(
        "\n(the paper: on Core 2, branch events rank below cache/TLB events; on a\n\
         NetBurst-depth pipeline their flush cost gives them a 'controlling role' —\n\
         the tree should test them earlier and weight them more)"
    );
}
