//! E9 — per-benchmark class occupancy.
//!
//! The paper's §V.A.1 reads the tree through the workloads: "more than 95%
//! of [436.cactusADM's] sections experience high L2 cache misses combined
//! with a high rate of L1 instruction misses" (LM18); "more than 70% of
//! [429.mcf's] sections are classified in LM17"; "about 20% of [403.gcc's]
//! sections experience performance degradation due to LCP stalls".

use std::fmt::Write as _;

use crate::Context;
use mtperf_mtree::analysis;

/// Runs the experiment.
pub fn run(ctx: &Context) {
    println!("=== Class occupancy by workload ===\n");
    let rows: Vec<Vec<f64>> = (0..ctx.data.n_rows()).map(|i| ctx.data.row(i)).collect();
    let occupancy = analysis::occupancy_by_label(&ctx.tree, &rows, &ctx.labels);

    let mut csv = String::from("workload,class,sections,fraction\n");
    for (workload, classes) in &occupancy {
        let total: usize = classes.values().sum();
        let mut parts: Vec<(String, f64)> = classes
            .iter()
            .map(|(leaf, &n)| (leaf.to_string(), n as f64 / total as f64))
            .collect();
        parts.sort_by(|a, b| b.1.total_cmp(&a.1));
        let line = parts
            .iter()
            .map(|(l, f)| format!("{l} {:.0}%", f * 100.0))
            .collect::<Vec<_>>()
            .join(", ");
        println!("{workload:<24} {line}");
        for (leaf, &n) in classes {
            let _ = writeln!(csv, "{workload},{leaf},{n},{}", n as f64 / total as f64);
        }
    }
    Context::save_artifact("occupancy.csv", &csv);

    // The paper's three concrete claims, checked on our data.
    println!("\npaper-shape checks:");
    let concentration = |needle: &str| -> f64 {
        let classes = &occupancy[occupancy
            .keys()
            .find(|k| k.contains(needle))
            .expect("workload present")
            .as_str()];
        let total: usize = classes.values().sum();
        *classes.values().max().expect("non-empty") as f64 / total as f64
    };
    let cactus = concentration("cactusADM");
    let mcf = concentration("mcf");
    println!(
        "  cactusADM concentration {:.0}% (paper: >95% in LM18)  {}",
        cactus * 100.0,
        if cactus > 0.6 { "PASS" } else { "FAIL" }
    );
    println!(
        "  mcf concentration {:.0}% (paper: >70% in LM17)       {}",
        mcf * 100.0,
        if mcf > 0.55 { "PASS" } else { "FAIL" }
    );
    let lcp = ctx.data.attr_index("LCP").expect("LCP attribute");
    let gcc_total = ctx.labels.iter().filter(|l| l.contains("gcc")).count();
    // Codegen-level LCP rates (perl's regex engine emits trace amounts too).
    let gcc_lcp = (0..ctx.data.n_rows())
        .filter(|&i| ctx.labels[i].contains("gcc") && ctx.data.value(i, lcp) > 0.03)
        .count();
    let frac = gcc_lcp as f64 / gcc_total as f64;
    println!(
        "  gcc sections with LCP stalls {:.0}% (paper: ~20%)     {}",
        frac * 100.0,
        if (0.08..=0.40).contains(&frac) {
            "PASS"
        } else {
            "FAIL"
        }
    );
}
