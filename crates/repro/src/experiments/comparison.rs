//! E8 — method comparison: M5' vs ANN, SVM and the simpler baselines.
//!
//! The paper (with its companion SMART'07 study) reports, on the same data:
//! M5' C = 0.98, ANN C = 0.99, SVM C = 0.98 — the model tree matches the
//! black boxes while staying interpretable, and both beat first-order
//! linear formulas and constant-leaf trees.

use mtperf::baselines::{standard_suite, CartLearner, GlobalLinear};
use mtperf::prelude::*;
use mtperf_eval::{comparison_table, paired_t_test};
use mtperf_linalg::parallel::{self, par_map};

use crate::Context;

/// Runs the experiment.
pub fn run(ctx: &Context) {
    println!("=== Method comparison (10-fold CV on the same folds) ===\n");
    let k = 10;
    let seed = 7;
    // The six-model line-up cross-validates concurrently; results merge in
    // suite order, identical at any thread budget.
    let learners = standard_suite(&ctx.params);
    let rows: Vec<(String, Metrics)> = par_map(parallel::global(), &learners, 1, |learner| {
        eprintln!("[comparison] cross-validating {}...", learner.name());
        let cv = cross_validate(learner.as_ref(), &ctx.data, k, seed).expect("cv succeeds");
        (learner.name().to_string(), cv.pooled)
    });
    let table = comparison_table(&rows);
    println!("{table}");
    Context::save_artifact("comparison.txt", &table);

    println!("paper reference points: M5' C=0.98 | ANN C=0.99 | SVM C=0.98");
    let m5 = rows[0].1;
    let ols = rows[1].1;
    let cart = rows[2].1;
    println!(
        "shape check (M5' beats OLS and CART on RAE): {}",
        if m5.rae_percent < ols.rae_percent && m5.rae_percent < cart.rae_percent {
            "PASS"
        } else {
            "FAIL"
        }
    );

    // Paired significance: is the M5'-vs-baseline gap real fold to fold?
    let m5_learner = M5Learner::new(ctx.params.clone());
    for (name, other) in [
        ("OLS", Box::new(GlobalLinear::new()) as Box<dyn Learner>),
        (
            "CART",
            Box::new(CartLearner::new(ctx.params.min_instances())),
        ),
    ] {
        let t = paired_t_test(&m5_learner, other.as_ref(), &ctx.data, k, seed)
            .expect("t-test succeeds");
        println!(
            "paired t-test M5' vs {name}: mean MAE diff {:+.4}, t = {:.2}, \
             significant at 5%: {}",
            t.mean_difference, t.t_statistic, t.significant_at_5pct
        );
    }
}
