//! E12 (extension) — per-workload error breakdown: where Figure 3's
//! outliers come from.

use mtperf::prelude::*;
use mtperf_eval::{breakdown_table, per_label_metrics};

use crate::Context;

/// Runs the experiment.
pub fn run(ctx: &Context) {
    println!("=== Per-workload prediction quality ===\n");
    // Out-of-sample flavor: train on 75%, break down the held-out 25%.
    let (train, test_idx) = {
        // Deterministic interleaved split keeps every workload represented.
        let train_idx: Vec<usize> = (0..ctx.data.n_rows()).filter(|i| i % 4 != 0).collect();
        let test_idx: Vec<usize> = (0..ctx.data.n_rows()).filter(|i| i % 4 == 0).collect();
        (ctx.data.subset(&train_idx), test_idx)
    };
    let tree = ModelTree::fit(&train, &ctx.params).expect("training succeeds");
    let test = ctx.data.subset(&test_idx);
    let labels: Vec<String> = test_idx.iter().map(|&i| ctx.labels[i].clone()).collect();
    let breakdown = per_label_metrics(&tree, &test, &labels);
    let table = breakdown_table(&breakdown);
    println!("{table}");
    Context::save_artifact("breakdown.txt", &table);
    println!(
        "(per-workload RAE is relative to that workload's own mean predictor, so \
         near-constant workloads can exceed 100% while still having tiny MAE — \
         read MAE and C per row, RAE across rows)"
    );
}
