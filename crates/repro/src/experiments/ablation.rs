//! E10 — ablations of the design choices DESIGN.md calls out:
//! smoothing, pruning, the min-instances pre-pruning knob, and term
//! elimination (via a full-OLS-at-leaves variant approximated by the
//! global linear baseline at the extremes).

use mtperf::prelude::*;

use crate::Context;

fn cv(data: &Dataset, params: &M5Params) -> (Metrics, usize) {
    let learner = M5Learner::new(params.clone());
    let m = cross_validate(&learner, data, 10, 7)
        .expect("cv succeeds")
        .pooled;
    let leaves = ModelTree::fit(data, params)
        .expect("fit succeeds")
        .n_leaves();
    (m, leaves)
}

/// Runs the experiment.
pub fn run(ctx: &Context) {
    let base = ctx.params.clone();

    println!("=== Ablation: smoothing ===\n");
    println!(
        "{:<28} {:>10} {:>8} {:>8}",
        "variant", "C", "RAE %", "leaves"
    );
    println!("{}", "-".repeat(58));
    for (name, params) in [
        (
            "smoothing off (default)",
            base.clone().with_smoothing(false),
        ),
        ("smoothing on (k = 15)", base.clone().with_smoothing(true)),
    ] {
        let (m, leaves) = cv(&ctx.data, &params);
        println!(
            "{:<28} {:>10.4} {:>8.2} {:>8}",
            name, m.correlation, m.rae_percent, leaves
        );
    }

    println!("\n=== Ablation: pruning ===\n");
    println!(
        "{:<28} {:>10} {:>8} {:>8}",
        "variant", "C", "RAE %", "leaves"
    );
    println!("{}", "-".repeat(58));
    for (name, params) in [
        ("pruned (default)", base.clone().with_prune(true)),
        ("unpruned", base.clone().with_prune(false)),
    ] {
        let (m, leaves) = cv(&ctx.data, &params);
        println!(
            "{:<28} {:>10.4} {:>8.2} {:>8}",
            name, m.correlation, m.rae_percent, leaves
        );
    }

    println!("\n=== Ablation: min instances per leaf (paper chose 430) ===\n");
    println!(
        "{:<28} {:>10} {:>8} {:>8}",
        "min_instances", "C", "RAE %", "leaves"
    );
    println!("{}", "-".repeat(58));
    let n = ctx.data.n_rows();
    for &mi in &[10usize, 50, 100, 150, 430, 1000] {
        if mi * 2 > n {
            continue;
        }
        let params = base.clone().with_min_instances(mi);
        let (m, leaves) = cv(&ctx.data, &params);
        println!(
            "{:<28} {:>10.4} {:>8.2} {:>8}",
            mi, m.correlation, m.rae_percent, leaves
        );
    }

    println!("\n=== Ablation: sectioning granularity ===\n");
    println!(
        "{:<28} {:>10} {:>8} {:>8}",
        "instructions/section", "C", "RAE %", "n"
    );
    println!("{}", "-".repeat(58));
    let instructions = match ctx.scale {
        crate::Scale::Full => 2_000_000,
        crate::Scale::Quick => 400_000,
    };
    for &len in &[2_000u64, 10_000, 50_000] {
        let samples = mtperf::sim::simulate_suite(instructions, len, ctx.seed);
        let data = mtperf::dataset_from_samples(&samples).expect("non-empty");
        let params = base.clone().with_min_instances((data.n_rows() / 30).max(8));
        let learner = M5Learner::new(params);
        let m = cross_validate(&learner, &data, 10, 7)
            .expect("cv succeeds")
            .pooled;
        println!(
            "{:<28} {:>10.4} {:>8.2} {:>8}",
            len,
            m.correlation,
            m.rae_percent,
            data.n_rows()
        );
    }
}
