//! E2 — Figure 1: an example M5' tree for `Y = f(X1..X4)`.
//!
//! The paper's Figure 1 illustrates the method on an abstract 4-attribute
//! function before applying it to counters. We generate a synthetic
//! piecewise-linear `f` over X1..X4, train M5', and print the WEKA-style
//! structure — the analogue of the figure.

use mtperf::prelude::*;

use crate::Context;

/// Runs the experiment.
pub fn run(_ctx: &Context) {
    println!("=== Figure 1: example M5' tree for Y = f(X1, X2, X3, X4) ===\n");
    // A three-regime target: X1 gates regimes, X2/X3 drive the slopes, X4
    // is irrelevant noise the learner should ignore.
    let names: Vec<String> = (1..=4).map(|i| format!("X{i}")).collect();
    let mut data = Dataset::new(names).unwrap();
    let mut state = 0x1234_5678_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..4000 {
        let x1 = next() * 10.0;
        let x2 = next() * 5.0;
        let x3 = next() * 5.0;
        let x4 = next();
        let y = if x1 <= 3.0 {
            1.0 + 2.0 * x2
        } else if x1 <= 7.0 {
            10.0 - 1.5 * x3
        } else {
            4.0 + x2 + x3
        } + (next() - 0.5) * 0.2;
        data.push_row(&[x1, x2, x3, x4], y).unwrap();
    }
    let params = M5Params::default()
        .with_min_instances(200)
        .with_smoothing(false);
    let tree = ModelTree::fit(&data, &params).expect("training succeeds");
    let rendered = tree.render("Y");
    println!("{rendered}");
    println!(
        "(three generating regimes; recovered {} classes, X4 ignored: {})",
        tree.n_leaves(),
        !rendered.contains("X4")
    );
    Context::save_artifact("figure1_tree.txt", &rendered);
}
