//! E13 (extension) — validating the "how much" answer against ground truth.
//!
//! The paper can only argue its gain estimates are plausible; with a
//! simulated substrate we can *check* them. For each scenario we compute:
//!
//! * the **linear estimate** of §V.A.2 — the event's terms in the section's
//!   class model, `Σ coefⱼ·xⱼ / ŷ` (assumes the section stays in its
//!   class);
//! * the **re-routing estimate** — a counterfactual row with the events
//!   zeroed, classified through the whole tree (lets the section change
//!   class, but can overshoot when the zeroed events are *correlated* with
//!   others across classes);
//! * the **simulated truth** — actually remove the bottleneck (a machine or
//!   workload change) and re-measure.

use mtperf::prelude::*;
use mtperf_mtree::analysis;
use mtperf_sim::workload::{profiles, WorkloadSpec};
use mtperf_sim::MachineConfig;

use crate::Context;

/// Mean CPI of a simulated run, skipping the first quarter (transient).
fn mean_cpi(samples: &mtperf::counters::SampleSet) -> f64 {
    let cpis = samples.cpis();
    let skip = cpis.len() / 4;
    let tail = &cpis[skip..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

/// The median-CPI section index of `workload`.
fn median_section(ctx: &Context, workload: &str) -> usize {
    let mut indices: Vec<usize> = (0..ctx.data.n_rows())
        .filter(|&i| ctx.labels[i].contains(workload))
        .collect();
    assert!(!indices.is_empty(), "workload {workload} present");
    indices.sort_by(|&a, &b| ctx.data.target(a).total_cmp(&ctx.data.target(b)));
    indices[indices.len() / 2]
}

/// Linear (within-class) gain estimate for zeroing `events`.
fn linear_gain(ctx: &Context, row: &[f64], events: &[&str]) -> f64 {
    let pred = ctx.tree.predict_raw(row);
    if pred == 0.0 {
        return 0.0;
    }
    let model = ctx.tree.leaf_for(row).model();
    let amount: f64 = events
        .iter()
        .filter_map(|name| {
            let attr = ctx.data.attr_index(name)?;
            let coef = model.coefficient(attr)?;
            Some(coef * row[attr])
        })
        .sum();
    amount / pred
}

/// Re-routing gain estimate for zeroing `events`.
fn reroute_gain(ctx: &Context, row: &[f64], events: &[&str]) -> f64 {
    let changes: Vec<(usize, f64)> = events
        .iter()
        .map(|name| (ctx.data.attr_index(name).expect("known event"), 0.0))
        .collect();
    let before = ctx.tree.predict_raw(row);
    let after =
        analysis::what_if_many(&ctx.tree, row, &changes).expect("in-range, distinct events");
    (before - after) / before
}

/// Simulated actual relative gain: baseline vs modified run.
fn actual_gain(
    baseline_cfg: &MachineConfig,
    baseline_w: &WorkloadSpec,
    modified_cfg: &MachineConfig,
    modified_w: &WorkloadSpec,
) -> f64 {
    let base = Simulator::new(baseline_cfg.clone())
        .with_seed(crate::context::SEED)
        .run(baseline_w, crate::context::SECTION_LEN);
    let modified = Simulator::new(modified_cfg.clone())
        .with_seed(crate::context::SEED)
        .run(modified_w, crate::context::SECTION_LEN);
    let before = mean_cpi(&base);
    let after = mean_cpi(&modified);
    (before - after) / before
}

struct Scenario {
    label: &'static str,
    linear: f64,
    reroute: f64,
    actual: f64,
}

/// Runs the experiment.
pub fn run(ctx: &Context) {
    println!("=== What-if validation: predicted vs simulated gains ===\n");
    let instr = match ctx.scale {
        crate::Scale::Full => 2_000_000,
        crate::Scale::Quick => 400_000,
    };
    let cfg = MachineConfig::core2_duo();
    let mut scenarios = Vec::new();

    // 1. soplex with a perfect DTLB.
    {
        let events = ["Dtlb", "DtlbLdM", "DtlbLdReM", "DtlbL0LdM"];
        let row = ctx.data.row(median_section(ctx, "soplex"));
        let mut perfect_tlb = cfg.clone();
        perfect_tlb.dtlb0 = mtperf::sim::TlbGeometry {
            entries: 4096,
            ways: 4,
        };
        perfect_tlb.dtlb1 = mtperf::sim::TlbGeometry {
            entries: 8192,
            ways: 4,
        };
        let w = profiles::soplex_like(instr);
        scenarios.push(Scenario {
            label: "soplex-like: eliminate DTLB misses",
            linear: linear_gain(ctx, &row, &events),
            reroute: reroute_gain(ctx, &row, &events),
            actual: actual_gain(&cfg, &w, &perfect_tlb, &w),
        });
    }

    // 2. gcc/perl without length-changing prefixes (the paper's suggested
    //    compiler fix). Gains are averaged over the LCP-affected sections
    //    and weighted by their share of the workload.
    {
        let lcp = ctx.data.attr_index("LCP").expect("LCP attribute");
        let mut linear_sum = 0.0;
        let mut reroute_sum = 0.0;
        let mut affected = 0usize;
        let mut total = 0usize;
        for i in 0..ctx.data.n_rows() {
            if !ctx.labels[i].contains("gcc") {
                continue;
            }
            total += 1;
            if ctx.data.value(i, lcp) <= 0.03 {
                continue;
            }
            affected += 1;
            let row = ctx.data.row(i);
            linear_sum += linear_gain(ctx, &row, &["LCP"]);
            reroute_sum += reroute_gain(ctx, &row, &["LCP"]);
        }
        let weight = affected as f64 / total.max(1) as f64;
        let per_section = |sum: f64| sum / affected.max(1) as f64 * weight;

        let baseline = profiles::gcc_like(instr);
        let mut fixed = baseline.clone();
        for p in &mut fixed.phases {
            p.spec.lcp_frac = 0.0;
        }
        scenarios.push(Scenario {
            label: "gcc-like: recompile away LCP prefixes",
            linear: per_section(linear_sum),
            reroute: per_section(reroute_sum),
            actual: actual_gain(&cfg, &baseline, &cfg, &fixed),
        });
    }

    // 3. gobmk with free branch recovery.
    {
        let row = ctx.data.row(median_section(ctx, "gobmk"));
        let mut free_flush = cfg.clone();
        free_flush.mispredict_penalty = 0.0;
        let w = profiles::gobmk_like(instr);
        scenarios.push(Scenario {
            label: "gobmk-like: perfect branch prediction",
            linear: linear_gain(ctx, &row, &["BrMisPr"]),
            reroute: reroute_gain(ctx, &row, &["BrMisPr"]),
            actual: actual_gain(&cfg, &w, &free_flush, &w),
        });
    }

    println!(
        "{:<44} {:>10} {:>10} {:>10}",
        "scenario", "linear", "re-route", "simulated"
    );
    println!("{}", "-".repeat(78));
    for s in &scenarios {
        println!(
            "{:<44} {:>9.1}% {:>9.1}% {:>9.1}%",
            s.label,
            s.linear * 100.0,
            s.reroute * 100.0,
            s.actual * 100.0
        );
    }

    println!(
        "\nreading: branch gains are estimated well (BrMisPr varies independently, so \
         its coefficient is identified). DTLB gains are overestimated because DTLB \
         misses co-vary with cache misses and page walks hide under them — the \
         regression attributes shared cost to whichever event it likes. The paper \
         shows the same signature: its LM11 coefficient of 193.98 per DtlbLdReM is \
         ~6x any physical walk cost. Counter-based 'how much' answers are upper \
         bounds whenever events are correlated; only an intervention (here: \
         simulation, on real systems an actual fix) settles it."
    );
}
