//! E4 — leaf-model listings and the worked contribution example
//! (the paper's Equations 4 and 5, LM8/LM11/LM18, and §V.A.2's
//! `6.69·L1IM·0.03 / 1.0 ≈ 20 %` illustration).

use mtperf_mtree::analysis;
use mtperf_mtree::Node;

use crate::Context;

/// Runs the experiment.
pub fn run(ctx: &Context) {
    println!("=== Leaf models (the paper's LM listings) ===\n");
    let mut constant_leaves = 0;
    for leaf in ctx.tree.leaves() {
        if let Node::Leaf { id, model, n, mean } = leaf {
            println!(
                "{id} ({n} sections, mean CPI {mean:.2}): {}",
                model.render("CPI", ctx.tree.attr_names())
            );
            if model.terms().is_empty() {
                constant_leaves += 1;
            }
        }
    }
    println!(
        "\n{} of {} classes use a constant model (the paper's LM18, CPI = 2.2, is one such)",
        constant_leaves,
        ctx.tree.n_leaves()
    );

    // The worked example of §V.A.2, on our own tree: take the section with
    // the largest predicted contribution from any single event and show the
    // what/how-much arithmetic.
    println!("\n=== Worked contribution example (paper: 6.69 * 0.03 / 1.0 = 20%) ===\n");
    // Restrict to events an optimization could actually eliminate (miss
    // and stall events — not the instruction-mix accounting terms).
    let actionable = [
        "L1DM",
        "L1IM",
        "L2M",
        "DtlbL0LdM",
        "DtlbLdM",
        "DtlbLdReM",
        "Dtlb",
        "ItlbM",
        "BrMisPr",
        "LdBlSta",
        "LdBlStd",
        "LdBlOvSt",
        "MisalRef",
        "L1DSpLd",
        "L1DSpSt",
        "LCP",
    ];
    let mut best: Option<(usize, analysis::Contribution)> = None;
    for i in (0..ctx.data.n_rows()).step_by(7) {
        let row = ctx.data.row(i);
        for c in analysis::rank_opportunities(&ctx.tree, &row).expect("row from training data") {
            if !actionable.contains(&ctx.data.attr_name(c.attr)) {
                continue;
            }
            if best.as_ref().is_none_or(|(_, b)| c.fraction > b.fraction) && c.fraction < 1.0 {
                best = Some((i, c));
            }
        }
    }
    if let Some((i, c)) = best {
        let row = ctx.data.row(i);
        let pred = ctx.tree.predict_raw(&row);
        println!(
            "section {} of {}: predicted CPI = {:.3}",
            ctx.samples.samples()[i].section_index,
            ctx.labels[i],
            pred
        );
        println!(
            "  {} contributes {:.2} * {:.5} = {:.3} CPI  ->  {:.1}% potential gain if eliminated",
            ctx.data.attr_name(c.attr),
            c.coefficient,
            c.value,
            c.amount,
            100.0 * c.fraction
        );
        println!(
            "  (the paper's example: addressing all L1 instruction misses in an LM8 \
             section would gain ~20%)"
        );
    }
}
