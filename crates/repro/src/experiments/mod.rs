//! One module per reproduced table/figure. See DESIGN.md §5.

pub mod ablation;
pub mod breakdown;
pub mod comparison;
pub mod curve;
pub mod events;
pub mod figure1;
pub mod figure2;
pub mod figure3;
pub mod generalize;
pub mod headline;
pub mod interactions;
pub mod lm_analysis;
pub mod netburst;
pub mod occupancy;
pub mod split_impact;
pub mod table1;
pub mod whatif;
