//! E16 (extension) — generalization to unseen workloads.
//!
//! The paper's intended use is analyzing a *new* workload with the trained
//! model ("To analyze the performance of a given workload, data is
//! collected ... each section then traverses the tree"), but its evaluation
//! only cross-validates within the training suite. Here we simulate ten
//! CPU2006-like profiles the tree never saw, push their sections through
//! the headline tree, and measure out-of-distribution accuracy and class
//! placement.

use mtperf::prelude::*;
use mtperf_mtree::analysis;
use mtperf_sim::workload::profiles;

use crate::Context;

/// Runs the experiment.
pub fn run(ctx: &Context) {
    println!("=== Generalization to unseen workloads ===\n");
    let instructions = match ctx.scale {
        crate::Scale::Full => 2_000_000,
        crate::Scale::Quick => 400_000,
    };
    // The extended suite minus the training profiles.
    let base_names: Vec<String> = profiles::suite(1).iter().map(|w| w.name.clone()).collect();
    let unseen: Vec<_> = profiles::extended_suite(instructions)
        .into_iter()
        .filter(|w| !base_names.contains(&w.name))
        .collect();

    let sim = Simulator::new(MachineConfig::core2_duo()).with_seed(ctx.seed);
    println!(
        "{:<24} {:>8} {:>10} {:>10} {:>24}",
        "unseen workload", "n", "mean CPI", "MAE", "dominant class"
    );
    println!("{}", "-".repeat(80));

    let mut all_actual = Vec::new();
    let mut all_predicted = Vec::new();
    for w in &unseen {
        let samples = sim.run(w, crate::context::SECTION_LEN);
        let data = mtperf::dataset_from_samples(&samples).expect("non-empty run");
        let actual: Vec<f64> = data.targets().to_vec();
        let predicted: Vec<f64> = (0..data.n_rows())
            .map(|i| ctx.tree.predict(&data.row(i)))
            .collect();
        let m = Metrics::compute(&actual, &predicted).expect("non-empty run");
        let rows: Vec<Vec<f64>> = (0..data.n_rows()).map(|i| data.row(i)).collect();
        let occ = analysis::leaf_occupancy(&ctx.tree, &rows);
        let (top, top_n) = occ
            .iter()
            .max_by_key(|(_, &n)| n)
            .expect("non-empty occupancy");
        println!(
            "{:<24} {:>8} {:>10.2} {:>10.3} {:>17} ({:.0}%)",
            w.name,
            data.n_rows(),
            mtperf::linalg::stats::mean(&actual),
            m.mae,
            top.to_string(),
            100.0 * *top_n as f64 / data.n_rows() as f64
        );
        all_actual.extend(actual);
        all_predicted.extend(predicted);
    }

    let pooled =
        Metrics::compute(&all_actual, &all_predicted).expect("at least one unseen workload");
    println!("\npooled over all unseen workloads: {pooled}");
    println!(
        "(compare the in-suite 10-fold CV of the headline experiment; the gap is\n\
         the price of analyzing workloads outside the training distribution —\n\
         the deployment regime the paper describes but never measures)"
    );
}
