//! E11 (extension) — learning curve: was the paper's dataset big enough?
//!
//! The paper fixed min-instances at 430 for its dataset "determined
//! experimentally". The learning curve shows where accuracy saturates with
//! training size, justifying (or questioning) that choice for ours.

use std::fmt::Write as _;

use mtperf::prelude::*;
use mtperf_eval::learning_curve;

use crate::Context;

/// Runs the experiment.
pub fn run(ctx: &Context) {
    println!("=== Learning curve (held-out test set, growing training sizes) ===\n");
    let n = ctx.data.n_rows();
    let sizes: Vec<usize> = [n / 32, n / 16, n / 8, n / 4, n / 2, n]
        .iter()
        .map(|&s| s.max(20))
        .collect();
    let learner = M5Learner::new(ctx.params.clone());
    let curve = learning_curve(&learner, &ctx.data, &sizes, 0.25, 7).expect("curve succeeds");

    println!(
        "{:<14} {:>10} {:>10} {:>8}",
        "train size", "C", "MAE", "RAE %"
    );
    println!("{}", "-".repeat(46));
    let mut csv = String::from("train_size,correlation,mae,rae_percent\n");
    for p in &curve {
        println!(
            "{:<14} {:>10.4} {:>10.4} {:>8.2}",
            p.train_size, p.metrics.correlation, p.metrics.mae, p.metrics.rae_percent
        );
        let _ = writeln!(
            csv,
            "{},{},{},{}",
            p.train_size, p.metrics.correlation, p.metrics.mae, p.metrics.rae_percent
        );
    }
    Context::save_artifact("learning_curve.csv", &csv);

    let last = curve.last().expect("non-empty curve");
    let half = &curve[curve.len().saturating_sub(2)];
    let saturated = (half.metrics.rae_percent - last.metrics.rae_percent).abs() < 3.0;
    println!(
        "\ncurve saturated at half the data: {} (so the dataset comfortably supports \
         min_instances = {})",
        saturated,
        ctx.params.min_instances()
    );
}
