//! E7 — headline accuracy: the paper's C ≈ 0.98, MAE ≈ 0.05, RAE = 7.83 %.

use mtperf::prelude::*;

use crate::Context;

/// Runs the experiment.
pub fn run(ctx: &Context) {
    println!("=== Headline accuracy (10-fold cross validation) ===\n");
    let learner = M5Learner::new(ctx.params.clone());
    let cv = cross_validate(&learner, &ctx.data, 10, 7).expect("cv succeeds");

    println!("{:<26} {:>10} {:>10}", "metric", "paper", "measured");
    println!("{}", "-".repeat(50));
    println!(
        "{:<26} {:>10} {:>10.4}",
        "correlation coefficient", "0.98", cv.pooled.correlation
    );
    println!(
        "{:<26} {:>10} {:>10.4}",
        "mean absolute error", "0.05", cv.pooled.mae
    );
    println!(
        "{:<26} {:>10} {:>9.2}%",
        "relative absolute error", "7.83%", cv.pooled.rae_percent
    );
    println!(
        "\nper-fold: {}",
        cv.folds
            .iter()
            .map(|f| format!("{:.3}", f.metrics.correlation))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!(
        "\ntraining-set size {} sections, {} classes, min {} instances/leaf",
        ctx.data.n_rows(),
        ctx.tree.n_leaves(),
        ctx.params.min_instances()
    );
    // The tight band applies at the paper's dataset scale; the quick run
    // has 10x fewer sections and correspondingly noisier folds.
    let rae_limit = match ctx.scale {
        crate::Scale::Full => 12.0,
        crate::Scale::Quick => 16.0,
    };
    let verdict = cv.pooled.correlation >= 0.97 && cv.pooled.rae_percent <= rae_limit;
    println!(
        "shape check (C >= 0.97 and RAE <= {rae_limit}%): {}",
        if verdict { "PASS" } else { "FAIL" }
    );
}
