//! E6 — Figure 3: predicted vs. actual CPI under 10-fold cross validation.
//!
//! The paper plots every out-of-fold prediction against its measured CPI
//! and observes the cloud hugging the unity line with a few outliers. We
//! emit the same series as CSV plus an ASCII rendering and the unity-line
//! statistics.

use mtperf::prelude::*;
use mtperf_eval::scatter_csv;

use crate::Context;

/// Runs the experiment.
pub fn run(ctx: &Context) {
    println!("=== Figure 3: predicted vs actual CPI (10-fold CV) ===\n");
    let learner = M5Learner::new(ctx.params.clone());
    let cv = cross_validate(&learner, &ctx.data, 10, 7).expect("cv succeeds");
    let pairs = cv.scatter();
    Context::save_artifact("figure3_scatter.csv", &scatter_csv(&pairs));

    // ASCII scatter: 56x24 grid over the observed CPI range.
    let max_cpi = pairs
        .iter()
        .flat_map(|&(a, p)| [a, p])
        .fold(0.0f64, f64::max)
        .ceil();
    const W: usize = 56;
    const H: usize = 24;
    let mut grid = vec![[' '; W]; H];
    for &(a, p) in &pairs {
        let x = ((a / max_cpi) * (W - 1) as f64).round() as usize;
        let y = ((p / max_cpi) * (H - 1) as f64).round() as usize;
        let cell = &mut grid[H - 1 - y.min(H - 1)][x.min(W - 1)];
        *cell = match *cell {
            ' ' => '.',
            '.' => 'o',
            _ => '@',
        };
    }
    // Unity line.
    for (x, y) in (0..W).map(|x| {
        (
            x,
            ((x as f64 / (W - 1) as f64) * (H - 1) as f64).round() as usize,
        )
    }) {
        let cell = &mut grid[H - 1 - y][x];
        if *cell == ' ' {
            *cell = '/';
        }
    }
    println!("predicted CPI (0..{max_cpi}) vs actual CPI (0..{max_cpi}), '/' = unity line\n");
    for row in &grid {
        println!("  |{}", row.iter().collect::<String>());
    }
    println!("  +{}", "-".repeat(W));

    // Unity-line statistics.
    let within_10: usize = pairs
        .iter()
        .filter(|&&(a, p)| (p - a).abs() <= 0.1 * a.max(0.2))
        .count();
    println!(
        "\n{} points; {:.1}% within 10% of the unity line; pooled {}",
        pairs.len(),
        100.0 * within_10 as f64 / pairs.len() as f64,
        cv.pooled
    );
}
