//! E14 (extension) — pairwise interaction costs.
//!
//! The paper positions itself against Fields et al.'s interaction cost
//! (its reference \[17\]), which needed dedicated sampling hardware:
//! "we propose the handling of the interaction cost in a statistical manner
//! without the requirement of dedicated new hardware." This experiment
//! makes that concrete: for representative sections, compute
//! `icost(a, b) = gain(both) − gain(a) − gain(b)` through the fitted tree
//! (see `mtperf_mtree::analysis::interaction_cost`) and report the largest
//! interactions.

use mtperf_mtree::analysis;

use crate::Context;

/// Events worth pairing (miss/stall events, not mix accounting).
const EVENTS: &[&str] = &[
    "L1DM",
    "L1IM",
    "L2M",
    "DtlbL0LdM",
    "DtlbLdM",
    "Dtlb",
    "ItlbM",
    "BrMisPr",
    "LCP",
    "MisalRef",
];

/// Runs the experiment.
pub fn run(ctx: &Context) {
    println!("=== Pairwise interaction costs (statistical, per the paper vs [17]) ===\n");
    println!(
        "icost(a,b) = gain(a and b removed) - gain(a) - gain(b); positive = removing\n\
         both is worth more than the parts (parallel interaction), negative = the\n\
         gains overlap (serial/shadowed interaction).\n"
    );

    // For each workload, take the median section and find its strongest
    // interaction pair.
    let mut rows: Vec<(String, String, String, f64)> = Vec::new();
    for workload in ctx.labels.iter().collect::<std::collections::BTreeSet<_>>() {
        let mut indices: Vec<usize> = (0..ctx.data.n_rows())
            .filter(|&i| &ctx.labels[i] == workload)
            .collect();
        indices.sort_by(|&a, &b| ctx.data.target(a).total_cmp(&ctx.data.target(b)));
        let median = indices[indices.len() / 2];
        let row = ctx.data.row(median);

        let mut best: Option<(usize, usize, f64)> = None;
        for (i, a_name) in EVENTS.iter().enumerate() {
            let Some(a) = ctx.data.attr_index(a_name) else {
                continue;
            };
            if row[a] == 0.0 {
                continue;
            }
            for b_name in EVENTS.iter().skip(i + 1) {
                let Some(b) = ctx.data.attr_index(b_name) else {
                    continue;
                };
                if row[b] == 0.0 {
                    continue;
                }
                let ic = analysis::interaction_cost(&ctx.tree, &row, a, b)
                    .expect("distinct in-range events");
                if best.is_none_or(|(_, _, prev)| ic.abs() > prev.abs()) {
                    best = Some((a, b, ic));
                }
            }
        }
        if let Some((a, b, ic)) = best {
            rows.push((
                workload.clone(),
                ctx.data.attr_name(a).to_string(),
                ctx.data.attr_name(b).to_string(),
                ic,
            ));
        }
    }

    rows.sort_by(|x, y| y.3.abs().total_cmp(&x.3.abs()));
    println!(
        "{:<24} {:<12} {:<12} {:>12}",
        "workload", "event a", "event b", "icost"
    );
    println!("{}", "-".repeat(64));
    for (w, a, b, ic) in &rows {
        println!("{:<24} {:<12} {:<12} {:>11.1}%", w, a, b, 100.0 * ic);
    }
    println!(
        "\n(non-zero interaction costs arise exactly where eliminating one event\n\
         re-routes the section across a split that also tests the other — the\n\
         tree's structural encoding of event interaction)"
    );
}
