//! E1 — Table I: the selected metrics, with measured suite statistics.
//!
//! The paper's Table I is definitional (metric → PMU event → description).
//! We regenerate it verbatim from the event vocabulary and append the
//! per-event summary over the simulated suite, which documents that every
//! selected event actually fires.

use std::fmt::Write as _;

use crate::Context;
use mtperf::prelude::*;

/// Runs the experiment and prints the regenerated table.
pub fn run(ctx: &Context) {
    println!("=== Table I: selected metrics used in this study ===\n");
    let mut csv = String::from("metric,counter,description,mean_rate,nonzero_fraction\n");
    println!(
        "{:<10} {:<48} {:<55} {:>10} {:>8}",
        "Metric", "Corresponding event", "Description", "mean", "nonzero"
    );
    let summary = ctx.samples.summarize();
    println!("{}", "-".repeat(135));
    println!(
        "{:<10} {:<48} {:<55} {:>10.4} {:>8}",
        "CPI",
        "CPU_CLK_UNHALTED.CORE / INST_RETIRED.ANY",
        "CPU clock cycles per instruction",
        mtperf::linalg::stats::mean(&ctx.samples.cpis()),
        "100%"
    );
    for e in Event::iter() {
        let s = &summary[e.metric_name()];
        println!(
            "{:<10} {:<48} {:<55} {:>10.5} {:>7.0}%",
            e.metric_name(),
            truncate(e.counter_expr(), 48),
            e.description(),
            s.mean,
            100.0 * s.nonzero_fraction,
        );
        let _ = writeln!(
            csv,
            "{},{:?},{:?},{},{}",
            e.metric_name(),
            e.counter_expr(),
            e.description(),
            s.mean,
            s.nonzero_fraction
        );
    }
    Context::save_artifact("table1.csv", &csv);
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}
