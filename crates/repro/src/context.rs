//! Shared experiment context: the simulated dataset and the trained tree.

use std::fs;
use std::path::PathBuf;

use mtperf::prelude::*;
use mtperf_counters::SampleSet;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper scale: 8 M instructions per workload → 12 000 sections; the
    /// tree is pre-pruned at 150 instances per leaf — determined
    /// experimentally on this dataset exactly as the paper determined its
    /// 430 on theirs (the ablation experiment shows the knee), and yielding
    /// the same ~18-leaf tree as the paper's Figure 2.
    Full,
    /// Quick scale for smoke runs: 800 k instructions per workload → 1 200
    /// sections; pre-pruning scales to n/30.
    Quick,
}

impl Scale {
    /// Instructions per workload at this scale.
    pub fn instructions(self) -> u64 {
        match self {
            Scale::Full => 8_000_000,
            Scale::Quick => 800_000,
        }
    }

    /// Pre-pruning minimum instances for a dataset of `n` sections.
    pub fn min_instances(self, n: usize) -> usize {
        match self {
            // Determined experimentally for this dataset (see the ablation
            // experiment), as the paper determined its 430 for its own.
            Scale::Full => 150,
            Scale::Quick => (n / 30).max(8),
        }
    }
}

/// Everything the experiments share: the simulated suite, the learning
/// problem, and the trained performance-analysis tree.
pub struct Context {
    /// Simulated section samples of the whole suite.
    pub samples: SampleSet,
    /// The learning problem (20 event-rate attributes → CPI).
    pub data: Dataset,
    /// Workload label of each row.
    pub labels: Vec<String>,
    /// Training parameters used for the headline tree.
    pub params: M5Params,
    /// The tree trained on the full dataset.
    pub tree: ModelTree,
    /// Scale the context was built at.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
}

/// Section length used throughout (retired instructions per sample).
pub const SECTION_LEN: u64 = 10_000;
/// Master seed of the reproduction runs.
pub const SEED: u64 = 2007;

impl Context {
    /// Simulates the suite and trains the headline tree.
    pub fn build(scale: Scale) -> Context {
        eprintln!(
            "[context] simulating suite ({} instructions/workload)...",
            scale.instructions()
        );
        let samples = mtperf::sim::simulate_suite(scale.instructions(), SECTION_LEN, SEED);
        eprintln!("[context] {} sections collected", samples.len());
        let labels = mtperf::labels_from_samples(&samples);
        let data = mtperf::dataset_from_samples(&samples).expect("non-empty suite");
        let params = M5Params::default()
            .with_min_instances(scale.min_instances(data.n_rows()))
            .with_smoothing(false)
            .with_parallelism(mtperf_linalg::parallel::global());
        eprintln!(
            "[context] training M5' (min {} instances/leaf)...",
            params.min_instances()
        );
        let tree = ModelTree::fit(&data, &params).expect("training succeeds");
        eprintln!(
            "[context] tree: {} classes, depth {}",
            tree.n_leaves(),
            tree.depth()
        );
        Context {
            samples,
            data,
            labels,
            params,
            tree,
            scale,
            seed: SEED,
        }
    }

    /// Directory for CSV artifacts (`results/`), created on demand.
    pub fn results_dir() -> PathBuf {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir).expect("create results dir");
        dir
    }

    /// Writes a text artifact under `results/` and reports the path.
    pub fn save_artifact(name: &str, contents: &str) {
        let path = Self::results_dir().join(name);
        fs::write(&path, contents).expect("write artifact");
        println!("[artifact] {}", path.display());
    }
}
