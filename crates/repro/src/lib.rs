//! Reproduction harness for the ISPASS 2007 paper.
//!
//! Each module regenerates one artifact of the paper's evaluation; the
//! `mtperf-repro` binary dispatches on the experiment id. See `DESIGN.md`
//! (§5, the experiment index) for the mapping from paper tables/figures to
//! modules, and `EXPERIMENTS.md` for the recorded paper-vs-measured
//! comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod experiments;

pub use context::{Context, Scale};
