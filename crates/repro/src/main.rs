//! `mtperf-repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! USAGE: mtperf-repro [--quick] [--threads <auto|off|N>]
//!                     [--trace] [--trace-out <path>] [--metrics <table|json>]
//!                     <experiment>...
//!
//! experiments:
//!   table1        Table I        selected metrics + measured suite statistics
//!   figure1       Figure 1       example M5' tree for Y = f(X1..X4)
//!   figure2       Figure 2       the performance-analysis tree
//!   figure3       Figure 3       predicted-vs-actual CPI scatter (10-fold CV)
//!   lm-analysis   Eq. 4/5, LM18  leaf-model listings + worked contribution math
//!   split-impact  §V.A.2         split-variable impact, both estimators
//!   headline      §V.B           C / MAE / RAE vs the paper's numbers
//!   comparison    §V.B           M5' vs OLS / CART / k-NN / MLP / SVR
//!   occupancy     §V.A.1         per-benchmark class concentration claims
//!   ablation      DESIGN.md §6   smoothing / pruning / min-instances / sectioning
//!   curve         extension      learning curve over training-set size
//!   breakdown     extension      per-workload held-out error breakdown
//!   whatif        extension      predicted vs simulated gains (ground-truth check)
//!   interactions  extension      pairwise interaction costs (vs the paper's ref [17])
//!   events        extension      event-family ablation: which counters matter
//!   generalize    extension      accuracy on ten workloads the tree never saw
//!   netburst      extension      Core 2 vs NetBurst branch-sensitivity contrast
//!   all           everything above, in order
//! ```

use std::process::ExitCode;

use mtperf_repro::{experiments, Context, Scale};

const EXPERIMENTS: &[&str] = &[
    "table1",
    "figure1",
    "figure2",
    "figure3",
    "lm-analysis",
    "split-impact",
    "headline",
    "comparison",
    "occupancy",
    "ablation",
    "curve",
    "breakdown",
    "whatif",
    "interactions",
    "events",
    "generalize",
    "netburst",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut obs = mtperf_obs::ObsConfig::default();
    let mut requested: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--trace" => obs.trace = true,
            "--trace-out" => {
                let Some(value) = iter.next() else {
                    eprintln!("--trace-out needs a path");
                    return ExitCode::FAILURE;
                };
                obs.trace_out = Some(value.into());
            }
            "--metrics" => {
                let Some(value) = iter.next() else {
                    eprintln!("--metrics needs a format (table or json)");
                    return ExitCode::FAILURE;
                };
                match value.parse() {
                    Ok(f) => obs.metrics = Some(f),
                    Err(e) => {
                        eprintln!("--metrics: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--threads" => {
                let Some(value) = iter.next() else {
                    eprintln!("--threads needs a value (auto, off, or a count)");
                    return ExitCode::FAILURE;
                };
                match value.parse::<mtperf_linalg::Parallelism>() {
                    Ok(par) => mtperf_linalg::parallel::set_global(par),
                    Err(e) => {
                        eprintln!("--threads: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
            name => requested.push(name),
        }
    }
    if requested.is_empty() {
        eprintln!(
            "usage: mtperf-repro [--quick] [--threads <auto|off|N>] \
             [--trace] [--trace-out <path>] [--metrics <table|json>] <experiment>..."
        );
        eprintln!("experiments: {} all", EXPERIMENTS.join(" "));
        return ExitCode::FAILURE;
    }
    if !obs.is_off() {
        if let Err(e) = mtperf_obs::init(obs) {
            eprintln!("--trace-out: {e}");
            return ExitCode::FAILURE;
        }
    }
    if requested.contains(&"all") {
        requested = EXPERIMENTS.to_vec();
    }
    for name in &requested {
        if !EXPERIMENTS.contains(name) {
            eprintln!(
                "unknown experiment {name:?}; known: {}",
                EXPERIMENTS.join(" ")
            );
            return ExitCode::FAILURE;
        }
    }

    let scale = if quick { Scale::Quick } else { Scale::Full };
    let ctx = Context::build(scale);
    for name in requested {
        println!("\n################ {name} ################\n");
        match name {
            "table1" => experiments::table1::run(&ctx),
            "figure1" => experiments::figure1::run(&ctx),
            "figure2" => experiments::figure2::run(&ctx),
            "figure3" => experiments::figure3::run(&ctx),
            "lm-analysis" => experiments::lm_analysis::run(&ctx),
            "split-impact" => experiments::split_impact::run(&ctx),
            "headline" => experiments::headline::run(&ctx),
            "comparison" => experiments::comparison::run(&ctx),
            "occupancy" => experiments::occupancy::run(&ctx),
            "ablation" => experiments::ablation::run(&ctx),
            "curve" => experiments::curve::run(&ctx),
            "breakdown" => experiments::breakdown::run(&ctx),
            "whatif" => experiments::whatif::run(&ctx),
            "interactions" => experiments::interactions::run(&ctx),
            "events" => experiments::events::run(&ctx),
            "generalize" => experiments::generalize::run(&ctx),
            "netburst" => experiments::netburst::run(&ctx),
            _ => unreachable!("validated above"),
        }
    }
    if let Some(report) = mtperf_obs::finish() {
        if report.summarize {
            eprint!("{}", report.summary());
        }
        match report.metrics {
            Some(mtperf_obs::MetricsFormat::Table) => eprint!("{}", report.metrics_table()),
            Some(mtperf_obs::MetricsFormat::Json) => eprintln!("{}", report.metrics_json()),
            None => {}
        }
    }
    ExitCode::SUCCESS
}
